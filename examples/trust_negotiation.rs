//! Domain scenario: trust, identity and the firewall control tussle.
//!
//! Walks the §V.B machinery end to end: an identity framework translating
//! diverse schemes into network tags, a trust graph feeding a
//! trust-mediated firewall, the MIDCOM-style negotiation over who may
//! change it, and a third-party-mediated transaction between strangers.
//!
//! ```sh
//! cargo run --release --example trust_negotiation
//! ```

use tussle::net::{packet::ports, Firewall};
use tussle::policy::{parse_expr, Ontology, Request};
use tussle::sim::SimRng;
use tussle::trust::identity::{AnonymityPolicy, IdentityFramework, IdentityScheme};
use tussle::trust::mediator::{run_transaction, Mediator, ReputationBook, TransactionSetup};
use tussle::trust::negotiation::{ControlPoint, PinholeRequest};
use tussle::trust::TrustGraph;

fn main() {
    // -- identity: many schemes, one tag space, no global namespace -------
    let mut framework = IdentityFramework::new(vec![100], vec![7]);
    framework.register_tag(42);
    framework.register_tag(55);
    let schemes: Vec<(&str, IdentityScheme)> = vec![
        ("certified #42", IdentityScheme::Certified { id: 42, authority: 100 }),
        ("pseudonym #55", IdentityScheme::Pseudonym { key: 55 }),
        ("anonymous", IdentityScheme::Anonymous),
        ("forged #9999", IdentityScheme::ForgedTag { fake: 9999 }),
    ];
    println!("## Identity framework\n");
    for (label, s) in &schemes {
        let tag = framework.network_tag(s);
        let (ok, limited) = framework.admit(AnonymityPolicy::LimitAnonymous, s);
        println!(
            "{label:<15} tag={:<12} admitted={ok} limited={limited} disguised-anon={}",
            tag.map(|t| t.to_string()).unwrap_or_else(|| "none".into()),
            framework.disguised_anonymity(s),
        );
    }

    // -- trust graph feeds the firewall's allow set ------------------------
    let mut graph = TrustGraph::new(0.8);
    graph.trust(1, 42, 1.0); // I trust the certified party
    graph.trust(42, 55, 0.9); // who vouches for the pseudonym
    let allow = graph.trusted_set(1, 0.5, 3);
    println!("\n## Trust graph\nparties I trust at >=0.5: {allow:?}");

    // -- who controls the firewall? -----------------------------------------
    let fw = Firewall::trust_mediated(allow, "end-user");
    let mut cp = ControlPoint::new(fw, vec![1]); // the END USER is in charge
    println!("\n## Control-point negotiation");
    match cp.request(PinholeRequest { requester: 1, port: ports::NOVEL, open: true }) {
        Ok(()) => {
            println!("user opened a pinhole for the novel app (audit: {:?})", cp.audit[0].change)
        }
        Err(e) => println!("refused: {e:?}"),
    }
    match cp.request(PinholeRequest { requester: 999, port: 23, open: true }) {
        Ok(()) => println!("?! stranger changed the policy"),
        Err(e) => println!("stranger refused, told who IS in charge: {e:?}"),
    }
    match cp.inspect_rules() {
        Ok(rules) => println!("rules disclosed to the affected user: {} rules", rules.len()),
        Err(_) => println!("operator declined to disclose rules"),
    }

    // -- a policy-language rule for the same decision -----------------------
    let ont = Ontology::network();
    let rule = parse_expr("!anonymous && dst_port in [80, 443, 49152]").unwrap();
    let req = Request::new().with("anonymous", false).with("dst_port", 49152i64);
    println!("\n## Policy language\n`{rule}` over the request -> {:?}", rule.matches(&req, &ont));

    // -- commerce between strangers, with and without an escrow -------------
    println!("\n## Third-party mediation");
    let mut rng = SimRng::seed_from_u64(7);
    let mut book = ReputationBook::new();
    let risky = TransactionSetup { value: 1_500_000, price: 1_000_000, fraud_probability: 0.5 };
    let raw = run_transaction(risky, &Mediator::None, 66, &mut book, &mut rng);
    let escrowed = run_transaction(
        risky,
        &Mediator::Escrow { liability_cap: 50_000, fee: 10_000 },
        66,
        &mut book,
        &mut rng,
    );
    println!("unmediated: net = ${:.2}", raw.buyer_net as f64 / 1e6);
    println!(
        "escrowed:   net = ${:.2} (loss capped at $0.05 + fee)",
        escrowed.buyer_net as f64 / 1e6
    );
}

//! E10 — The QoS deployment post-mortem (§VII).
//!
//! Paper claim: "One can thus see the failure of QoS deployment as a
//! failure first to design any value-transfer mechanism to give the
//! providers the possibility of being rewarded for making the investment
//! (greed), and second, a failure to couple the design to a mechanism
//! whereby the user can exercise choice to select the provider who offered
//! the service (competitive fear)." Plus the closed-deployment corollary:
//! "if they deploy QoS mechanisms but only turn them on for applications
//! that they sell ... they can price it at monopoly prices."
//!
//! Measured: five heterogeneous ISPs evaluate the open-QoS investment in
//! each cell of the 2×2 {value transfer, provider choice}; a final row
//! shows the closed/vertically-integrated deployment that needs neither.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::{InvestmentCase, Money};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// Deployment results for one cell of the factorial.
#[derive(Debug, Clone, PartialEq)]
pub struct QosCell {
    /// Whether a value-transfer mechanism exists.
    pub value_transfer: bool,
    /// Whether consumers can route to the deploying provider.
    pub provider_choice: bool,
    /// How many of the ISPs deploy open QoS.
    pub deployments: usize,
    /// Total ISPs considered.
    pub isps: usize,
}

/// Per-ISP upgrade costs (router upgrades + management + operations),
/// drawn once from the seed so the population is heterogeneous.
fn costs(seed: u64, n: usize) -> Vec<Money> {
    let mut rng = SimRng::seed_from_u64(seed).fork("e10");
    (0..n).map(|_| Money::from_dollars(rng.range(80..140i64))).collect()
}

/// Evaluate one factorial cell.
pub fn run_cell(value_transfer: bool, provider_choice: bool, seed: u64) -> QosCell {
    let costs = costs(seed, 5);
    let deployments = costs
        .iter()
        .filter(|cost| {
            InvestmentCase {
                cost: **cost,
                greed_revenue: Money::from_dollars(75),
                fear_loss: Money::from_dollars(75),
                value_transfer_exists: value_transfer,
                consumer_can_choose: provider_choice,
            }
            .deploys()
        })
        .count();
    QosCell { value_transfer, provider_choice, deployments, isps: costs.len() }
}

/// The closed-deployment corollary: a vertically integrated ISP selling
/// its own telephony at monopoly prices. Greed alone is enormous because
/// the value capture needs no open payment standard.
pub fn run_closed(seed: u64) -> QosCell {
    let costs = costs(seed, 5);
    let deployments = costs
        .iter()
        .filter(|cost| {
            InvestmentCase {
                cost: **cost,
                greed_revenue: Money::from_dollars(400), // monopoly pricing
                fear_loss: Money::ZERO,
                value_transfer_exists: true, // they bill themselves
                consumer_can_choose: false,
            }
            .deploys()
        })
        .count();
    QosCell { value_transfer: true, provider_choice: false, deployments, isps: costs.len() }
}

/// Each ISP's board takes one virtual quarter-millisecond to evaluate the
/// investment case; the factorial cells are laid out back-to-back on the
/// virtual timeline so the run's flamegraph and activity series have a
/// deterministic shape (only the inter-cell lag is seeded).
const EVAL_MICROS_PER_ISP: u64 = 250;

/// World for the engine-driven replay: the factorial cells, then the
/// closed-deployment corollary, settled in board-meeting order.
#[derive(Default)]
struct QosWorld {
    cells: Vec<QosCell>,
    closed: Option<QosCell>,
}

/// One board meeting as a pair of engine events: the span opens when the
/// boards convene and closes one eval period later, so the run's
/// flamegraph (`tests/golden/E10.collapsed`) keeps real virtual-time
/// widths. Meetings chain sequentially — each close schedules the next
/// cell after a seeded scheduling lag.
fn board_meeting(_w: &mut QosWorld, ctx: &mut Ctx<QosWorld>, idx: usize, seed: u64) {
    // The factorial in deployment order, then the closed corollary.
    const FACTORIAL: [(bool, bool); 4] =
        [(false, false), (true, false), (false, true), (true, true)];
    let closed_round = idx >= FACTORIAL.len();
    let (vt, pc) = if closed_round { (true, false) } else { FACTORIAL[idx] };
    ctx.span_enter(
        if closed_round { "e10.closed" } else { "e10.cell" },
        Some("isp"),
        &[("transfer", if vt { "+" } else { "-" }), ("choice", if pc { "+" } else { "-" })],
    );
    let cell = if closed_round { run_closed(seed) } else { run_cell(vt, pc, seed) };
    let eval = SimTime::from_micros(EVAL_MICROS_PER_ISP * cell.isps as u64);
    ctx.schedule_in(eval, move |w2: &mut QosWorld, ctx2| {
        ctx2.span_exit(&[("deployments", &cell.deployments.to_string())]);
        if closed_round {
            ctx2.trace_fields(
                "e10.settled",
                Some("isp"),
                &[("deployments", &cell.deployments.to_string())],
                "closed-QoS corollary settles",
            );
            w2.closed = Some(cell);
        } else {
            let lag = SimTime::from_micros(ctx2.rng.range(100..5_000u64));
            ctx2.trace_fields(
                "e10.adjourn",
                Some("isp"),
                &[("lag_us", &lag.as_micros().to_string())],
                format!("cell {idx} adjourns; next board convenes"),
            );
            w2.cells.push(cell);
            ctx2.schedule_in(lag, move |w3: &mut QosWorld, ctx3| {
                board_meeting(w3, ctx3, idx + 1, seed);
            });
        }
    });
}

/// Run E10 and produce the report. The five board meetings run as one
/// sequential causal chain of engine events on the shared clock.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(QosWorld::default(), seed);
    // The first board meeting is the chain's root injection.
    eng.schedule_at(SimTime::ZERO, move |w: &mut QosWorld, ctx| {
        board_meeting(w, ctx, 0, seed);
    });
    eng.run_to_completion();

    let mut table = Table::new(
        "Open-QoS deployment across the fear/greed factorial (5 ISPs, cost $80-$140)",
        &["value transfer", "provider choice", "ISPs deploying"],
    );
    let cells = eng.world.cells;
    assert_eq!(cells.len(), 4, "every factorial cell settles");
    for c in &cells {
        table.push_row(
            &format!(
                "open QoS: transfer={} choice={}",
                if c.value_transfer { "+" } else { "-" },
                if c.provider_choice { "+" } else { "-" }
            ),
            &[
                c.value_transfer.to_string(),
                c.provider_choice.to_string(),
                format!("{}/{}", c.deployments, c.isps),
            ],
        );
    }
    let closed = eng.world.closed.expect("the closed corollary settles");
    table.push_row(
        "closed QoS (vertical integration)",
        &["true".into(), "false".into(), format!("{}/{}", closed.deployments, closed.isps)],
    );

    let shape_holds = cells[0].deployments == 0
        && cells[1].deployments == 0
        && cells[2].deployments == 0
        && cells[3].deployments == cells[3].isps
        && closed.deployments == closed.isps;

    ExperimentReport {
        id: "E10".into(),
        section: "VII".into(),
        paper_claim: "Open QoS deploys only when BOTH a value-transfer mechanism (greed) and \
                      consumer provider-choice (fear) exist; neither alone covers the upgrade \
                      cost. Closed QoS — turned on only for the ISP's own applications — \
                      deploys on greed alone, at monopoly prices, shrinking the open Internet."
            .into(),
        summary: format!(
            "deployments: (-,-)={} (+,-)={} (-,+)={} (+,+)={} of 5; closed QoS {} of 5.",
            cells[0].deployments,
            cells[1].deployments,
            cells[2].deployments,
            cells[3].deployments,
            closed.deployments,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_full_cell_deploys_open_qos() {
        for seed in [1, 7, 99] {
            assert_eq!(run_cell(false, false, seed).deployments, 0);
            assert_eq!(run_cell(true, false, seed).deployments, 0);
            assert_eq!(run_cell(false, true, seed).deployments, 0);
            let full = run_cell(true, true, seed);
            assert_eq!(full.deployments, full.isps);
        }
    }

    #[test]
    fn closed_qos_deploys_without_choice() {
        let c = run_closed(1);
        assert_eq!(c.deployments, c.isps);
    }

    #[test]
    fn costs_are_deterministic_per_seed() {
        assert_eq!(costs(5, 5), costs(5, 5));
        assert_ne!(costs(5, 5), costs(6, 5));
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 5);
    }
}

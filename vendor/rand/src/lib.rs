//! Offline vendored subset of the `rand 0.8` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the small slice of `rand` it actually uses: the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits and uniform range sampling.
//! The trait surface matches `rand 0.8` closely enough that swapping the
//! real crate back in is a one-line `Cargo.toml` change; the *streams* are
//! not bit-compatible with upstream (this workspace pins its own generator,
//! `rand_chacha::ChaCha8Rng`, for cross-run stability, so nothing depends
//! on upstream stream identity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};

/// Error type for fallible RNG operations.
///
/// The vendored generators are infallible; this exists so signatures match
/// `rand 0.8`.
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`]; infallible generators never error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a 64-bit seed, expanded with SplitMix64
    /// (the same expansion for every generator, so forked streams stay
    /// decorrelated).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Values that can be drawn uniformly from a generator's raw output
/// (the vendored stand-in for sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64
);

/// Convenience methods layered over [`RngCore`], auto-implemented for every
/// generator.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the generator's raw output.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen::<f64>() < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so range tests see well-spread words.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&w[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(1);
        let _ = r.gen_range(5..5u32);
    }
}

//! E14 — Game-theoretic substrate validation (§II.B).
//!
//! Paper claims exercised:
//! 1. Vickrey mechanisms make the information sub-game tussle-free
//!    (truth-telling weakly dominates); first-price auctions keep it alive
//!    (shading strictly pays).
//! 2. TCP congestion compliance rests on social pressure, and "should this
//!    balance change, the technical design of the system will do nothing to
//!    bound or guide the resulting shift" — compliance tips from near-total
//!    to near-zero as the pressure term crosses the bandwidth-grab payoff.
//! 3. The zero-sum ↔ coordination spectrum: learning dynamics find the
//!    mixed equilibrium of a purely conflicting game and the payoff-
//!    dominant outcome of a coordination game.

use tussle_core::{ExperimentReport, Table};
use tussle_game::auction::truthful_vs_deviation;
use tussle_game::repeated::CongestionGame;
use tussle_game::solve::is_nash;
use tussle_game::{FictitiousPlay, Game};
use tussle_sim::SimRng;

/// Vickrey truthfulness over random profiles: count of profitable
/// deviations found (paper prediction: zero).
pub fn vickrey_violations(trials: usize, seed: u64) -> usize {
    let mut rng = SimRng::seed_from_u64(seed).fork("e14-vickrey");
    let mut violations = 0;
    for _ in 0..trials {
        let n_others = rng.range(1..5usize);
        let others: Vec<f64> = (0..n_others).map(|_| rng.range(0.0..100.0)).collect();
        let value = rng.range(0.0..100.0);
        let alt = rng.range(0.0..150.0);
        let (truthful, deviant) = truthful_vs_deviation(&others, value, alt);
        if deviant > truthful + 1e-9 {
            violations += 1;
        }
    }
    violations
}

/// Final defector share of the congestion game at a given social-pressure
/// level.
pub fn compliance_at(pressure: f64) -> f64 {
    CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: pressure }
        .evolve(0.1, 60_000)
}

/// Fictitious play's distance from the known mixed equilibrium of matching
/// pennies.
pub fn matching_pennies_error(rounds: u64) -> f64 {
    let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
    let mut fp = FictitiousPlay::new(g);
    fp.run(rounds);
    (fp.row_empirical()[0] - 0.5).abs().max((fp.col_empirical()[0] - 0.5).abs())
}

/// Run E14 and produce the report.
pub fn run(seed: u64) -> ExperimentReport {
    let trials = 2_000;
    let violations = vickrey_violations(trials, seed);

    let pressures = [0.0, 0.3, 0.8, 1.5];
    let defection: Vec<f64> = pressures.iter().map(|p| compliance_at(*p)).collect();

    let fp_error = matching_pennies_error(20_000);
    let coord = {
        let g = Game::coordination(vec![1.0, 3.0]);
        let mut fp = FictitiousPlay::new(g.clone());
        fp.run(5_000);
        let x = fp.row_empirical();
        let y = fp.col_empirical();
        let nash = is_nash(&g, &x, &y, 0.05);
        (x[1], nash)
    };

    let mut table = Table::new("Game-theoretic substrate checks", &["metric", "value"]);
    table.push_row(
        "Vickrey profitable deviations",
        &["violations / trials".into(), format!("{violations} / {trials}")],
    );
    for (p, d) in pressures.iter().zip(&defection) {
        table.push_row(
            &format!("congestion defection @ pressure {p}"),
            &["final defector share".into(), format!("{d:.3}")],
        );
    }
    table.push_row(
        "matching pennies (fictitious play)",
        &["|empirical - equilibrium|".into(), format!("{fp_error:.3}")],
    );
    table.push_row(
        "coordination game",
        &["mass on payoff-dominant action".into(), format!("{:.3} (nash: {})", coord.0, coord.1)],
    );

    let shape_holds = violations == 0
        && defection[0] > 0.9 // no pressure: compliance collapses
        && defection[3] < 0.05 // strong pressure: compliance holds
        && defection.windows(2).all(|w| w[1] <= w[0] + 1e-9) // monotone
        && fp_error < 0.02
        && coord.0 > 0.9
        && coord.1;

    ExperimentReport {
        id: "E14".into(),
        section: "II.B".into(),
        paper_claim: "Vickrey's mechanism makes truthful revelation dominant (a tussle-free \
                      information sub-game); TCP congestion compliance survives only while \
                      social pressure outweighs the defection payoff, with nothing technical \
                      bounding the shift; learning dynamics recover equilibria across the \
                      zero-sum/coordination spectrum."
            .into(),
        summary: format!(
            "{violations} profitable Vickrey deviations in {trials} trials; congestion \
             defection falls {:.2} → {:.2} as social pressure rises 0 → 1.5; fictitious play \
             reaches the matching-pennies mix within {:.3}.",
            defection[0], defection[3], fp_error,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vickrey_is_truthful_everywhere_we_look() {
        assert_eq!(vickrey_violations(500, 3), 0);
    }

    #[test]
    fn congestion_compliance_tips_with_pressure() {
        assert!(compliance_at(0.0) > 0.9);
        assert!(compliance_at(1.5) < 0.05);
    }

    #[test]
    fn fictitious_play_converges() {
        assert!(matching_pennies_error(20_000) < 0.02);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

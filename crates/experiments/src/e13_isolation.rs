//! E13 — Tussle-isolation ablation: ToS bits vs. port-keyed QoS (§IV.A).
//!
//! Paper claim: "The use of explicit ToS bits to select QoS, rather than
//! binding this decision to another property such as a well-known port
//! number, disentangles what application is running from what service is
//! desired. ... This modularity allows tussles about QoS to be played out
//! without distortions, such as demands that encryption be avoided simply
//! to leave well-known port information visible."
//!
//! Measured: VoIP users who bought premium service, a privacy tussle that
//! drives encryption adoption from 0% to 100%, and the two classifier
//! designs. The port-keyed design loses premium treatment exactly as
//! encryption spreads (collateral damage across tussle spaces); the
//! ToS-keyed design is indifferent. We also measure the gaming distortion:
//! port-keyed premium can be stolen by disguised bulk traffic.

use tussle_core::{principles::spillover, ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::qos::{QosPolicy, ServiceClass};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// Outcome for one (design, encryption-adoption) point.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationOutcome {
    /// Fraction of premium-paying VoIP flows that actually got premium.
    pub premium_honored: f64,
    /// Fraction of disguised bulk flows that stole premium treatment.
    pub premium_stolen: f64,
}

fn addr(v: u32) -> Address {
    Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
}

/// Classify `n` premium VoIP flows (ToS set, encryption per adoption rate)
/// and `n` disguised bulk flows under a policy, drawing from `rng`.
pub fn point_outcome(
    policy: &QosPolicy,
    encryption_adoption: f64,
    n: usize,
    rng: &mut SimRng,
) -> IsolationOutcome {
    let mut honored = 0usize;
    let mut stolen = 0usize;
    for _ in 0..n {
        // a paying VoIP flow: marks ToS 5, uses the VoIP port
        let mut voip = Packet::new(addr(1), addr(2), Protocol::Udp, 9000, ports::VOIP).with_tos(5);
        if rng.chance(encryption_adoption) {
            voip = voip.encrypt();
        }
        if policy.classify(&voip) == ServiceClass::Premium {
            honored += 1;
        }
        // a bulk transfer masquerading as the premium application: it can
        // fake a port (steganography) but it did not pay, so it does not
        // mark ToS (marking would be billed by the §IV.C value flow).
        let bulk = Packet::new(addr(3), addr(4), Protocol::Tcp, 5000, ports::P2P).steganographic();
        // under port-keyed premium for HTTP-like ports this is invisible;
        // model the masquerade against the premium port directly:
        let mut disguised = bulk.clone();
        disguised.dst_port = ports::VOIP; // what it wishes it looked like
        let looks_premium = match policy {
            QosPolicy {
                key: tussle_net::qos::QosKey::WellKnownPorts { premium_ports }, ..
            } => {
                // steganographic traffic presents whatever port it likes
                premium_ports.contains(&ports::VOIP)
            }
            _ => policy.classify(&disguised) == ServiceClass::Premium,
        };
        if looks_premium {
            stolen += 1;
        }
    }
    IsolationOutcome {
        premium_honored: honored as f64 / n as f64,
        premium_stolen: stolen as f64 / n as f64,
    }
}

/// [`point_outcome`] with a self-seeded stream — the pure entry the unit
/// tests drive; [`run`] replays the grid as engine events.
pub fn run_point(
    policy: &QosPolicy,
    encryption_adoption: f64,
    n: usize,
    seed: u64,
) -> IsolationOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e13");
    point_outcome(policy, encryption_adoption, n, &mut rng)
}

/// World for the engine-driven replay: per design, outcomes in adoption
/// order.
#[derive(Default)]
struct IsolationWorld {
    tos_points: Vec<IsolationOutcome>,
    port_points: Vec<IsolationOutcome>,
}

/// Flows per grid point.
const N_FLOWS: usize = 500;
/// The encryption-adoption sweep, in spreading order.
const ADOPTIONS: [f64; 3] = [0.0, 0.5, 1.0];

/// One (design, adoption) grid point as an engine event. Adoption spreads
/// causally: each point schedules the next adoption level after a seeded
/// deployment lag.
fn run_adoption(
    w: &mut IsolationWorld,
    ctx: &mut Ctx<IsolationWorld>,
    tos_keyed: bool,
    idx: usize,
) {
    let a = ADOPTIONS[idx];
    let design = if tos_keyed { "tos" } else { "port" };
    ctx.span_enter(
        "e13.point",
        Some("user"),
        &[("design", design), ("adoption", &format!("{:.0}%", a * 100.0))],
    );
    let policy = if tos_keyed {
        QosPolicy::tos_based(4, 0.5)
    } else {
        QosPolicy::port_based(vec![ports::VOIP], 0.5)
    };
    let o = point_outcome(&policy, a, N_FLOWS, ctx.rng);
    ctx.span_exit(&[("honored", &format!("{:.2}", o.premium_honored))]);
    if tos_keyed { &mut w.tos_points } else { &mut w.port_points }.push(o);
    if idx + 1 < ADOPTIONS.len() {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e13.spread",
            Some("user"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{design}-keyed: encryption adoption spreads past {:.0}%", a * 100.0),
        );
        ctx.schedule_in(lag, move |w2: &mut IsolationWorld, ctx2| {
            run_adoption(w2, ctx2, tos_keyed, idx + 1);
        });
    }
}

/// Run E13 and produce the report. Each classifier design's adoption sweep
/// runs as a causal chain of engine events on the shared clock.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(IsolationWorld::default(), seed);
    for (i, tos_keyed) in [true, false].into_iter().enumerate() {
        // Each classifier design is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut IsolationWorld, ctx| {
            run_adoption(w, ctx, tos_keyed, 0);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Premium honored for paying VoIP flows vs. encryption adoption (500 flows)",
        &["ToS-keyed honored", "port-keyed honored", "port-keyed stolen by masquerade"],
    );
    let tos_points = eng.world.tos_points;
    let port_points = eng.world.port_points;
    assert_eq!(tos_points.len(), ADOPTIONS.len(), "every grid point settles");
    assert_eq!(port_points.len(), ADOPTIONS.len(), "every grid point settles");
    for (i, a) in ADOPTIONS.into_iter().enumerate() {
        table.push_row(
            &format!("encryption {:.0}%", a * 100.0),
            &[
                format!("{:.2}", tos_points[i].premium_honored),
                format!("{:.2}", port_points[i].premium_honored),
                format!("{:.2}", port_points[i].premium_stolen),
            ],
        );
    }

    // spillover of the privacy tussle into the QoS space, per design
    let tos_spill = spillover(tos_points[0].premium_honored, tos_points[2].premium_honored);
    let port_spill = spillover(port_points[0].premium_honored, port_points[2].premium_honored);

    let shape_holds = tos_points.iter().all(|t| t.premium_honored > 0.99)
        && port_points[0].premium_honored > 0.99
        && port_points[1].premium_honored < 0.6
        && port_points[2].premium_honored < 0.01
        && tos_spill < 0.01
        && port_spill > 0.9
        && port_points[0].premium_stolen > 0.99
        && tos_points[0].premium_stolen < 0.01;

    ExperimentReport {
        id: "E13".into(),
        section: "IV.A".into(),
        paper_claim: "Keying QoS on explicit ToS bits isolates the QoS tussle from the privacy \
                      tussle: encryption adoption does not disturb premium service. Keying on \
                      well-known ports couples them — encryption destroys premium treatment and \
                      port masquerade steals it."
            .into(),
        summary: format!(
            "at 100% encryption, ToS-keyed honors {:.0}% of premium flows (spillover {:.2}); \
             port-keyed honors {:.0}% (spillover {:.2}) and loses {:.0}% of premium capacity \
             to masquerading bulk traffic.",
            tos_points[2].premium_honored * 100.0,
            tos_spill,
            port_points[2].premium_honored * 100.0,
            port_spill,
            port_points[0].premium_stolen * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tos_design_is_indifferent_to_encryption() {
        let tos = QosPolicy::tos_based(4, 0.5);
        for a in [0.0, 0.5, 1.0] {
            let o = run_point(&tos, a, 100, 1);
            assert_eq!(o.premium_honored, 1.0, "adoption {a}");
        }
    }

    #[test]
    fn port_design_collapses_with_encryption() {
        let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        let clear = run_point(&port, 0.0, 200, 1);
        let half = run_point(&port, 0.5, 200, 1);
        let full = run_point(&port, 1.0, 200, 1);
        assert_eq!(clear.premium_honored, 1.0);
        assert!(half.premium_honored > 0.3 && half.premium_honored < 0.7);
        assert_eq!(full.premium_honored, 0.0);
    }

    #[test]
    fn port_design_is_gameable_tos_is_not() {
        let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        let tos = QosPolicy::tos_based(4, 0.5);
        assert_eq!(run_point(&port, 0.0, 100, 1).premium_stolen, 1.0);
        assert_eq!(run_point(&tos, 0.0, 100, 1).premium_stolen, 0.0);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! Integration over the extension modules: policy-routing loci, payment
//! instruments, intermediary consent, wiretaps vs. encryption, traffic
//! simulation, and the application design guidelines — each tied back to
//! the section of the paper it implements.

use tussle::core::guidelines::AppDesign;
use tussle::econ::payments::{best_instrument, Instrument};
use tussle::econ::Money;
use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::traffic::{build_engine, Flow};
use tussle::net::{Network, Wiretap};
use tussle::routing::policyroute::{ControlLocus, RoutePolicy};
use tussle::sim::SimTime;
use tussle::trust::intermediary::{ConsentRule, Intermediary, Session};

/// §V.A.4 + §VI.A: the provider picks the observable path; the user,
/// denied control, escalates to encryption; the wiretap's yield collapses
/// while delivery statistics stay intact.
#[test]
fn wiretap_vs_encryption_under_provider_routing() {
    // provider routing picks the path through its own tap
    let user = RoutePolicy { constraints: vec![], preferences: vec![Asn(20)] };
    let provider = RoutePolicy { constraints: vec![], preferences: vec![Asn(10)] };
    let candidates = vec![vec![Asn(1), Asn(10), Asn(2)], vec![Asn(1), Asn(20), Asn(2)]];
    let chosen = ControlLocus::ProviderControl.select(&user, &provider, &candidates).unwrap();
    assert!(chosen.contains(&Asn(10)), "the tap sits in AS10 and AS10 gets the traffic");

    // traffic crosses the tap: cleartext first, then encrypted
    let mut tap = Wiretap::new();
    let src =
        Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
    let dst =
        Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
    for i in 0..10 {
        let pkt = Packet::new(src, dst, Protocol::Tcp, 1, ports::HTTP).with_payload(bytes_of(i));
        tap.observe(&pkt);
    }
    assert_eq!(tap.content_yield(), 1.0);
    for i in 0..10 {
        let pkt = Packet::new(src, dst, Protocol::Tcp, 1, ports::HTTP)
            .with_payload(bytes_of(i))
            .encrypt();
        tap.observe(&pkt);
    }
    assert_eq!(tap.content_yield(), 0.5, "encryption halves the tap's take");
    assert_eq!(tap.flow_pairs(), 1, "but traffic analysis still works");
}

fn bytes_of(i: u32) -> bytes::Bytes {
    bytes::Bytes::from(i.to_be_bytes().to_vec())
}

/// §IV.C: a content seller prices per-article, discovers the instrument
/// math, and re-prices as a subscription.
#[test]
fn content_pricing_follows_instrument_economics() {
    let per_article = Money(5_000); // $0.005
    let monthly_bundle = Money::from_dollars(10);
    // nobody can sell the article alone...
    assert!(Instrument::all().iter().all(|i| !tussle::econ::payments::viable(
        *i,
        per_article,
        0.5
    )));
    // ...but the bundle clears easily, via an aggregator
    assert!(tussle::econ::payments::viable(
        best_instrument(monthly_bundle, true),
        monthly_bundle,
        0.1
    ));
}

/// §V.B fn.13 + §VI.A: an ISP inserts a silent "enhancement" proxy; the
/// user cannot evict what they cannot see, and the guideline checker
/// flags the design; under the both-ends rule the insertion never happens.
#[test]
fn opes_consent_and_the_guidelines() {
    let silent_proxy =
        Intermediary { id: 9, service: "ad-insert".into(), faulty: true, announces_itself: false };

    let mut wild_west = Session::new(ConsentRule::NoConsent, false, false);
    wild_west.insert(silent_proxy.clone()).unwrap();
    assert!(!wild_west.healthy());
    assert!(wild_west.detect_and_recover().is_empty(), "can't evict the invisible");
    assert!(!wild_west.healthy());

    let mut iab_world = Session::new(ConsentRule::BothEnds, true, false);
    assert!(iab_world.insert(silent_proxy).is_err());
    assert!(iab_world.healthy());

    // the app that relies on silent in-network enhancement fails review
    let mut design = AppDesign::exemplary("enhanced-web");
    design.network_features_user_controlled = false;
    let violations = design.review();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].section, "VI.A");
}

/// The engine-driven workload: two flows with different priorities cross a
/// QoS-enabled router; the premium flow's measured latency distribution is
/// strictly better.
#[test]
fn traffic_simulation_measures_qos_differences() {
    let mut net = Network::new();
    let h0 = net.add_host(Asn(1));
    let r = net.add_router(Asn(1));
    let h1 = net.add_host(Asn(2));
    net.connect(h0, r, SimTime::from_millis(2), 1_000_000_000);
    net.connect(r, h1, SimTime::from_millis(20), 1_000_000_000);
    let a0 = Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
    let a1 = Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
    net.node_mut(h0).bind(a0);
    net.node_mut(h1).bind(a1);
    net.fib_mut(h0).install(Prefix::DEFAULT, r, 0);
    net.fib_mut(r).install(Prefix::new(0x0b000000, 16), h1, 0);
    net.set_qos(r, tussle::net::QosPolicy::tos_based(4, 0.5));

    let best_effort = Packet::new(a0, a1, Protocol::Udp, 1, ports::VOIP);
    let premium = best_effort.clone().with_tos(5);
    let flows = vec![
        Flow::periodic("be", h0, best_effort, SimTime::from_millis(10), 100),
        Flow::periodic("prio", h0, premium, SimTime::from_millis(10), 100),
    ];
    let mut eng = build_engine(net, flows, 11);
    eng.run_to_completion();
    let be = eng.metrics().histogram("flow.be.latency_us").unwrap().mean().unwrap();
    let prio = eng.metrics().histogram("flow.prio.latency_us").unwrap().mean().unwrap();
    assert_eq!(eng.metrics().counter("flow.be.delivered"), 100);
    assert_eq!(eng.metrics().counter("flow.prio.delivered"), 100);
    assert!(prio < be * 0.8, "premium {prio} vs best-effort {be}");
}

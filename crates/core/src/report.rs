//! Experiment reporting: paper prediction vs. measured value.
//!
//! The paper has no tables of its own; each experiment reproduces a
//! *narrated prediction* (see `EXPERIMENTS.md`). A [`Table`] holds the
//! measured rows; an [`ExperimentReport`] pairs it with the paper's claim
//! and whether the measured shape holds. Tables render as markdown (for
//! the docs) and JSON (for machine checking in integration tests).

use serde::{Deserialize, Serialize};

/// One table row: a label and its cell values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (the parameter point, e.g. `"switching_cost=$600"`).
    pub label: String,
    /// Cell values, aligned with the table's column names.
    pub values: Vec<String>,
}

/// A results table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column names (excluding the label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the cell count must match the columns.
    pub fn push_row(&mut self, label: &str, values: &[String]) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(Row { label: label.to_owned(), values: values.to_vec() });
    }

    /// Fetch a cell by row label and column name.
    pub fn cell(&self, label: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.label == label)?;
        row.values.get(col).map(|s| s.as_str())
    }

    /// Fetch a numeric cell.
    pub fn cell_f64(&self, label: &str, column: &str) -> Option<f64> {
        self.cell(label, column)?.trim_start_matches('$').parse().ok()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("| {} |", row.label));
            for v in &row.values {
                out.push_str(&format!(" {v} |"));
            }
            out.push('\n');
        }
        out
    }
}

/// A full experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"E1"`).
    pub id: String,
    /// Paper section reproduced (e.g. `"V.A.1"`).
    pub section: String,
    /// The paper's narrated prediction, quoted or paraphrased.
    pub paper_claim: String,
    /// Measured results.
    pub table: Table,
    /// Did the measured shape match the prediction?
    pub shape_holds: bool,
    /// One-sentence summary of what was measured.
    pub summary: String,
}

impl ExperimentReport {
    /// Render the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        format!(
            "## {} — §{}\n\n**Paper claim.** {}\n\n**Measured.** {} **Shape holds: {}.**\n\n{}",
            self.id,
            self.section,
            self.paper_claim,
            self.summary,
            if self.shape_holds { "yes" } else { "NO" },
            self.table.to_markdown()
        )
    }

    /// Serialize to JSON (for `EXPERIMENTS.md` regeneration and tests).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("markup vs switching cost", &["markup", "switches"]);
        t.push_row("$0", &["0.05".into(), "12".into()]);
        t.push_row("$600", &["0.55".into(), "1".into()]);
        t
    }

    #[test]
    fn cells_are_addressable() {
        let t = table();
        assert_eq!(t.cell("$0", "markup"), Some("0.05"));
        assert_eq!(t.cell("$600", "switches"), Some("1"));
        assert_eq!(t.cell("$0", "nope"), None);
        assert_eq!(t.cell("zzz", "markup"), None);
        assert_eq!(t.cell_f64("$600", "markup"), Some(0.55));
    }

    #[test]
    fn dollar_cells_parse() {
        let mut t = Table::new("x", &["price"]);
        t.push_row("a", &["$42.5".into()]);
        assert_eq!(t.cell_f64("a", "price"), Some(42.5));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row("r", &["1".into()]);
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.contains("### markup vs switching cost"));
        assert!(md.contains("| $600 | 0.55 | 1 |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = ExperimentReport {
            id: "E1".into(),
            section: "V.A.1".into(),
            paper_claim: "lock-in sustains markup".into(),
            table: table(),
            shape_holds: true,
            summary: "markup rises with switching cost".into(),
        };
        let json = r.to_json();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.to_markdown().contains("Shape holds: yes"));
    }
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI OK"

//! E15 — The rise and fall of micro-payments (§IV.C).
//!
//! Paper claim: "(There is an interesting case study in the rise and fall
//! of micro-payments, the success of the traditional credit card companies
//! for Internet payments, and the emergence of PayPal and similar
//! schemes.)" — the paper leaves the case study parenthetical; we run it.
//!
//! Measured: across payment sizes, which instrument has the lowest total
//! overhead (fees + user friction) once the §V.B requirement of buyer
//! protection is imposed. The shape of the historical outcome: pure
//! micro-payment tokens never win a protected transaction at any size;
//! account aggregation (the PayPal shape) takes the small end; percentage
//! economics decide the large end; and below the friction floor *no*
//! instrument is viable — which is why sub-cent content is sold in
//! bundles, not per item.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::payments::{best_instrument, viable, Instrument};
use tussle_econ::Money;

/// Outcome at one payment size.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentPoint {
    /// Payment amount.
    pub amount: Money,
    /// Winner among buyer-protected instruments.
    pub winner_protected: Instrument,
    /// Winner with protection waived (trusted counterparty).
    pub winner_unprotected: Instrument,
    /// Overhead ratio of the protected winner.
    pub overhead_ratio: f64,
    /// Is anything viable (overhead under half the payment)?
    pub any_viable: bool,
}

/// Evaluate one payment size.
pub fn run_point(amount: Money) -> PaymentPoint {
    let winner_protected = best_instrument(amount, true);
    let winner_unprotected = best_instrument(amount, false);
    PaymentPoint {
        amount,
        winner_protected,
        winner_unprotected,
        overhead_ratio: winner_protected.overhead_ratio(amount),
        any_viable: Instrument::all().iter().any(|i| viable(*i, amount, 0.5)),
    }
}

/// Run E15 and produce the report.
pub fn run(_seed: u64) -> ExperimentReport {
    let sizes = [
        Money(1_000),             // $0.001 — the micropayment dream
        Money(10_000),            // $0.01
        Money(250_000),           // $0.25 — a song snippet
        Money::from_dollars(1),   // $1
        Money::from_dollars(10),  // $10
        Money::from_dollars(100), // $100
    ];
    let mut table = Table::new(
        "Best payment instrument by transaction size",
        &["protected winner", "unprotected winner", "overhead ratio", "viable at all"],
    );
    let points: Vec<PaymentPoint> = sizes.iter().map(|s| run_point(*s)).collect();
    for p in &points {
        table.push_row(
            &p.amount.to_string(),
            &[
                format!("{:?}", p.winner_protected),
                format!("{:?}", p.winner_unprotected),
                format!("{:.3}", p.overhead_ratio),
                p.any_viable.to_string(),
            ],
        );
    }

    // The historical shape:
    let micropayment_never_wins_protected =
        points.iter().all(|p| p.winner_protected != Instrument::Micropayment);
    let sub_cent_dead = !points[0].any_viable;
    let aggregator_takes_the_small_end = points[2].winner_protected == Instrument::Aggregator
        && points[3].winner_protected == Instrument::Aggregator;
    let overhead_falls_with_size =
        points.windows(2).all(|w| w[1].overhead_ratio <= w[0].overhead_ratio + 1e-12);
    let shape_holds = micropayment_never_wins_protected
        && sub_cent_dead
        && aggregator_takes_the_small_end
        && overhead_falls_with_size;

    ExperimentReport {
        id: "E15".into(),
        section: "IV.C".into(),
        paper_claim: "Micro-payments fell, credit-card-style protected instruments won, and \
                      PayPal-shaped aggregation emerged — value flow needs trust mediation and \
                      amortized fixed costs, not just low marginal fees."
            .into(),
        summary: format!(
            "micropayments win a protected transaction at no size; sub-cent payments are not \
             viable for any instrument (overhead ratio {:.1} at $0.001); aggregation wins from \
             $0.25 through $1; overhead falls monotonically with size.",
            points[0].overhead_ratio
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micropayments_never_win_when_protection_matters() {
        for amount in [Money(1_000), Money(250_000), Money::from_dollars(50)] {
            assert_ne!(run_point(amount).winner_protected, Instrument::Micropayment);
        }
    }

    #[test]
    fn sub_cent_content_is_unsellable_per_item() {
        let p = run_point(Money(1_000));
        assert!(!p.any_viable);
        assert!(p.overhead_ratio > 1.0, "overhead exceeds the payment itself");
    }

    #[test]
    fn overhead_ratio_is_monotone_decreasing() {
        let a = run_point(Money(10_000)).overhead_ratio;
        let b = run_point(Money::from_dollars(1)).overhead_ratio;
        let c = run_point(Money::from_dollars(100)).overhead_ratio;
        assert!(a > b && b > c);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 6);
    }
}

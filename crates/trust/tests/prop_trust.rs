//! Property tests for trust derivation, identity admission, and mediation.

use proptest::prelude::*;
use tussle_sim::SimRng;
use tussle_trust::identity::{AnonymityPolicy, IdentityFramework, IdentityScheme};
use tussle_trust::mediator::{run_transaction, Mediator, ReputationBook, TransactionSetup};
use tussle_trust::TrustGraph;

proptest! {
    /// Derived trust is always in [0, 1], never exceeds the best direct
    /// edge out of the source, and self-trust is exactly 1.
    #[test]
    fn derived_trust_is_bounded(
        edges in proptest::collection::vec((0u64..8, 0u64..8, 0.0f64..=1.0), 1..40),
        decay in 0.1f64..=1.0,
        target in 0u64..8,
    ) {
        let mut g = TrustGraph::new(decay);
        let mut best_out_of_zero: f64 = 0.0;
        for (from, to, w) in &edges {
            if from != to {
                g.trust(*from, *to, *w);
            }
        }
        // recompute best direct edge AFTER inserts (later inserts overwrite)
        for to in 0..8 {
            if let Some(w) = g.direct(0, to) {
                best_out_of_zero = best_out_of_zero.max(w);
            }
        }
        let d = g.derived(0, target, 6);
        prop_assert!((0.0..=1.0).contains(&d), "derived {d}");
        prop_assert_eq!(g.derived(target, target, 6), 1.0);
        if target != 0 {
            prop_assert!(
                d <= best_out_of_zero + 1e-9,
                "derived {d} exceeds best first hop {best_out_of_zero}"
            );
        }
    }

    /// A longer hop limit never yields LESS trust.
    #[test]
    fn trust_is_monotone_in_hop_budget(
        edges in proptest::collection::vec((0u64..6, 0u64..6, 0.1f64..=1.0), 1..20),
    ) {
        let mut g = TrustGraph::new(0.8);
        for (from, to, w) in &edges {
            if from != to {
                g.trust(*from, *to, *w);
            }
        }
        for target in 1..6 {
            let short = g.derived(0, target, 2);
            let long = g.derived(0, target, 5);
            prop_assert!(long >= short - 1e-9, "budget 5 gave {long} < budget 2's {short}");
        }
    }

    /// Identity admission is coherent: a party with a verifiable tag is
    /// never limited, and refuse-anonymous admits exactly the tagged.
    #[test]
    fn admission_is_coherent(key in 0u64..100, registered in any::<bool>()) {
        let mut f = IdentityFramework::new(vec![], vec![]);
        if registered {
            f.register_tag(key);
        }
        let scheme = IdentityScheme::Pseudonym { key };
        let has_tag = f.network_tag(&scheme).is_some();
        prop_assert_eq!(has_tag, registered);
        for policy in [
            AnonymityPolicy::AcceptAll,
            AnonymityPolicy::RefuseAnonymous,
            AnonymityPolicy::LimitAnonymous,
        ] {
            let (ok, limited) = f.admit(policy, &scheme);
            if has_tag {
                prop_assert!(ok && !limited, "tagged parties pass {policy:?} unrestricted");
            }
            if policy == AnonymityPolicy::AcceptAll {
                prop_assert!(ok);
            }
            if policy == AnonymityPolicy::RefuseAnonymous && !has_tag {
                prop_assert!(!ok);
            }
        }
    }

    /// Escrow caps losses: buyer net never falls below -(cap + fee),
    /// whatever the fraud rate and price.
    #[test]
    fn escrow_bounds_the_downside(
        price in 1i64..10_000_000,
        fraud in 0.0f64..=1.0,
        cap in 0i64..1_000_000,
        fee in 0i64..100_000,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut book = ReputationBook::new();
        let setup = TransactionSetup { value: price + 1, price, fraud_probability: fraud };
        let escrow = Mediator::Escrow { liability_cap: cap, fee };
        let o = run_transaction(setup, &escrow, 1, &mut book, &mut rng);
        prop_assert!(o.buyer_net >= -(cap + fee), "net {} below floor", o.buyer_net);
    }

    /// Reputation scores stay in (0, 1) and move in the right direction.
    #[test]
    fn reputation_scores_behave(goods in 0u64..50, bads in 0u64..50) {
        let mut book = ReputationBook::new();
        for _ in 0..goods {
            book.record(7, true);
        }
        for _ in 0..bads {
            book.record(7, false);
        }
        let s = book.score(7);
        prop_assert!(s > 0.0 && s < 1.0);
        if goods > bads {
            prop_assert!(s > 0.5);
        }
        if bads > goods {
            prop_assert!(s < 0.5);
        }
    }
}

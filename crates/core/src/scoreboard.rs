//! The per-stakeholder tussle scoreboard.
//!
//! The paper's thesis is that outcomes are decided by tussles among
//! stakeholders, yet a plain [`ExperimentReport`](crate::ExperimentReport)
//! summarizes a run by experiment, not by who won. The scoreboard closes
//! that gap: it folds the observation scope's per-stakeholder attribution
//! ([`tussle_sim::obs::StakeholderCost`], itself fed by
//! `TraceEntry.stakeholder` annotations on spans around market rounds,
//! policy evaluations and ledger settlements) into a per-run — and, merged,
//! per-campaign — answer to "who spent the run's virtual time, and who
//! came out ahead?".
//!
//! Everything here is deterministic (virtual time and entry counts only)
//! but **digest-excluded**, exactly like wall time: the fold is a derived
//! projection of streams every digest already covers, so attaching a
//! scoreboard can never flip a determinism check or move a golden digest.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tussle_sim::obs::UNATTRIBUTED;
use tussle_sim::{RunRecord, StakeholderCost};

/// Per-stakeholder tallies for one run or one merged campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scoreboard {
    /// Lane tallies in stakeholder-name order. The
    /// [`UNATTRIBUTED`] lane collects work no stakeholder annotated.
    pub stakeholders: BTreeMap<String, StakeholderCost>,
}

impl Scoreboard {
    /// Fold one observed run's stakeholder attribution into a scoreboard.
    /// Returns `None` for a run that recorded no trace entries at all, so
    /// reports of trace-free runs carry no empty appendix.
    pub fn from_record(record: &RunRecord) -> Option<Scoreboard> {
        if record.stakeholders.is_empty() {
            return None;
        }
        Some(Scoreboard { stakeholders: record.stakeholders.clone() })
    }

    /// Merge another scoreboard into this one (lanes add field-wise).
    /// Addition is commutative and associative, so campaign aggregation is
    /// independent of worker scheduling.
    pub fn merge(&mut self, other: &Scoreboard) {
        for (lane, cost) in &other.stakeholders {
            self.stakeholders.entry(lane.clone()).or_default().merge(cost);
        }
    }

    /// True when no lane holds any tally.
    pub fn is_empty(&self) -> bool {
        self.stakeholders.is_empty()
    }

    /// Total trace entries across all lanes — equal to the run's
    /// `trace_entries` counter by the conservation invariant.
    pub fn total_entries(&self) -> u64 {
        self.stakeholders.values().map(|c| c.entries).sum()
    }

    /// Lanes ranked for display: most virtual time first, ties by entry
    /// count then name; the unattributed lane always sorts last.
    pub fn ranked(&self) -> Vec<(&str, &StakeholderCost)> {
        let mut lanes: Vec<(&str, &StakeholderCost)> =
            self.stakeholders.iter().map(|(k, v)| (k.as_str(), v)).collect();
        lanes.sort_by(|a, b| {
            let residual = |name: &str| name == UNATTRIBUTED;
            residual(a.0)
                .cmp(&residual(b.0))
                .then_with(|| {
                    (b.1.virtual_micros, b.1.entries).cmp(&(a.1.virtual_micros, a.1.entries))
                })
                .then_with(|| a.0.cmp(b.0))
        });
        lanes
    }

    /// Who won: the named lane (unattributed excluded) with the most
    /// virtual time, ties broken by entry count. A residual exact tie is
    /// reported as `"contested"`; `None` when no named lane recorded
    /// anything.
    pub fn who_won(&self) -> Option<String> {
        let named: Vec<(&str, &StakeholderCost)> =
            self.ranked().into_iter().filter(|(name, _)| *name != UNATTRIBUTED).collect();
        let (first, cost) = named.first()?;
        if let Some((_, second)) = named.get(1) {
            if (cost.virtual_micros, cost.entries) == (second.virtual_micros, second.entries) {
                return Some("contested".to_owned());
            }
        }
        Some((*first).to_owned())
    }

    /// Render as the one-line tussle appendix under an experiment table,
    /// mirroring the cost appendix's shape.
    pub fn to_markdown(&self) -> String {
        let lanes: Vec<String> = self
            .ranked()
            .iter()
            .map(|(name, c)| format!("{name} {}us·{}e", c.virtual_micros, c.entries))
            .collect();
        let verdict = self.who_won().unwrap_or_else(|| "no contest".to_owned());
        format!("*Tussle: {} — who won: {verdict}.*", lanes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(entries: u64, spans: u64, events: u64, virtual_micros: u64) -> StakeholderCost {
        StakeholderCost { entries, spans, events, virtual_micros }
    }

    fn board(lanes: &[(&str, StakeholderCost)]) -> Scoreboard {
        Scoreboard { stakeholders: lanes.iter().map(|(n, c)| ((*n).to_owned(), *c)).collect() }
    }

    #[test]
    fn winner_is_by_virtual_time_then_entries() {
        let b = board(&[
            ("user", lane(10, 2, 8, 500)),
            ("isp", lane(50, 10, 40, 200)),
            (UNATTRIBUTED, lane(99, 0, 99, 9_999)),
        ]);
        assert_eq!(b.who_won().as_deref(), Some("user"), "unattributed can never win");
        let tie = board(&[("a", lane(3, 1, 2, 100)), ("b", lane(3, 1, 2, 100))]);
        assert_eq!(tie.who_won().as_deref(), Some("contested"));
        let entries_break = board(&[("a", lane(9, 1, 8, 100)), ("b", lane(3, 1, 2, 100))]);
        assert_eq!(entries_break.who_won().as_deref(), Some("a"));
        assert_eq!(board(&[(UNATTRIBUTED, lane(1, 0, 1, 0))]).who_won(), None);
        assert_eq!(Scoreboard::default().who_won(), None);
    }

    #[test]
    fn merge_adds_lanes_fieldwise_and_commutes() {
        let a = board(&[("user", lane(1, 1, 0, 10)), ("isp", lane(2, 0, 2, 5))]);
        let b = board(&[("user", lane(3, 0, 3, 7)), ("gov", lane(1, 1, 0, 1))]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.stakeholders["user"], lane(4, 1, 3, 17));
        assert_eq!(ab.stakeholders.len(), 3);
        assert_eq!(ab.total_entries(), 7);
    }

    #[test]
    fn markdown_ranks_lanes_and_names_the_winner() {
        let b = board(&[
            ("isp", lane(5, 1, 4, 40)),
            ("user", lane(3, 1, 2, 90)),
            (UNATTRIBUTED, lane(7, 0, 7, 0)),
        ]);
        let md = b.to_markdown();
        assert_eq!(
            md,
            "*Tussle: user 90us·3e, isp 40us·5e, (unattributed) 0us·7e — who won: user.*"
        );
        let empty_named = board(&[(UNATTRIBUTED, lane(1, 0, 1, 0))]);
        assert!(empty_named.to_markdown().contains("who won: no contest"));
    }

    #[test]
    fn from_record_skips_empty_runs() {
        assert_eq!(Scoreboard::from_record(&RunRecord::default()), None);
        let g = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
        tussle_sim::obs::event(tussle_sim::SimTime::ZERO, "t", "m");
        let rec = g.finish();
        let board = Scoreboard::from_record(&rec).expect("one entry recorded");
        assert_eq!(board.total_entries(), rec.trace_entries);
    }

    #[test]
    fn scoreboard_roundtrips_through_json() {
        let b = board(&[("user", lane(1, 1, 0, 10))]);
        let json = serde_json::to_string(&b).unwrap();
        let back: Scoreboard = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}

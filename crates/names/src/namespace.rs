//! Hierarchical names and the (entangled) registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dotted hierarchical name, stored as labels, leftmost first
/// (`"www.example.com"` → `["www", "example", "com"]`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name(Vec<String>);

impl Name {
    /// Parse from dotted text. Empty labels are rejected.
    pub fn parse(text: &str) -> Option<Name> {
        if text.is_empty() {
            return None;
        }
        let labels: Vec<String> = text.split('.').map(|s| s.to_ascii_lowercase()).collect();
        if labels.iter().any(|l| l.is_empty()) {
            return None;
        }
        Some(Name(labels))
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> &[String] {
        &self.0
    }

    /// The second-level label — the part trademark fights are about
    /// (`"example"` in `"www.example.com"`). For a one-label name, that
    /// label.
    pub fn registrable_label(&self) -> &str {
        if self.0.len() >= 2 {
            &self.0[self.0.len() - 2]
        } else {
            &self.0[0]
        }
    }

    /// Is `self` a subdomain of (or equal to) `parent`?
    pub fn under(&self, parent: &Name) -> bool {
        self.0.len() >= parent.0.len() && self.0[self.0.len() - parent.0.len()..] == parent.0[..]
    }
}

impl core::fmt::Display for Name {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

// Lets `Name` key serialized registries in its dotted form.
impl serde::StringKey for Name {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        Name::parse(key).ok_or_else(|| serde::DeError(format!("invalid Name map key `{key}`")))
    }
}

/// State of a registered name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordStatus {
    /// Resolving normally.
    Active,
    /// Suspended pending or following a dispute — resolution fails.
    Suspended,
}

/// A registry record: the entangled design binds the name directly to a
/// machine address AND carries the ownership that trademark disputes fight
/// over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameRecord {
    /// Registrant id.
    pub owner: u64,
    /// Machine address the name resolves to.
    pub target: u32,
    /// Whether the registrant knowingly squatted a mark (the bad-faith
    /// criterion UDRP panels look for).
    pub bad_faith: bool,
    /// Record status.
    pub status: RecordStatus,
}

/// Registration failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegistryError {
    /// The name is already registered.
    Taken,
    /// No such record.
    NotFound,
}

impl core::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RegistryError::Taken => f.write_str("the name is already registered"),
            RegistryError::NotFound => f.write_str("no such record"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry: name → record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    records: BTreeMap<Name, NameRecord>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a name (first come, first served — the policy that invited
    /// the trademark tussle).
    pub fn register(
        &mut self,
        name: Name,
        owner: u64,
        target: u32,
        bad_faith: bool,
    ) -> Result<(), RegistryError> {
        if self.records.contains_key(&name) {
            return Err(RegistryError::Taken);
        }
        self.records
            .insert(name, NameRecord { owner, target, bad_faith, status: RecordStatus::Active });
        Ok(())
    }

    /// Authoritative resolution: the machine address, if active.
    pub fn resolve(&self, name: &Name) -> Option<u32> {
        let rec = self.records.get(name)?;
        (rec.status == RecordStatus::Active).then_some(rec.target)
    }

    /// Record access.
    pub fn record(&self, name: &Name) -> Option<&NameRecord> {
        self.records.get(name)
    }

    /// Update the target (re-hosting a service).
    pub fn update_target(&mut self, name: &Name, target: u32) -> Result<(), RegistryError> {
        let rec = self.records.get_mut(name).ok_or(RegistryError::NotFound)?;
        rec.target = target;
        Ok(())
    }

    /// Transfer ownership (dispute outcome). The new owner's machine is
    /// not the old owner's machine: the target changes, breaking whatever
    /// ran behind the old name.
    pub fn transfer(
        &mut self,
        name: &Name,
        new_owner: u64,
        new_target: u32,
    ) -> Result<(), RegistryError> {
        let rec = self.records.get_mut(name).ok_or(RegistryError::NotFound)?;
        rec.owner = new_owner;
        rec.target = new_target;
        rec.status = RecordStatus::Active;
        Ok(())
    }

    /// Suspend a name (dispute pending).
    pub fn suspend(&mut self, name: &Name) -> Result<(), RegistryError> {
        let rec = self.records.get_mut(name).ok_or(RegistryError::NotFound)?;
        rec.status = RecordStatus::Suspended;
        Ok(())
    }

    /// All registered names.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.records.keys()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("WWW.Example.COM").to_string(), "www.example.com");
        assert!(Name::parse("").is_none());
        assert!(Name::parse("a..b").is_none());
        assert_eq!(n("com").labels(), ["com"]);
    }

    #[test]
    fn registrable_label() {
        assert_eq!(n("www.example.com").registrable_label(), "example");
        assert_eq!(n("example.com").registrable_label(), "example");
        assert_eq!(n("localhost").registrable_label(), "localhost");
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("www.example.com").under(&n("example.com")));
        assert!(n("example.com").under(&n("com")));
        assert!(n("example.com").under(&n("example.com")));
        assert!(!n("example.org").under(&n("example.com")));
        assert!(!n("com").under(&n("example.com")));
    }

    #[test]
    fn first_come_first_served() {
        let mut r = Registry::new();
        r.register(n("example.com"), 1, 0xA, false).unwrap();
        assert_eq!(r.register(n("example.com"), 2, 0xB, false), Err(RegistryError::Taken));
        assert_eq!(r.resolve(&n("example.com")), Some(0xA));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn suspension_breaks_resolution() {
        let mut r = Registry::new();
        r.register(n("example.com"), 1, 0xA, false).unwrap();
        r.suspend(&n("example.com")).unwrap();
        assert_eq!(r.resolve(&n("example.com")), None);
        assert_eq!(r.record(&n("example.com")).unwrap().status, RecordStatus::Suspended);
    }

    #[test]
    fn transfer_changes_owner_and_target() {
        let mut r = Registry::new();
        r.register(n("brand.com"), 1, 0xA, true).unwrap();
        r.transfer(&n("brand.com"), 99, 0xB).unwrap();
        let rec = r.record(&n("brand.com")).unwrap();
        assert_eq!(rec.owner, 99);
        assert_eq!(r.resolve(&n("brand.com")), Some(0xB));
    }

    #[test]
    fn missing_records_error() {
        let mut r = Registry::new();
        assert_eq!(r.suspend(&n("ghost.com")), Err(RegistryError::NotFound));
        assert_eq!(r.update_target(&n("ghost.com"), 1), Err(RegistryError::NotFound));
        assert_eq!(r.resolve(&n("ghost.com")), None);
    }
}

//! Run digests: determinism claims as one-line equality checks.
//!
//! The paper's "design for choice" guidelines demand that the network can
//! explain itself; the first thing worth explaining is *whether two runs
//! were the same run*. A [`RunDigest`] is an FNV-1a hash over a run's
//! structured trace and final metrics snapshot (or, for the ambient
//! observation layer, over the run's full operation stream). Comparing two
//! digests replaces byte-diffing rendered JSON: equal digests mean the runs
//! recorded the same traces and the same metrics in the same order.

use serde::{Deserialize, Serialize};

/// Incremental FNV-1a (64-bit). Small, allocation-free, stable across
/// platforms — the same mixing the RNG fork labels already use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte (used as a domain-separation tag between fields).
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` via its bit pattern (NaN payloads and signed zeros
    /// are distinguished, which is exactly what a determinism check wants).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

/// The digest of one run. Renders as 16 hex digits; equality of two
/// digests is the one-line determinism check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunDigest(pub u64);

impl RunDigest {
    /// Digest of a run that recorded nothing at all.
    pub fn empty() -> Self {
        RunDigest(Fnv1a::new().finish())
    }

    /// Render as a fixed-width lowercase hex string.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the [`RunDigest::to_hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunDigest)
    }
}

impl Default for RunDigest {
    /// The digest of a run that recorded nothing ([`RunDigest::empty`]),
    /// not the zero hash.
    fn default() -> Self {
        RunDigest::empty()
    }
}

impl core::fmt::Display for RunDigest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = RunDigest(0x0123_4567_89ab_cdef);
        assert_eq!(d.to_hex(), "0123456789abcdef");
        assert_eq!(RunDigest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(RunDigest::from_hex("xyz"), None);
        assert_eq!(format!("{d}"), "0123456789abcdef");
    }

    #[test]
    fn f64_bits_distinguish_nan_and_zero_signs() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}

//! Self-profiling over the experiment registry.
//!
//! `tussle-cli profile` answers "where does a run spend its budget?": each
//! selected experiment runs once under a Profile-mode observation scope
//! (`tussle_sim::obs`), and the result pairs the deterministic cost
//! appendix with the nondeterministic extras — wall time and per-topic
//! virtual-time/wall-time attribution — that are deliberately kept out of
//! reports, goldens and digests. `tussle-cli trace` dumps the captured
//! structured trace stream instead, optionally filtered by topic.

use crate::registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tussle_core::RunCost;
use tussle_sim::obs::TopicCost;
use tussle_sim::trace::TraceEntry;

/// Why a profile run could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// An id in `only` names no experiment in the registry.
    UnknownExperiment(String),
}

impl core::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProfileError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (the registry has E1..=E17)")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// One experiment's profile: deterministic cost plus wall-clock attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Experiment id (e.g. `"E10"`).
    pub id: String,
    /// The seed profiled.
    pub seed: u64,
    /// Whether the run's shape held (a panicked run reports `false`).
    pub shape_holds: bool,
    /// The deterministic cost appendix (absent if the run panicked).
    pub cost: Option<RunCost>,
    /// Total wall time of the run, in nanoseconds. Nondeterministic.
    pub wall_nanos: u64,
    /// Per-topic attribution: engine events and substrate spans, with
    /// virtual and wall time. Topic keys are deterministic; wall values
    /// are not.
    pub topics: BTreeMap<String, TopicCost>,
}

impl ProfileReport {
    /// Render as a human-readable text block.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# {} profile (seed {}) — {} wall, shape holds: {}\n",
            self.id,
            self.seed,
            fmt_nanos(self.wall_nanos),
            if self.shape_holds { "yes" } else { "NO" },
        );
        if let Some(c) = &self.cost {
            out.push_str(&format!(
                "  {} events, {} rng draws, {} forwards, {} spans, {} trace entries — digest {}\n",
                c.events, c.rng_draws, c.forwards, c.spans, c.trace_entries, c.digest
            ));
        }
        if !self.topics.is_empty() {
            out.push_str("  topic attribution (events, virtual time, wall time):\n");
            // Heaviest wall-time first; ties broken by topic name so the
            // ordering is stable when wall times collapse to equal values.
            let mut rows: Vec<(&String, &TopicCost)> = self.topics.iter().collect();
            rows.sort_by(|a, b| b.1.wall_nanos.cmp(&a.1.wall_nanos).then_with(|| a.0.cmp(b.0)));
            for (topic, t) in rows {
                out.push_str(&format!(
                    "    {:<24} {:>8} ev  {:>10}us virtual  {:>10} wall\n",
                    topic,
                    t.events,
                    t.virtual_micros,
                    fmt_nanos(t.wall_nanos)
                ));
            }
        }
        out
    }
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.1}us", nanos as f64 / 1e3)
    }
}

/// Select registry entries by id (in request order), or the whole registry.
fn select(only: &[String]) -> Result<Vec<crate::ExperimentEntry>, ProfileError> {
    let full = registry();
    if only.is_empty() {
        return Ok(full);
    }
    let mut picked = Vec::with_capacity(only.len());
    for id in only {
        let entry = full
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(id))
            .ok_or_else(|| ProfileError::UnknownExperiment(id.clone()))?;
        picked.push(*entry);
    }
    Ok(picked)
}

/// Profile the selected experiments (all of them when `only` is empty) at
/// one seed. Runs sequentially — concurrent runs would contend for the
/// core and corrupt each other's wall-time attribution.
pub fn collect(seed: u64, only: &[String]) -> Result<Vec<ProfileReport>, ProfileError> {
    let selected = select(only)?;
    Ok(selected
        .into_iter()
        .map(|(name, run)| {
            let (report, record) = crate::run_profiled(name, run, seed);
            ProfileReport {
                id: name.to_owned(),
                seed,
                shape_holds: report.shape_holds,
                cost: report.cost,
                wall_nanos: record.wall_nanos,
                topics: record.topics,
            }
        })
        .collect())
}

/// A rendered trace dump plus how many entries actually matched, so
/// callers (the CLI) can treat a zero-match filter as a failure instead of
/// printing headers over nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// The rendered dump: per-experiment headers and entry lines.
    pub text: String,
    /// Total entries matched across all selected experiments.
    pub matched: usize,
}

/// Run the selected experiments at one seed and dump their captured
/// structured trace streams as indented text lines, filtered to topics
/// starting with `grep` when given. Dropped-entry counts are reported
/// rather than silently hidden.
pub fn trace_dump(
    seed: u64,
    only: &[String],
    grep: Option<&str>,
) -> Result<TraceDump, ProfileError> {
    let selected = select(only)?;
    let mut out = String::new();
    let mut matched = 0usize;
    for (name, run) in selected {
        let (_, record) = crate::run_profiled(name, run, seed);
        let matching: Vec<&TraceEntry> = record
            .ring
            .iter()
            .filter(|e| grep.is_none_or(|prefix| e.topic.starts_with(prefix)))
            .collect();
        matched += matching.len();
        out.push_str(&format!(
            "# {name} (seed {seed}) — {} entries{}{}\n",
            matching.len(),
            match grep {
                Some(g) => format!(" matching '{g}' of {} captured", record.ring.len()),
                None => String::new(),
            },
            if record.ring_dropped > 0 {
                format!(", {} dropped by the capture ring", record.ring_dropped)
            } else {
                String::new()
            }
        ));
        out.push('\n');
        for e in matching {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out.push('\n');
    }
    Ok(TraceDump { text: out, matched })
}

/// Run the selected experiments under Profile observation and return each
/// one's full [`tussle_sim::RunRecord`], in request order, for the export
/// renderers. Jobs run on scoped worker threads stealing from a shared
/// atomic index (the sweep execution model): *which* thread runs an
/// experiment varies run to run, but records land in fixed slots, and the
/// exporters render only virtual-time fields — so every downstream
/// rendering is byte-identical across `--threads 1/2/8`.
pub fn export_records(
    seed: u64,
    only: &[String],
    threads: Option<usize>,
) -> Result<Vec<(String, tussle_sim::RunRecord)>, ProfileError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let selected = select(only)?;
    let jobs = selected.len();
    let workers = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1));
    let next = AtomicUsize::new(0);
    let mut harvested: Vec<(usize, tussle_sim::RunRecord)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= jobs {
                            break;
                        }
                        let (name, run) = selected[job];
                        let (_, record) = crate::run_profiled(name, run, seed);
                        local.push((job, record));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker threads do not panic")).collect()
    });
    harvested.sort_by_key(|(job, _)| *job);
    Ok(harvested.into_iter().map(|(job, record)| (selected[job].0.to_owned(), record)).collect())
}

/// One experiment's trace dump in structured form, for `trace --json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJson {
    /// Experiment id (registry spelling).
    pub experiment: String,
    /// The seed traced.
    pub seed: u64,
    /// Entries captured by the ring (before filtering).
    pub captured: u64,
    /// Entries the bounded ring evicted during the run.
    pub dropped: u64,
    /// Entries matching the topic-prefix filter.
    pub matched: u64,
    /// The matching entries, oldest first.
    pub entries: Vec<TraceEntry>,
}

/// Run the selected experiments at one seed and dump their captured trace
/// streams as a JSON array of per-experiment objects — the same selection
/// and topic-prefix filter semantics as [`trace_dump`], machine-readable.
pub fn trace_json(
    seed: u64,
    only: &[String],
    grep: Option<&str>,
) -> Result<TraceDump, ProfileError> {
    let selected = select(only)?;
    let mut dumps = Vec::with_capacity(selected.len());
    let mut matched = 0usize;
    for (name, run) in selected {
        let (_, record) = crate::run_profiled(name, run, seed);
        let captured = record.ring.len() as u64;
        let entries: Vec<TraceEntry> = record
            .ring
            .into_iter()
            .filter(|e| grep.is_none_or(|prefix| e.topic.starts_with(prefix)))
            .collect();
        matched += entries.len();
        dumps.push(TraceJson {
            experiment: name.to_owned(),
            seed,
            captured,
            dropped: record.ring_dropped,
            matched: entries.len() as u64,
            entries,
        });
    }
    let text = serde_json::to_string_pretty(&dumps).expect("trace dumps serialize") + "\n";
    Ok(TraceDump { text, matched })
}

/// Run the selected experiments at one seed and render their captured
/// span streams in collapsed-stack (flamegraph) format: one
/// `Exp;span;path self_virtual_micros` line per frame path, rooted at the
/// experiment id. Attribution is by *virtual* time, so the output is
/// deterministic and snapshot-testable — feed it to `inferno` or
/// `flamegraph.pl` to render an SVG.
pub fn collapsed(seed: u64, only: &[String]) -> Result<String, ProfileError> {
    let selected = select(only)?;
    let mut out = String::new();
    for (name, run) in selected {
        let (_, record) = crate::run_profiled(name, run, seed);
        out.push_str(&tussle_sim::flame::to_collapsed(&record.ring, name));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = collect(1, &["E99".into()]).unwrap_err();
        assert_eq!(err, ProfileError::UnknownExperiment("E99".into()));
        assert!(err.to_string().contains("E99"));
    }

    #[test]
    fn profile_reports_cost_and_topics() {
        let reports = collect(2002, &["E10".into()]).unwrap();
        assert_eq!(reports.len(), 1);
        let p = &reports[0];
        assert_eq!(p.id, "E10");
        assert!(p.shape_holds);
        let cost = p.cost.as_ref().expect("cost attached");
        assert_eq!(cost.digest.len(), 16);
        assert!(p.wall_nanos > 0);
        let text = p.to_text();
        assert!(text.contains("E10 profile (seed 2002)"), "{text}");
        assert!(text.contains("digest"), "{text}");
    }

    #[test]
    fn profile_cost_matches_cost_mode_digest() {
        // Profile mode must observe the same deterministic stream as Cost
        // mode — the extra capture cannot perturb the digest.
        let profiled = collect(7, &["E4".into()]).unwrap();
        let plain = crate::run_captured("E4", crate::e04_source_routing::run, 7);
        assert_eq!(profiled[0].cost, plain.cost);
    }

    #[test]
    fn trace_dump_filters_by_topic_prefix() {
        let all = trace_dump(2002, &["E2".into()], None).unwrap();
        let econ = trace_dump(2002, &["E2".into()], Some("econ.")).unwrap();
        assert!(all.text.contains("# E2 (seed 2002)"));
        let entries =
            |dump: &str| dump.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
        assert!(econ.matched <= all.matched);
        assert_eq!(entries(&econ.text), econ.matched);
        for line in econ.text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            assert!(line.contains("econ."), "non-econ line leaked: {line}");
        }
        let nothing = trace_dump(2002, &["E2".into()], Some("zzz.")).unwrap();
        assert_eq!(nothing.matched, 0, "a non-matching prefix matches nothing");
        assert!(nothing.text.contains("0 entries matching"));
    }

    #[test]
    fn collapsed_stacks_are_deterministic_and_virtual_time_attributed() {
        let a = collapsed(2002, &["E10".into()]).unwrap();
        let b = collapsed(2002, &["E10".into()]).unwrap();
        assert_eq!(a, b, "virtual-time attribution is deterministic");
        assert!(!a.is_empty(), "E10 opens spans");
        for line in a.lines() {
            assert!(line.starts_with("E10;"), "frames root at the experiment id: {line}");
            let (_, value) = line.rsplit_once(' ').expect("`path value` shape");
            value.parse::<u64>().expect("self time is an integer micros count");
        }
        assert!(collapsed(1, &["E99".into()]).is_err());
    }
}

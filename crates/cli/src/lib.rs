//! # tussle-cli — argument parsing and command dispatch
//!
//! The logic behind the `tussle-cli` binary, kept in a library so the
//! parser and renderers are unit-testable. Commands:
//!
//! * `experiments [--seed N] [--json] [--only E1,E5]` — run the evaluation
//!   (or a subset) and print markdown or JSON reports;
//! * `sweep --seeds N [--base S] [--only E1,E5] [--json] [--threads K]` —
//!   run the registry over many seeds and report shape stability;
//! * `chaos [--intensities 0,0.2,..] [--seeds N] [--base S] [--only E1,E5]
//!   [--json] [--threads K]` — run the chaos campaign and report each
//!   claim's robustness margin;
//! * `profile [--seed N] [--json] [--collapsed] [--only E1,E5]` — run
//!   experiments under the self-profiling observation scope and print
//!   wall-time/virtual-time attribution per topic, or (`--collapsed`)
//!   flamegraph-ready collapsed-stack lines attributed by virtual time;
//! * `trace [--seed N] [--only E1,E5] [--grep econ.] [--json]` — run
//!   experiments and dump their structured trace streams, optionally
//!   filtered by topic prefix (a filter matching nothing is an error);
//!   `--json` emits the same entries as machine-readable JSON;
//! * `explain --only E9 --event e7 [--seed N] [--json]` — replay one
//!   experiment and walk the causal provenance chain from a root injection
//!   down to the named event;
//! * `diff --only E9 --seed 2002 --seed-b 2003 [--intensity X]
//!   [--intensity-b Y] [--threads K] [--json]` — run two configurations of
//!   one experiment and bisect their trace streams to the first diverging
//!   entry, with aligned context and each side's causal ancestry;
//! * `checkpoint --only E9 --dir DIR [--every N] [--seed S] [--json]` —
//!   run one experiment under a persistent checkpoint scope, writing
//!   `ck_<cursor>.json` snapshots plus a digest-chained `manifest.json`
//!   into the directory;
//! * `resume --from <file> [--json]` — load a snapshot, replay its run
//!   deterministically, verify byte-exactness at the snapshot's cursor and
//!   finish the run (a divergence or unreadable file exits nonzero);
//! * `recovery [--seeds N] [--base S] [--kills K] [--every N]
//!   [--only E1,E4] [--json] [--threads K]` — the crash-injection recovery
//!   campaign: kill every selected experiment at seeded random
//!   engine-event indices, restore, and hold the stitched runs to
//!   byte-exact equality with uninterrupted goldens;
//! * `fuzz [--budget N] [--seeds S] [--base B] [--json] [--corpus DIR]
//!   [--threads K]` — the coverage-guided tussle-space fuzzer: seeded
//!   random scenarios composing topology, traffic, faults, middleboxes,
//!   contracts and policy, checked against the cross-layer invariant
//!   oracles, with violating scenarios shrunk and (with `--corpus`)
//!   serialized as repro entries;
//! * `export [--seed N] [--only E9] [--format chrome|prom|jsonl]
//!   [--out FILE] [--threads K]` — run experiments under the profiling
//!   scope and render their observation records as tool-ready telemetry:
//!   a Chrome/Perfetto trace-event document (`chrome`, exactly one
//!   experiment), Prometheus text exposition (`prom`) or one JSON trace
//!   entry per line (`jsonl`) — all driven by virtual time only, so the
//!   bytes are identical across runs and worker counts;
//! * `health [--bench BENCH_sim.json] [--baseline FILE] [--json]` — the
//!   cross-campaign health gate: holds the bench sidecar to per-entry
//!   regression thresholds against a baseline sidecar, re-derives a
//!   cross-section of campaign digests at two worker counts, and checks
//!   scoreboard conservation; any regression exits nonzero;
//! * `list` — list experiment ids, sections and one-line claims;
//! * `ladder <mechanism>` — play an escalation ladder to quiescence from a
//!   named opening mechanism;
//! * `mechanisms` — print the mechanism/counter catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use tussle_core::{EscalationLadder, Mechanism};
use tussle_experiments as experiments;
use tussle_sim::checkpoint::{self, CheckpointConfig, CheckpointPolicy};
use tussle_sim::EventId;

/// JSON summary printed by `checkpoint --json`.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointSummary {
    /// The experiment that ran.
    pub experiment: String,
    /// Its seed.
    pub seed: u64,
    /// Checkpoint interval in engine events.
    pub every: u64,
    /// Engine events dispatched under the scope.
    pub events: u64,
    /// Snapshots captured.
    pub checkpoints: u64,
    /// Snapshot files written, in capture order.
    pub files: Vec<String>,
    /// The digest-chained manifest path.
    pub manifest: Option<String>,
    /// Whether the run's paper-shape verdict held.
    pub shape_holds: bool,
}

/// JSON summary printed by `resume --json`.
#[derive(Debug, Clone, Serialize)]
pub struct ResumeSummary {
    /// The experiment that resumed.
    pub experiment: String,
    /// Its seed.
    pub seed: u64,
    /// Event cursor of the snapshot the replay verified against.
    pub cursor: u64,
    /// Whether the replay matched the snapshot byte-exactly.
    pub verified: bool,
    /// The finished run's report.
    pub report: tussle_core::ExperimentReport,
}

/// One bench trend row in the health report: a current median held
/// against its baseline under a per-entry threshold.
#[derive(Debug, Clone, Serialize)]
pub struct BenchTrend {
    /// Bench id from the sidecar.
    pub bench: String,
    /// Baseline median in nanoseconds.
    pub baseline_ns: f64,
    /// Current median in nanoseconds.
    pub current_ns: f64,
    /// `current_ns / baseline_ns`.
    pub ratio: f64,
    /// Largest acceptable ratio for this bench.
    pub threshold: f64,
    /// Did the ratio breach the threshold?
    pub regressed: bool,
}

/// One campaign digest re-derived by the health gate's determinism probe.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignDigest {
    /// Experiment id.
    pub id: String,
    /// The sweep's folded per-seed run digest.
    pub digest: String,
}

/// The verdict printed by `tussle-cli health`, folding the bench sidecar
/// trend, a campaign-digest determinism probe and a scoreboard
/// conservation check into one pass/fail gate.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// Path of the current bench sidecar.
    pub bench_file: String,
    /// Path of the baseline sidecar.
    pub baseline_file: String,
    /// Per-bench trends, in baseline order.
    pub trends: Vec<BenchTrend>,
    /// Benches present in the baseline but missing from the current
    /// sidecar (each counts as a regression — deletion hides trends).
    pub missing: Vec<String>,
    /// Did the campaign digests agree across worker counts?
    pub determinism_ok: bool,
    /// The probe's per-experiment digests (at one worker).
    pub campaign_digests: Vec<CampaignDigest>,
    /// Lane-entry total of the probed run's scoreboard.
    pub scoreboard_entries: u64,
    /// Did the scoreboard lanes account for every trace entry?
    pub scoreboard_conserves: bool,
    /// The probed run's winning stakeholder, if any lane was named.
    pub who_won: Option<String>,
    /// Every regression found, rendered as one line each.
    pub regressions: Vec<String>,
    /// True iff `regressions` is empty.
    pub healthy: bool,
}

/// Experiments the health gate sweeps for its campaign-digest probe: an
/// econ-heavy, a ladder-heavy and a game-theoretic cross-section of the
/// registry, kept small so `health` stays fast enough for CI.
const HEALTH_PROBE: [&str; 3] = ["E1", "E9", "E14"];

/// The experiment whose scoreboard the health gate checks for lane
/// conservation — E9 annotates both user and provider lanes.
const HEALTH_SCOREBOARD_PROBE: &str = "E9";

/// Per-entry regression ceiling on `current/baseline` bench medians. The
/// obs family guards the disabled-instrumentation overhead the whole
/// observability layer promises to keep invisible, so it gets the
/// tightest leash; topology-scale and forwarding benches are the
/// noisiest under CI and get the loosest.
fn bench_threshold(bench: &str) -> f64 {
    if bench.starts_with("obs/") {
        1.15
    } else if bench.starts_with("scale/") || bench.starts_with("forward/") {
        1.40
    } else {
        1.25
    }
}

/// Load a bench sidecar: a JSON array of `{"bench": .., "median_ns": ..}`
/// objects as written by the bench harness. Empty or malformed sidecars
/// are errors — a gate that silently checks nothing is worse than none.
fn load_bench_sidecar(path: &str) -> Result<Vec<(String, f64)>, UsageError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| UsageError(format!("could not read bench sidecar '{path}': {e}")))?;
    let parsed: serde::Value = serde_json::from_str(&text)
        .map_err(|e| UsageError(format!("bench sidecar '{path}' is not JSON: {e:?}")))?;
    let entries = match &parsed {
        serde::Value::Seq(items) => items,
        _ => return Err(UsageError(format!("bench sidecar '{path}': expected a top-level array"))),
    };
    let mut out = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let bench = match entry.field("bench") {
            Ok(serde::Value::Str(s)) => s.clone(),
            _ => {
                return Err(UsageError(format!(
                    "bench sidecar '{path}': entry {i} has no string 'bench'"
                )))
            }
        };
        let median_ns = match entry.field("median_ns") {
            Ok(serde::Value::U64(n)) => *n as f64,
            Ok(serde::Value::I64(n)) => *n as f64,
            Ok(serde::Value::F64(x)) => *x,
            _ => {
                return Err(UsageError(format!(
                    "bench sidecar '{path}': entry '{bench}' has no numeric 'median_ns'"
                )))
            }
        };
        if median_ns <= 0.0 {
            return Err(UsageError(format!(
                "bench sidecar '{path}': entry '{bench}' has non-positive median {median_ns}"
            )));
        }
        out.push((bench, median_ns));
    }
    if out.is_empty() {
        return Err(UsageError(format!("bench sidecar '{path}' holds no bench entries")));
    }
    Ok(out)
}

/// Run the health gate's three checks and fold them into a report.
fn run_health(bench_file: &str, baseline_file: &str) -> Result<HealthReport, UsageError> {
    let current = load_bench_sidecar(bench_file)?;
    let baseline = load_bench_sidecar(baseline_file)?;
    let mut trends = Vec::new();
    let mut missing = Vec::new();
    let mut regressions = Vec::new();
    for (bench, baseline_ns) in &baseline {
        match current.iter().find(|(name, _)| name == bench) {
            None => {
                missing.push(bench.clone());
                regressions.push(format!(
                    "bench '{bench}' is in the baseline but missing from '{bench_file}'"
                ));
            }
            Some((_, current_ns)) => {
                let ratio = current_ns / baseline_ns;
                let threshold = bench_threshold(bench);
                let regressed = ratio > threshold;
                if regressed {
                    regressions.push(format!(
                        "bench '{bench}' regressed: {current_ns:.0}ns vs baseline \
                         {baseline_ns:.0}ns ({ratio:.2}x > {threshold:.2}x)"
                    ));
                }
                trends.push(BenchTrend {
                    bench: bench.clone(),
                    baseline_ns: *baseline_ns,
                    current_ns: *current_ns,
                    ratio,
                    threshold,
                    regressed,
                });
            }
        }
    }

    // Determinism probe: sweep a registry cross-section at two worker
    // counts; the folded campaign digests must agree bit-for-bit.
    let probe = |threads: usize| {
        experiments::run_sweep(&experiments::SweepConfig {
            seeds: 2,
            base_seed: 1,
            only: Some(HEALTH_PROBE.iter().map(|s| (*s).to_owned()).collect()),
            threads: Some(threads),
        })
        .map_err(|e| UsageError(e.to_string()))
    };
    let one = probe(1)?;
    let two = probe(2)?;
    let campaign_digests: Vec<CampaignDigest> = one
        .experiments
        .iter()
        .map(|e| CampaignDigest { id: e.id.clone(), digest: e.digest.clone() })
        .collect();
    let determinism_ok = one
        .experiments
        .iter()
        .map(|e| (&e.id, &e.digest))
        .eq(two.experiments.iter().map(|e| (&e.id, &e.digest)));
    if !determinism_ok {
        regressions.push("campaign digests differ between --threads 1 and --threads 2".to_owned());
    }

    // Scoreboard probe: the per-stakeholder fold must conserve the run's
    // global trace-entry counter, and a named lane must have won.
    let (name, run) = experiments::registry()
        .into_iter()
        .find(|(n, _)| *n == HEALTH_SCOREBOARD_PROBE)
        .expect("the scoreboard probe experiment is registered");
    let (report, record) = experiments::run_profiled(name, run, 2002);
    let scoreboard_entries =
        report.scoreboard.as_ref().map(tussle_core::Scoreboard::total_entries).unwrap_or(0);
    let scoreboard_conserves =
        report.scoreboard.is_some() && scoreboard_entries == record.trace_entries;
    let who_won = report.scoreboard.as_ref().and_then(tussle_core::Scoreboard::who_won);
    if !scoreboard_conserves {
        regressions.push(format!(
            "scoreboard conservation failed for {HEALTH_SCOREBOARD_PROBE}: {} lane entries vs \
             {} trace entries",
            scoreboard_entries, record.trace_entries
        ));
    }

    let healthy = regressions.is_empty();
    Ok(HealthReport {
        bench_file: bench_file.to_owned(),
        baseline_file: baseline_file.to_owned(),
        trends,
        missing,
        determinism_ok,
        campaign_digests,
        scoreboard_entries,
        scoreboard_conserves,
        who_won,
        regressions,
        healthy,
    })
}

/// Render a health report as text: a trend table, then one line per probe.
fn render_health(r: &HealthReport) -> String {
    let mut out = format!("# Health — {}\n\n", if r.healthy { "ok" } else { "REGRESSION" });
    out.push_str(&format!("bench sidecar: {} vs baseline {}\n\n", r.bench_file, r.baseline_file));
    out.push_str("| bench | baseline ns | current ns | ratio | threshold | verdict |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    for t in &r.trends {
        out.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.3} | {:.2} | {} |\n",
            t.bench,
            t.baseline_ns,
            t.current_ns,
            t.ratio,
            t.threshold,
            if t.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for m in &r.missing {
        out.push_str(&format!("| {m} | — | missing | — | — | REGRESSED |\n"));
    }
    out.push('\n');
    out.push_str(&format!(
        "campaign determinism (sweep {} × 2 seeds, threads 1 vs 2): {}\n",
        HEALTH_PROBE.join(","),
        if r.determinism_ok { "digests identical" } else { "DIGESTS DIVERGED" }
    ));
    for d in &r.campaign_digests {
        out.push_str(&format!("  {} {}\n", d.id, d.digest));
    }
    out.push_str(&format!(
        "scoreboard conservation ({HEALTH_SCOREBOARD_PROBE}, seed 2002): {} lane entries{} — \
         who won: {}\n",
        r.scoreboard_entries,
        if r.scoreboard_conserves { ", conserved" } else { " — CONSERVATION BROKEN" },
        r.who_won.as_deref().unwrap_or("no contest"),
    ));
    if !r.regressions.is_empty() {
        out.push('\n');
        for reg in &r.regressions {
            out.push_str(&format!("regression: {reg}\n"));
        }
    }
    out
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run experiments.
    Experiments {
        /// RNG seed.
        seed: u64,
        /// Emit JSON instead of markdown.
        json: bool,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
    },
    /// Sweep the registry over many seeds and report shape stability.
    Sweep {
        /// Number of seeds to sweep.
        seeds: u64,
        /// First seed of the range.
        base_seed: u64,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
        /// Emit JSON instead of markdown.
        json: bool,
        /// Worker-thread cap (`None` = available parallelism).
        threads: Option<usize>,
    },
    /// Run the chaos campaign: fault intensities × seeds, with a
    /// robustness margin per experiment.
    Chaos {
        /// Fault intensities to scan, each in `[0, 1]`.
        intensities: Vec<f64>,
        /// Seeds per intensity.
        seeds: u64,
        /// First seed of the range.
        base_seed: u64,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
        /// Emit JSON instead of markdown.
        json: bool,
        /// Worker-thread cap (`None` = available parallelism).
        threads: Option<usize>,
    },
    /// Profile experiments: per-topic virtual-time/wall-time attribution.
    Profile {
        /// RNG seed.
        seed: u64,
        /// Emit JSON instead of text.
        json: bool,
        /// Emit collapsed-stack (flamegraph) lines instead of the report.
        collapsed: bool,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
    },
    /// Explain why one event ran: its causal provenance chain.
    Explain {
        /// The experiment id (exactly one).
        id: String,
        /// RNG seed.
        seed: u64,
        /// The event to explain.
        event: EventId,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Diff two run configurations of one experiment to their first
    /// diverging trace entry.
    Diff {
        /// The experiment id (exactly one).
        id: String,
        /// Seed of side A.
        seed: u64,
        /// Seed of side B.
        seed_b: u64,
        /// Ambient fault intensity of side A.
        intensity: f64,
        /// Ambient fault intensity of side B.
        intensity_b: f64,
        /// Emit JSON instead of text.
        json: bool,
        /// Worker-thread cap (`None` = one thread per side).
        threads: Option<usize>,
    },
    /// Dump the structured trace stream of one or more experiments.
    Trace {
        /// RNG seed.
        seed: u64,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
        /// Keep only entries whose topic starts with this prefix.
        grep: Option<String>,
        /// Emit structured JSON instead of text.
        json: bool,
    },
    /// Export observed runs as tool-ready telemetry documents.
    Export {
        /// RNG seed.
        seed: u64,
        /// Restrict to these ids (empty = all; `chrome` needs exactly one).
        only: Vec<String>,
        /// Output format: `chrome`, `prom` or `jsonl`.
        format: String,
        /// Write the exact rendered bytes here instead of stdout.
        out: Option<String>,
        /// Worker-thread cap (`None` = available parallelism).
        threads: Option<usize>,
    },
    /// Run the cross-campaign health gate.
    Health {
        /// Current bench sidecar path.
        bench: String,
        /// Baseline sidecar (`None` = compare the sidecar with itself).
        baseline: Option<String>,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Run one experiment under a persistent checkpoint scope.
    Checkpoint {
        /// The experiment id (exactly one).
        id: String,
        /// RNG seed.
        seed: u64,
        /// Checkpoint interval in engine events (≥ 1).
        every: u64,
        /// Directory snapshots and the manifest are written into.
        dir: String,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Resume a run from a snapshot file and verify byte-exactness.
    Resume {
        /// Path of the snapshot file.
        from: String,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Run the crash-injection recovery campaign.
    Recovery {
        /// Seeds per experiment.
        seeds: u64,
        /// First seed of the range.
        base_seed: u64,
        /// Kill points per `(experiment, seed)` pair.
        kills: u64,
        /// Checkpoint interval in engine events (≥ 1).
        every: u64,
        /// Restrict to these ids (empty = all).
        only: Vec<String>,
        /// Emit JSON instead of markdown.
        json: bool,
        /// Worker-thread cap (`None` = available parallelism).
        threads: Option<usize>,
    },
    /// Run the coverage-guided tussle-space fuzz campaign.
    Fuzz {
        /// Total scenario-execution budget across all chains.
        budget: u64,
        /// Number of mutation chains (one per seed).
        seeds: u64,
        /// First chain seed.
        base_seed: u64,
        /// Directory to serialize shrunk repros into (`None` = don't).
        corpus: Option<String>,
        /// Emit JSON instead of markdown.
        json: bool,
        /// Worker-thread cap (`None` = available parallelism).
        threads: Option<usize>,
    },
    /// List the experiment registry.
    List,
    /// Play an escalation ladder from a mechanism.
    Ladder {
        /// The opening mechanism name.
        mechanism: Mechanism,
    },
    /// Print the mechanism catalog.
    Mechanisms,
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl core::fmt::Display for UsageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for UsageError {}

/// Every catalog mechanism with its CLI name.
pub fn mechanism_names() -> Vec<(&'static str, Mechanism)> {
    use Mechanism::*;
    vec![
        ("port-firewall", PortFirewall),
        ("trust-firewall", TrustFirewall),
        ("nat", Nat),
        ("tunnel", Tunnel),
        ("tunnel-detection", TunnelDetection),
        ("encryption", Encryption),
        ("encryption-blocking", EncryptionBlocking),
        ("steganography", Steganography),
        ("value-pricing", ValuePricing),
        ("paid-source-routing", PaidSourceRouting),
        ("provider-routing", ProviderRouting),
        ("overlay-routing", OverlayRouting),
        ("dns-perversion", DnsPerversion),
        ("server-choice", ServerChoice),
        ("qos-tos-bits", QosTosBits),
        ("qos-port-based", QosPortBased),
        ("third-party-mediation", ThirdPartyMediation),
        ("anonymity", Anonymity),
        ("refusing-anonymous", RefusingAnonymous),
        ("regulation", Regulation),
    ]
}

/// Parse a mechanism by CLI name.
pub fn parse_mechanism(name: &str) -> Result<Mechanism, UsageError> {
    mechanism_names().into_iter().find(|(n, _)| *n == name).map(|(_, m)| m).ok_or_else(|| {
        UsageError(format!(
            "unknown mechanism '{name}'; run `tussle-cli mechanisms` for the catalog"
        ))
    })
}

/// Parse a `--only` id list (`"E1,E4"`). Rejects empty segments so typos
/// like `"E1,,E4"` or a trailing comma fail loudly instead of silently
/// filtering nothing, and duplicate ids (`"E1,E1"`) which would silently
/// run an experiment twice or mask a typo'd second id.
fn parse_only(v: &str) -> Result<Vec<String>, UsageError> {
    let ids: Vec<String> = v
        .split(',')
        .map(|s| {
            let id = s.trim().to_uppercase();
            if id.is_empty() {
                Err(UsageError(format!("malformed --only list '{v}': empty id")))
            } else {
                Ok(id)
            }
        })
        .collect::<Result<_, _>>()?;
    for (i, id) in ids.iter().enumerate() {
        if ids[..i].contains(id) {
            return Err(UsageError(format!("malformed --only list '{v}': duplicate id '{id}'")));
        }
    }
    Ok(ids)
}

/// Parse a `--only` value that must name exactly one experiment
/// (for `explain` and `diff`, which compare/replay a single run).
fn parse_single_only(v: &str) -> Result<String, UsageError> {
    let ids = parse_only(v)?;
    match <[String; 1]>::try_from(ids) {
        Ok([id]) => Ok(id),
        Err(ids) => {
            Err(UsageError(format!("--only must name exactly one experiment here, got {ids:?}")))
        }
    }
}

/// Parse a `--threads` worker count. Zero workers cannot make progress, so
/// it is rejected uniformly across `sweep`, `chaos` and `diff`.
fn parse_threads(v: &str) -> Result<usize, UsageError> {
    let n: usize = v.parse().map_err(|_| UsageError(format!("bad thread count '{v}'")))?;
    if n == 0 {
        return Err(UsageError("--threads must be at least 1".into()));
    }
    Ok(n)
}

/// Parse an `--every` checkpoint interval. Zero would demand a snapshot
/// between every pair of events and none at once, so it is rejected
/// uniformly across `checkpoint` and `recovery`.
fn parse_every(v: &str) -> Result<u64, UsageError> {
    let n: u64 = v.parse().map_err(|_| UsageError(format!("bad checkpoint interval '{v}'")))?;
    if n == 0 {
        return Err(UsageError("--every must be at least 1".into()));
    }
    Ok(n)
}

/// Parse a single fault intensity in `[0, 1]`.
fn parse_intensity(v: &str) -> Result<f64, UsageError> {
    let i: f64 = v.parse().map_err(|_| UsageError(format!("bad intensity '{v}': not a number")))?;
    if !i.is_finite() || !(0.0..=1.0).contains(&i) {
        return Err(UsageError(format!("bad intensity '{v}': must be in [0, 1]")));
    }
    Ok(i)
}

/// Parse an `--intensities` list (`"0,0.2,0.5"`). Each value must be a
/// number in `[0, 1]`; empty segments are rejected like in [`parse_only`].
fn parse_intensities(v: &str) -> Result<Vec<f64>, UsageError> {
    v.split(',')
        .map(|s| {
            let s = s.trim();
            if s.is_empty() {
                return Err(UsageError(format!("malformed --intensities list '{v}': empty value")));
            }
            parse_intensity(s)
        })
        .collect()
}

/// Parse the argument vector (without the binary name).
pub fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("mechanisms") => Ok(Command::Mechanisms),
        Some("ladder") => {
            let name =
                it.next().ok_or_else(|| UsageError("ladder needs a mechanism name".into()))?;
            Ok(Command::Ladder { mechanism: parse_mechanism(name)? })
        }
        Some("experiments") => {
            let mut seed = 2002u64;
            let mut json = false;
            let mut only = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--json" => json = true,
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Experiments { seed, json, only })
        }
        Some("profile") => {
            let mut seed = 2002u64;
            let mut json = false;
            let mut collapsed = false;
            let mut only = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--json" => json = true,
                    "--collapsed" => collapsed = true,
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if collapsed && json {
                return Err(UsageError(
                    "--collapsed emits flamegraph-ready text; it cannot combine with --json".into(),
                ));
            }
            Ok(Command::Profile { seed, json, collapsed, only })
        }
        Some("explain") => {
            let mut seed = 2002u64;
            let mut json = false;
            let mut id = None;
            let mut event = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--json" => json = true,
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs one id like E9".into()))?;
                        id = Some(parse_single_only(v)?);
                    }
                    "--event" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--event needs an id like e7".into()))?;
                        event =
                            Some(experiments::causality::parse_event_id(v).map_err(UsageError)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            let id = id.ok_or_else(|| UsageError("explain needs --only <experiment>".into()))?;
            let event = event.ok_or_else(|| UsageError("explain needs --event <id>".into()))?;
            Ok(Command::Explain { id, seed, event, json })
        }
        Some("diff") => {
            let mut id = None;
            let mut seed = 2002u64;
            let mut seed_b = None;
            let mut intensity = 0.0;
            let mut intensity_b = None;
            let mut json = false;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs one id like E9".into()))?;
                        id = Some(parse_single_only(v)?);
                    }
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--seed-b" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed-b needs a value".into()))?;
                        seed_b =
                            Some(v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?);
                    }
                    "--intensity" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--intensity needs a value".into()))?;
                        intensity = parse_intensity(v)?;
                    }
                    "--intensity-b" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--intensity-b needs a value".into()))?;
                        intensity_b = Some(parse_intensity(v)?);
                    }
                    "--json" => json = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            let id = id.ok_or_else(|| UsageError("diff needs --only <experiment>".into()))?;
            // Unspecified B-side knobs mirror side A, so `--seed-b` alone
            // diffs seeds and `--intensity-b` alone diffs intensities.
            let seed_b = seed_b.unwrap_or(seed);
            let intensity_b = intensity_b.unwrap_or(intensity);
            if seed_b == seed && intensity_b == intensity {
                return Err(UsageError(
                    "diff needs the sides to differ: give --seed-b and/or --intensity-b".into(),
                ));
            }
            Ok(Command::Diff { id, seed, seed_b, intensity, intensity_b, json, threads })
        }
        Some("trace") => {
            let mut seed = 2002u64;
            let mut only = Vec::new();
            let mut grep = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    "--grep" => {
                        let v = it.next().ok_or_else(|| {
                            UsageError("--grep needs a topic prefix like econ.".into())
                        })?;
                        if v.is_empty() {
                            return Err(UsageError("--grep needs a nonempty prefix".into()));
                        }
                        grep = Some(v.clone());
                    }
                    "--json" => json = true,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Trace { seed, only, grep, json })
        }
        Some("export") => {
            let mut seed = 2002u64;
            let mut only = Vec::new();
            let mut format = "chrome".to_owned();
            let mut out = None;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    "--format" => {
                        let v = it.next().ok_or_else(|| {
                            UsageError("--format needs chrome, prom or jsonl".into())
                        })?;
                        match v.as_str() {
                            "chrome" | "prom" | "jsonl" => format = v.clone(),
                            other => {
                                return Err(UsageError(format!(
                                "unknown export format '{other}': expected chrome, prom or jsonl"
                            )))
                            }
                        }
                    }
                    "--out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--out needs a file path".into()))?;
                        out = Some(v.clone());
                    }
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Export { seed, only, format, out, threads })
        }
        Some("health") => {
            let mut bench = "BENCH_sim.json".to_owned();
            let mut baseline = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--bench" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--bench needs a sidecar file".into()))?;
                        bench = v.clone();
                    }
                    "--baseline" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--baseline needs a sidecar file".into()))?;
                        baseline = Some(v.clone());
                    }
                    "--json" => json = true,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Health { bench, baseline, json })
        }
        Some("sweep") => {
            let mut seeds = 32u64;
            let mut base_seed = 1u64;
            let mut only = Vec::new();
            let mut json = false;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seeds" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seeds needs a count".into()))?;
                        seeds =
                            v.parse().map_err(|_| UsageError(format!("bad seed count '{v}'")))?;
                        if seeds == 0 {
                            return Err(UsageError("--seeds must be at least 1".into()));
                        }
                    }
                    "--base" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--base needs a seed".into()))?;
                        base_seed =
                            v.parse().map_err(|_| UsageError(format!("bad base seed '{v}'")))?;
                    }
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    "--json" => json = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Sweep { seeds, base_seed, only, json, threads })
        }
        Some("chaos") => {
            let defaults = experiments::ChaosConfig::default();
            let mut intensities = defaults.intensities;
            let mut seeds = defaults.seeds;
            let mut base_seed = defaults.base_seed;
            let mut only = Vec::new();
            let mut json = false;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--intensities" => {
                        let v = it.next().ok_or_else(|| {
                            UsageError("--intensities needs values like 0,0.2,0.5".into())
                        })?;
                        intensities = parse_intensities(v)?;
                    }
                    "--seeds" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seeds needs a count".into()))?;
                        seeds =
                            v.parse().map_err(|_| UsageError(format!("bad seed count '{v}'")))?;
                        if seeds == 0 {
                            return Err(UsageError("--seeds must be at least 1".into()));
                        }
                    }
                    "--base" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--base needs a seed".into()))?;
                        base_seed =
                            v.parse().map_err(|_| UsageError(format!("bad base seed '{v}'")))?;
                    }
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    "--json" => json = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Chaos { intensities, seeds, base_seed, only, json, threads })
        }
        Some("checkpoint") => {
            let mut id = None;
            let mut seed = 2002u64;
            let mut every = 500u64;
            let mut dir = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs one id like E9".into()))?;
                        id = Some(parse_single_only(v)?);
                    }
                    "--seed" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seed needs a value".into()))?;
                        seed = v.parse().map_err(|_| UsageError(format!("bad seed '{v}'")))?;
                    }
                    "--every" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--every needs an event count".into()))?;
                        every = parse_every(v)?;
                    }
                    "--dir" => {
                        let v = it.next().ok_or_else(|| UsageError("--dir needs a path".into()))?;
                        dir = Some(v.clone());
                    }
                    "--json" => json = true,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            let id = id.ok_or_else(|| UsageError("checkpoint needs --only <experiment>".into()))?;
            let dir = dir.ok_or_else(|| UsageError("checkpoint needs --dir <directory>".into()))?;
            Ok(Command::Checkpoint { id, seed, every, dir, json })
        }
        Some("resume") => {
            let mut from = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--from" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--from needs a snapshot file".into()))?;
                        from = Some(v.clone());
                    }
                    "--json" => json = true,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            let from = from.ok_or_else(|| UsageError("resume needs --from <snapshot>".into()))?;
            Ok(Command::Resume { from, json })
        }
        Some("recovery") => {
            let defaults = experiments::RecoveryConfig::default();
            let mut seeds = defaults.seeds;
            let mut base_seed = defaults.base_seed;
            let mut kills = defaults.kill_points;
            let mut every = defaults.every;
            let mut only = Vec::new();
            let mut json = false;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seeds" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seeds needs a count".into()))?;
                        seeds =
                            v.parse().map_err(|_| UsageError(format!("bad seed count '{v}'")))?;
                        if seeds == 0 {
                            return Err(UsageError("--seeds must be at least 1".into()));
                        }
                    }
                    "--base" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--base needs a seed".into()))?;
                        base_seed =
                            v.parse().map_err(|_| UsageError(format!("bad base seed '{v}'")))?;
                    }
                    "--kills" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--kills needs a count".into()))?;
                        kills =
                            v.parse().map_err(|_| UsageError(format!("bad kill count '{v}'")))?;
                        if kills == 0 {
                            return Err(UsageError("--kills must be at least 1".into()));
                        }
                    }
                    "--every" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--every needs an event count".into()))?;
                        every = parse_every(v)?;
                    }
                    "--only" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--only needs ids like E1,E4".into()))?;
                        only = parse_only(v)?;
                    }
                    "--json" => json = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Recovery { seeds, base_seed, kills, every, only, json, threads })
        }
        Some("fuzz") => {
            let defaults = experiments::FuzzConfig::default();
            let mut budget = defaults.budget;
            let mut seeds = defaults.seeds;
            let mut base_seed = defaults.base_seed;
            let mut corpus = None;
            let mut json = false;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--budget" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--budget needs a count".into()))?;
                        budget = v.parse().map_err(|_| UsageError(format!("bad budget '{v}'")))?;
                        if budget == 0 {
                            return Err(UsageError("--budget must be at least 1".into()));
                        }
                    }
                    "--seeds" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--seeds needs a count".into()))?;
                        seeds =
                            v.parse().map_err(|_| UsageError(format!("bad seed count '{v}'")))?;
                        if seeds == 0 {
                            return Err(UsageError("--seeds must be at least 1".into()));
                        }
                    }
                    "--base" => {
                        let v =
                            it.next().ok_or_else(|| UsageError("--base needs a seed".into()))?;
                        base_seed =
                            v.parse().map_err(|_| UsageError(format!("bad base seed '{v}'")))?;
                    }
                    "--corpus" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--corpus needs a directory".into()))?;
                        corpus = Some(v.clone());
                    }
                    "--json" => json = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--threads needs a count".into()))?;
                        threads = Some(parse_threads(v)?);
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Fuzz { budget, seeds, base_seed, corpus, json, threads })
        }
        Some(other) => Err(UsageError(format!("unknown command '{other}'; try `tussle-cli help`"))),
    }
}

/// Execute a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, UsageError> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::List => {
            let mut out = String::from("id   section        claim\n");
            for r in experiments::run_all_parallel(2002) {
                out.push_str(&format!(
                    "{:<4} §{:<12} {}\n",
                    r.id,
                    r.section,
                    r.paper_claim.split('.').next().unwrap_or_default().trim()
                ));
            }
            Ok(out)
        }
        Command::Mechanisms => {
            let mut out =
                String::from("mechanism               deployer                 countered by\n");
            for (name, m) in mechanism_names() {
                let counters: Vec<String> =
                    m.countered_by().iter().map(|c| format!("{c:?}")).collect();
                out.push_str(&format!(
                    "{:<23} {:<24} {}\n",
                    name,
                    format!("{:?}", m.typical_deployer()),
                    if counters.is_empty() { "(terminal)".to_owned() } else { counters.join(", ") }
                ));
            }
            Ok(out)
        }
        Command::Ladder { mechanism } => {
            let ladder = EscalationLadder::play_to_the_end(mechanism, 16);
            let moves: Vec<String> =
                ladder.steps.iter().map(|s| format!("{:?}", s.mechanism)).collect();
            Ok(format!(
                "{}\n({} escalations, terminal: {})\n",
                moves.join(" -> "),
                ladder.escalations(),
                ladder.ended_terminal()
            ))
        }
        Command::Profile { seed, json, collapsed, only } => {
            if collapsed {
                // `main` prints with a trailing newline; the collapsed
                // rendering already ends in one.
                return experiments::profile::collapsed(seed, &only)
                    .map(|s| s.trim_end_matches('\n').to_owned())
                    .map_err(|e| UsageError(e.to_string()));
            }
            let reports = experiments::profile::collect(seed, &only)
                .map_err(|e| UsageError(e.to_string()))?;
            if json {
                Ok(serde_json::to_string_pretty(&reports)
                    .expect("profile reports serialize to JSON"))
            } else {
                let mut out = String::new();
                for p in &reports {
                    out.push_str(&p.to_text());
                    out.push('\n');
                }
                Ok(out)
            }
        }
        Command::Explain { id, seed, event, json } => {
            let explanation =
                experiments::explain(&id, seed, event).map_err(|e| UsageError(e.to_string()))?;
            if json {
                Ok(serde_json::to_string_pretty(&explanation)
                    .expect("explanations serialize to JSON"))
            } else {
                Ok(explanation.to_text())
            }
        }
        Command::Diff { id, seed, seed_b, intensity, intensity_b, json, threads } => {
            let cfg = experiments::DiffConfig {
                id,
                seed_a: seed,
                seed_b,
                intensity_a: intensity,
                intensity_b,
                threads,
            };
            let report = experiments::diff(&cfg).map_err(|e| UsageError(e.to_string()))?;
            if json {
                Ok(serde_json::to_string_pretty(&report).expect("diff reports serialize to JSON"))
            } else {
                Ok(report.to_text())
            }
        }
        Command::Trace { seed, only, grep, json } => {
            let dump = if json {
                experiments::trace_json(seed, &only, grep.as_deref())
            } else {
                experiments::trace_dump(seed, &only, grep.as_deref())
            }
            .map_err(|e| UsageError(e.to_string()))?;
            // A filter that matches nothing is almost always a typo'd
            // prefix; fail loudly instead of printing empty sections.
            if dump.matched == 0 {
                if let Some(g) = grep {
                    return Err(UsageError(format!("0 entries matched --grep '{g}'")));
                }
            }
            Ok(dump.text)
        }
        Command::Export { seed, only, format, out, threads } => {
            let records = experiments::export_records(seed, &only, threads)
                .map_err(|e| UsageError(e.to_string()))?;
            if format == "chrome" && records.len() != 1 {
                return Err(UsageError(format!(
                    "chrome traces are one JSON document per run; --format chrome needs \
                     --only naming exactly one experiment, got {}",
                    records.len()
                )));
            }
            let mut rendered = String::new();
            for (name, record) in &records {
                match format.as_str() {
                    "chrome" => rendered.push_str(&tussle_sim::to_chrome(record)),
                    "prom" => {
                        // A comment header keeps concatenated expositions
                        // attributable; a single selection stays pristine.
                        if records.len() > 1 {
                            rendered.push_str(&format!("# experiment {name} seed {seed}\n"));
                        }
                        rendered.push_str(&tussle_sim::to_prometheus(record));
                    }
                    _ => rendered.push_str(&tussle_sim::to_jsonl(record)),
                }
            }
            match out {
                Some(path) => {
                    std::fs::write(&path, rendered.as_bytes())
                        .map_err(|e| UsageError(format!("could not write '{path}': {e}")))?;
                    Ok(format!("wrote {} bytes ({format}) to {path}", rendered.len()))
                }
                // `main` prints with a trailing newline; every rendering
                // already ends in exactly one.
                None => Ok(rendered.strip_suffix('\n').unwrap_or(&rendered).to_owned()),
            }
        }
        Command::Health { bench, baseline, json } => {
            let baseline = baseline.unwrap_or_else(|| bench.clone());
            let report = run_health(&bench, &baseline)?;
            let rendered = if json {
                serde_json::to_string_pretty(&report).expect("health reports serialize to JSON")
            } else {
                render_health(&report)
            };
            if report.healthy {
                Ok(rendered)
            } else {
                // A regression must exit nonzero: surface the full report
                // through the error path.
                Err(UsageError(format!("health gate failed\n{rendered}")))
            }
        }
        Command::Sweep { seeds, base_seed, only, json, threads } => {
            let cfg = experiments::SweepConfig {
                seeds,
                base_seed,
                only: if only.is_empty() { None } else { Some(only) },
                threads,
            };
            let report = experiments::run_sweep(&cfg).map_err(|e| UsageError(e.to_string()))?;
            Ok(if json { report.to_json() } else { report.to_markdown() })
        }
        Command::Chaos { intensities, seeds, base_seed, only, json, threads } => {
            let cfg = experiments::ChaosConfig {
                intensities,
                seeds,
                base_seed,
                only: if only.is_empty() { None } else { Some(only) },
                threads,
            };
            let report = experiments::run_chaos(&cfg).map_err(|e| UsageError(e.to_string()))?;
            Ok(if json { report.to_json() } else { report.to_markdown() })
        }
        Command::Checkpoint { id, seed, every, dir, json } => {
            let (name, run) = experiments::registry()
                .into_iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(&id))
                .ok_or_else(|| {
                    UsageError(format!("unknown experiment '{id}'; run `tussle-cli list`"))
                })?;
            let guard = checkpoint::begin(
                CheckpointConfig::new(CheckpointPolicy::every_n_events(every))
                    .dir(&dir)
                    .meta(name, seed),
            );
            let report = experiments::run_captured(name, run, seed);
            let rec = guard.finish();
            if let Some(e) = rec.io_error {
                return Err(UsageError(format!("checkpoint write failed: {e}")));
            }
            let summary = CheckpointSummary {
                experiment: name.to_owned(),
                seed,
                every,
                events: rec.cursor,
                checkpoints: rec.snapshots.len() as u64,
                files: rec.files.iter().map(|p| p.display().to_string()).collect(),
                manifest: rec.manifest.as_ref().map(|p| p.display().to_string()),
                shape_holds: report.shape_holds,
            };
            if json {
                Ok(serde_json::to_string_pretty(&summary)
                    .expect("checkpoint summaries serialize to JSON"))
            } else {
                let mut out = format!(
                    "{} (seed {}): {} checkpoint(s) over {} events\n",
                    summary.experiment, summary.seed, summary.checkpoints, summary.events,
                );
                for f in &summary.files {
                    out.push_str(&format!("  {f}\n"));
                }
                match &summary.manifest {
                    Some(m) => out.push_str(&format!("  manifest: {m}\n")),
                    None => out.push_str(
                        "  (no checkpoints fired: the run dispatched no engine events \
                         or ended before the first interval)\n",
                    ),
                }
                Ok(out)
            }
        }
        Command::Resume { from, json } => {
            let snap = checkpoint::load_snapshot(std::path::Path::new(&from))
                .map_err(|e| UsageError(e.to_string()))?;
            let outcome =
                experiments::resume_from_snapshot(&snap).map_err(|e| UsageError(e.to_string()))?;
            if let Some(d) = &outcome.divergence {
                return Err(UsageError(format!("resume diverged from the snapshot: {d}")));
            }
            if !outcome.verified {
                return Err(UsageError(format!(
                    "resume never reached the snapshot's cursor {} — wrong build or \
                     truncated run?",
                    outcome.cursor
                )));
            }
            let summary = ResumeSummary {
                experiment: outcome.experiment,
                seed: outcome.seed,
                cursor: outcome.cursor,
                verified: outcome.verified,
                report: outcome.report,
            };
            if json {
                Ok(serde_json::to_string_pretty(&summary)
                    .expect("resume summaries serialize to JSON"))
            } else {
                Ok(format!(
                    "resumed {} (seed {}) from the checkpoint at event {}: verified byte-exact\n\n{}",
                    summary.experiment,
                    summary.seed,
                    summary.cursor,
                    summary.report.to_markdown(),
                ))
            }
        }
        Command::Recovery { seeds, base_seed, kills, every, only, json, threads } => {
            let cfg = experiments::RecoveryConfig {
                seeds,
                base_seed,
                kill_points: kills,
                every,
                only: if only.is_empty() { None } else { Some(only) },
                threads,
            };
            let report = experiments::run_recovery(&cfg).map_err(|e| UsageError(e.to_string()))?;
            Ok(if json { report.to_json() } else { report.to_markdown() })
        }
        Command::Fuzz { budget, seeds, base_seed, corpus, json, threads } => {
            let cfg = experiments::FuzzConfig {
                budget,
                seeds,
                base_seed,
                corpus_dir: corpus.map(std::path::PathBuf::from),
                threads,
            };
            let report = experiments::run_fuzz(&cfg).map_err(|e| UsageError(e.to_string()))?;
            Ok(if json { report.to_json() } else { report.to_markdown() })
        }
        Command::Experiments { seed, json, only } => {
            let reports: Vec<_> = experiments::run_all_parallel(seed)
                .into_iter()
                .filter(|r| only.is_empty() || only.contains(&r.id))
                .collect();
            if reports.is_empty() {
                return Err(UsageError(format!("no experiments match {only:?}")));
            }
            if json {
                let all: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
                Ok(format!("[{}]", all.join(",\n")))
            } else {
                let held = reports.iter().filter(|r| r.shape_holds).count();
                let mut out = format!("{held}/{} shapes hold (seed {seed})\n\n", reports.len());
                for r in &reports {
                    out.push_str(&r.to_markdown());
                    out.push('\n');
                }
                Ok(out)
            }
        }
    }
}

/// The usage text.
pub const USAGE: &str = "tussle-cli — the Tussle in Cyberspace reproduction

USAGE:
  tussle-cli experiments [--seed N] [--json] [--only E1,E4]
  tussle-cli profile [--seed N] [--json | --collapsed] [--only E1,E4]
  tussle-cli trace [--seed N] [--only E1,E4] [--grep econ.] [--json]
  tussle-cli explain --only E9 --event e7 [--seed N] [--json]
  tussle-cli diff --only E9 --seed N [--seed-b M] [--intensity X] [--intensity-b Y] [--json] [--threads K]
  tussle-cli sweep [--seeds N] [--base S] [--only E1,E4] [--json] [--threads K]
  tussle-cli chaos [--intensities 0,0.2,0.5] [--seeds N] [--base S] [--only E1,E4] [--json] [--threads K]
  tussle-cli checkpoint --only E9 --dir DIR [--every N] [--seed S] [--json]
  tussle-cli resume --from <snapshot.json> [--json]
  tussle-cli recovery [--seeds N] [--base S] [--kills K] [--every N] [--only E1,E4] [--json] [--threads K]
  tussle-cli fuzz [--budget N] [--seeds S] [--base B] [--json] [--corpus DIR] [--threads K]
  tussle-cli export [--seed N] [--only E9] [--format chrome|prom|jsonl] [--out FILE] [--threads K]
  tussle-cli health [--bench BENCH_sim.json] [--baseline FILE] [--json]
  tussle-cli list
  tussle-cli ladder <mechanism>
  tussle-cli mechanisms
  tussle-cli help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_owned()).collect()
    }

    #[test]
    fn parses_experiments_flags() {
        let cmd = parse_args(&args("experiments --seed 7 --json --only e1,E4")).unwrap();
        assert_eq!(
            cmd,
            Command::Experiments { seed: 7, json: true, only: vec!["E1".into(), "E4".into()] }
        );
    }

    #[test]
    fn defaults_and_help() {
        assert_eq!(
            parse_args(&args("experiments")).unwrap(),
            Command::Experiments { seed: 2002, json: false, only: vec![] }
        );
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parse_errors_are_helpful() {
        assert!(parse_args(&args("experiments --seed")).is_err());
        assert!(parse_args(&args("experiments --seed banana")).is_err());
        assert!(parse_args(&args("frobnicate")).unwrap_err().0.contains("unknown command"));
        assert!(parse_args(&args("ladder")).is_err());
        assert!(parse_args(&args("ladder warp-drive"))
            .unwrap_err()
            .0
            .contains("unknown mechanism"));
    }

    #[test]
    fn parses_sweep_flags() {
        let cmd =
            parse_args(&args("sweep --seeds 16 --base 5 --only e1,E4 --json --threads 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                seeds: 16,
                base_seed: 5,
                only: vec!["E1".into(), "E4".into()],
                json: true,
                threads: Some(3),
            }
        );
    }

    #[test]
    fn sweep_defaults() {
        assert_eq!(
            parse_args(&args("sweep")).unwrap(),
            Command::Sweep { seeds: 32, base_seed: 1, only: vec![], json: false, threads: None }
        );
    }

    #[test]
    fn sweep_parse_errors_are_helpful() {
        assert!(parse_args(&args("sweep --seeds")).unwrap_err().0.contains("needs a count"));
        assert!(parse_args(&args("sweep --seeds 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("sweep --seeds banana"))
            .unwrap_err()
            .0
            .contains("bad seed count"));
        assert!(parse_args(&args("sweep --base")).is_err());
        assert!(parse_args(&args("sweep --base x")).unwrap_err().0.contains("bad base seed"));
        assert!(parse_args(&args("sweep --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("sweep --only")).is_err());
        assert!(parse_args(&args("sweep --only E1,,E4")).unwrap_err().0.contains("malformed"));
        assert!(parse_args(&args("sweep --only E1,")).unwrap_err().0.contains("malformed"));
        assert!(parse_args(&args("sweep --frobnicate")).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn sweep_command_renders_markdown_and_json() {
        let md = execute(Command::Sweep {
            seeds: 2,
            base_seed: 1,
            only: vec!["E1".into()],
            json: false,
            threads: Some(1),
        })
        .unwrap();
        assert!(md.contains("1 experiments × 2 seeds (base 1)"));
        assert!(md.contains("| E1 |"));

        let json = execute(Command::Sweep {
            seeds: 2,
            base_seed: 1,
            only: vec!["E1".into()],
            json: true,
            threads: Some(1),
        })
        .unwrap();
        assert!(json.contains("\"base_seed\": 1"));
        assert!(json.contains("\"holds\""));
    }

    #[test]
    fn sweep_unknown_experiment_errors() {
        let err = execute(Command::Sweep {
            seeds: 2,
            base_seed: 1,
            only: vec!["E99".into()],
            json: false,
            threads: Some(1),
        })
        .unwrap_err();
        assert!(err.0.contains("unknown experiment"));
    }

    #[test]
    fn parses_chaos_flags() {
        let cmd = parse_args(&args(
            "chaos --intensities 0,0.25,1 --seeds 4 --base 9 --only e4,E17 --json --threads 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                intensities: vec![0.0, 0.25, 1.0],
                seeds: 4,
                base_seed: 9,
                only: vec!["E4".into(), "E17".into()],
                json: true,
                threads: Some(2),
            }
        );
    }

    #[test]
    fn chaos_defaults_match_the_config_defaults() {
        let d = experiments::ChaosConfig::default();
        assert_eq!(
            parse_args(&args("chaos")).unwrap(),
            Command::Chaos {
                intensities: d.intensities,
                seeds: d.seeds,
                base_seed: d.base_seed,
                only: vec![],
                json: false,
                threads: None,
            }
        );
    }

    #[test]
    fn chaos_parse_errors_are_helpful() {
        assert!(parse_args(&args("chaos --intensities")).is_err());
        assert!(parse_args(&args("chaos --intensities 0,,1")).unwrap_err().0.contains("malformed"));
        assert!(parse_args(&args("chaos --intensities banana"))
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse_args(&args("chaos --intensities 1.5"))
            .unwrap_err()
            .0
            .contains("must be in [0, 1]"));
        assert!(parse_args(&args("chaos --seeds 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("chaos --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("chaos --frobnicate")).unwrap_err().0.contains("unknown flag"));
    }

    fn chaos_cmd(json: bool, threads: usize) -> Command {
        Command::Chaos {
            intensities: vec![0.0, 0.5],
            seeds: 2,
            base_seed: 1,
            only: vec!["E4".into(), "E14".into()],
            json,
            threads: Some(threads),
        }
    }

    #[test]
    fn chaos_command_renders_markdown_and_json() {
        let md = execute(chaos_cmd(false, 1)).unwrap();
        assert!(md.contains("2 experiments × 2 intensities × 2 seeds (base 1)"));
        assert!(md.contains("| E4 |"));
        assert!(md.contains("| E14 |"));
        let json = execute(chaos_cmd(true, 1)).unwrap();
        assert!(json.contains("\"margin\""));
        assert!(json.contains("\"intensities\""));
    }

    #[test]
    fn chaos_json_is_byte_identical_across_thread_counts() {
        assert_eq!(execute(chaos_cmd(true, 1)).unwrap(), execute(chaos_cmd(true, 4)).unwrap());
    }

    #[test]
    fn chaos_unknown_experiment_errors() {
        let err = execute(Command::Chaos {
            intensities: vec![0.0],
            seeds: 1,
            base_seed: 1,
            only: vec!["E99".into()],
            json: false,
            threads: Some(1),
        })
        .unwrap_err();
        assert!(err.0.contains("unknown experiment"));
    }

    #[test]
    fn every_mechanism_name_parses() {
        for (name, m) in mechanism_names() {
            assert_eq!(parse_mechanism(name).unwrap(), m);
        }
    }

    #[test]
    fn ladder_command_renders() {
        let out = execute(Command::Ladder { mechanism: Mechanism::QosPortBased }).unwrap();
        assert!(out.contains("QosPortBased -> Encryption"));
        assert!(out.contains("terminal: true"));
    }

    #[test]
    fn mechanisms_command_lists_the_catalog() {
        let out = execute(Command::Mechanisms).unwrap();
        assert!(out.contains("qos-tos-bits"));
        assert!(out.contains("(terminal)"));
        assert!(out.lines().count() >= 20);
    }

    #[test]
    fn experiments_subset_runs() {
        let out =
            execute(Command::Experiments { seed: 2002, json: false, only: vec!["E10".into()] })
                .unwrap();
        assert!(out.contains("1/1 shapes hold"));
        assert!(out.contains("E10"));
    }

    #[test]
    fn parses_profile_and_trace_flags() {
        assert_eq!(
            parse_args(&args("profile --seed 7 --json --only e10")).unwrap(),
            Command::Profile { seed: 7, json: true, collapsed: false, only: vec!["E10".into()] }
        );
        assert_eq!(
            parse_args(&args("profile")).unwrap(),
            Command::Profile { seed: 2002, json: false, collapsed: false, only: vec![] }
        );
        assert_eq!(
            parse_args(&args("trace --seed 3 --only e2 --grep econ.")).unwrap(),
            Command::Trace {
                seed: 3,
                only: vec!["E2".into()],
                grep: Some("econ.".into()),
                json: false,
            }
        );
        assert_eq!(
            parse_args(&args("trace --json")).unwrap(),
            Command::Trace { seed: 2002, only: vec![], grep: None, json: true }
        );
        assert_eq!(
            parse_args(&args("trace")).unwrap(),
            Command::Trace { seed: 2002, only: vec![], grep: None, json: false }
        );
        assert!(parse_args(&args("profile --frobnicate")).unwrap_err().0.contains("unknown flag"));
        assert!(parse_args(&args("profile --only E1,")).unwrap_err().0.contains("malformed"));
        assert!(parse_args(&args("trace --grep")).unwrap_err().0.contains("needs a topic prefix"));
    }

    #[test]
    fn profile_command_renders_text_and_jq_friendly_json() {
        let text = execute(Command::Profile {
            seed: 2002,
            json: false,
            collapsed: false,
            only: vec!["E10".into()],
        })
        .unwrap();
        assert!(text.contains("E10 profile (seed 2002)"), "{text}");
        assert!(text.contains("digest"), "{text}");

        let json = execute(Command::Profile {
            seed: 2002,
            json: true,
            collapsed: false,
            only: vec!["E10".into()],
        })
        .unwrap();
        // The JSON contract ci.sh smoke-tests with jq: a top-level array of
        // objects with id/seed/cost/wall_nanos/topics.
        let parsed: serde::Value = serde_json::from_str(&json).unwrap();
        let first = parsed.item(0).expect("top-level array with one element");
        assert!(parsed.item(1).is_err(), "exactly one report");
        assert_eq!(first.field("id").unwrap(), &serde::Value::Str("E10".into()));
        assert_eq!(first.field("seed").unwrap(), &serde::Value::U64(2002));
        match first.field("cost").unwrap().field("digest").unwrap() {
            serde::Value::Str(d) => assert_eq!(d.len(), 16),
            other => panic!("digest is not a string: {other:?}"),
        }
        match first.field("wall_nanos").unwrap() {
            serde::Value::U64(n) => assert!(*n > 0),
            other => panic!("wall_nanos is not an unsigned integer: {other:?}"),
        }
        assert!(matches!(first.field("topics").unwrap(), serde::Value::Map(_)));
    }

    #[test]
    fn trace_command_dumps_and_filters() {
        let out = execute(Command::Trace {
            seed: 2002,
            only: vec!["E1".into()],
            grep: Some("econ.".into()),
            json: false,
        })
        .unwrap();
        assert!(out.contains("# E1 (seed 2002)"), "{out}");
        assert!(out.contains("econ."), "{out}");
    }

    #[test]
    fn profile_unknown_experiment_errors() {
        let err = execute(Command::Profile {
            seed: 1,
            json: false,
            collapsed: false,
            only: vec!["E99".into()],
        })
        .unwrap_err();
        assert!(err.0.contains("unknown experiment"));
    }

    #[test]
    fn duplicate_only_ids_are_rejected_everywhere() {
        for cmd in ["experiments", "profile", "trace", "sweep", "chaos", "export"] {
            let err = parse_args(&args(&format!("{cmd} --only E1,E1"))).unwrap_err();
            assert!(err.0.contains("duplicate id 'E1'"), "{cmd}: {err}");
        }
        assert!(parse_args(&args("diff --only E9,E9 --seed-b 3")).is_err());
    }

    #[test]
    fn parses_explain_flags() {
        assert_eq!(
            parse_args(&args("explain --only e9 --event e7 --seed 5 --json")).unwrap(),
            Command::Explain { id: "E9".into(), seed: 5, event: EventId(7), json: true }
        );
        assert_eq!(
            parse_args(&args("explain --only E9 --event 7")).unwrap(),
            Command::Explain { id: "E9".into(), seed: 2002, event: EventId(7), json: false }
        );
        assert!(parse_args(&args("explain --event e7")).unwrap_err().0.contains("--only"));
        assert!(parse_args(&args("explain --only E9")).unwrap_err().0.contains("--event"));
        assert!(parse_args(&args("explain --only E9,E10 --event 1"))
            .unwrap_err()
            .0
            .contains("exactly one"));
        assert!(parse_args(&args("explain --only E9 --event seven"))
            .unwrap_err()
            .0
            .contains("bad event id"));
    }

    #[test]
    fn parses_diff_flags() {
        assert_eq!(
            parse_args(&args("diff --only e9 --seed 2002 --seed-b 2003 --threads 2 --json"))
                .unwrap(),
            Command::Diff {
                id: "E9".into(),
                seed: 2002,
                seed_b: 2003,
                intensity: 0.0,
                intensity_b: 0.0,
                json: true,
                threads: Some(2),
            }
        );
        // --intensity-b alone diffs intensities at one seed.
        assert_eq!(
            parse_args(&args("diff --only E4 --seed 7 --intensity-b 0.8")).unwrap(),
            Command::Diff {
                id: "E4".into(),
                seed: 7,
                seed_b: 7,
                intensity: 0.0,
                intensity_b: 0.8,
                json: false,
                threads: None,
            }
        );
        assert!(parse_args(&args("diff --seed-b 3")).unwrap_err().0.contains("--only"));
        assert!(parse_args(&args("diff --only E9")).unwrap_err().0.contains("sides to differ"));
        assert!(parse_args(&args("diff --only E9 --seed-b 3 --threads 0"))
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse_args(&args("diff --only E9 --intensity-b 1.5"))
            .unwrap_err()
            .0
            .contains("must be in [0, 1]"));
    }

    #[test]
    fn profile_collapsed_emits_flamegraph_lines() {
        assert_eq!(
            parse_args(&args("profile --collapsed --only E10")).unwrap(),
            Command::Profile { seed: 2002, json: false, collapsed: true, only: vec!["E10".into()] }
        );
        assert!(parse_args(&args("profile --collapsed --json"))
            .unwrap_err()
            .0
            .contains("cannot combine"));
        let out = execute(Command::Profile {
            seed: 2002,
            json: false,
            collapsed: true,
            only: vec!["E10".into()],
        })
        .unwrap();
        for line in out.lines() {
            assert!(line.starts_with("E10;"), "{line}");
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn explain_command_renders_a_causal_chain() {
        let text = execute(Command::Explain {
            id: "E9".into(),
            seed: 2002,
            event: EventId(2),
            json: false,
        })
        .unwrap();
        assert!(text.contains("explain e2"), "{text}");
        assert!(text.contains("root"), "{text}");
        let json = execute(Command::Explain {
            id: "E9".into(),
            seed: 2002,
            event: EventId(2),
            json: true,
        })
        .unwrap();
        assert!(json.contains("\"hops\""), "{json}");
        let err = execute(Command::Explain {
            id: "E9".into(),
            seed: 2002,
            event: EventId(9999),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("never dispatched"), "{err}");
    }

    fn diff_cmd(threads: usize, json: bool) -> Command {
        Command::Diff {
            id: "E9".into(),
            seed: 2002,
            seed_b: 2003,
            intensity: 0.0,
            intensity_b: 0.0,
            json,
            threads: Some(threads),
        }
    }

    #[test]
    fn diff_command_pinpoints_divergence_byte_identically_across_threads() {
        let one = execute(diff_cmd(1, false)).unwrap();
        assert!(one.contains("first divergence at entry"), "{one}");
        for threads in [2, 8] {
            assert_eq!(one, execute(diff_cmd(threads, false)).unwrap(), "threads={threads}");
        }
        let json_one = execute(diff_cmd(1, true)).unwrap();
        for threads in [2, 8] {
            assert_eq!(json_one, execute(diff_cmd(threads, true)).unwrap(), "threads={threads}");
        }
        assert!(json_one.contains("\"divergence\""), "{json_one}");
    }

    #[test]
    fn trace_grep_matching_nothing_is_an_error() {
        let err = execute(Command::Trace {
            seed: 2002,
            only: vec!["E2".into()],
            grep: Some("zzz.".into()),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("0 entries matched"), "{err}");
        // The zero-match contract holds under --json too.
        let err = execute(Command::Trace {
            seed: 2002,
            only: vec!["E2".into()],
            grep: Some("zzz.".into()),
            json: true,
        })
        .unwrap_err();
        assert!(err.0.contains("0 entries matched"), "{err}");
        // No grep: an empty dump is not an error, just empty sections.
        assert!(execute(Command::Trace {
            seed: 2002,
            only: vec!["E2".into()],
            grep: None,
            json: false,
        })
        .is_ok());
    }

    #[test]
    fn parses_checkpoint_flags() {
        assert_eq!(
            parse_args(&args("checkpoint --only e9 --dir /tmp/ck --every 250 --seed 3 --json"))
                .unwrap(),
            Command::Checkpoint {
                id: "E9".into(),
                seed: 3,
                every: 250,
                dir: "/tmp/ck".into(),
                json: true,
            }
        );
        assert_eq!(
            parse_args(&args("checkpoint --only E9 --dir d")).unwrap(),
            Command::Checkpoint {
                id: "E9".into(),
                seed: 2002,
                every: 500,
                dir: "d".into(),
                json: false,
            }
        );
        assert!(parse_args(&args("checkpoint --dir d")).unwrap_err().0.contains("--only"));
        assert!(parse_args(&args("checkpoint --only E9")).unwrap_err().0.contains("--dir"));
        assert!(parse_args(&args("checkpoint --only E9,E10 --dir d"))
            .unwrap_err()
            .0
            .contains("exactly one"));
    }

    #[test]
    fn zero_checkpoint_interval_is_a_parse_error_not_a_panic() {
        for cmd in ["checkpoint --only E9 --dir d --every 0", "recovery --every 0"] {
            let err = parse_args(&args(cmd)).unwrap_err();
            assert!(err.0.contains("--every must be at least 1"), "{cmd}: {err}");
        }
        assert!(parse_args(&args("recovery --every banana"))
            .unwrap_err()
            .0
            .contains("bad checkpoint interval"));
    }

    #[test]
    fn parses_resume_and_recovery_flags() {
        assert_eq!(
            parse_args(&args("resume --from /tmp/ck_000000000010.json --json")).unwrap(),
            Command::Resume { from: "/tmp/ck_000000000010.json".into(), json: true }
        );
        assert!(parse_args(&args("resume")).unwrap_err().0.contains("--from"));

        let d = experiments::RecoveryConfig::default();
        assert_eq!(
            parse_args(&args("recovery")).unwrap(),
            Command::Recovery {
                seeds: d.seeds,
                base_seed: d.base_seed,
                kills: d.kill_points,
                every: d.every,
                only: vec![],
                json: false,
                threads: None,
            }
        );
        assert_eq!(
            parse_args(&args(
                "recovery --seeds 3 --base 9 --kills 2 --every 100 --only e4 --json --threads 2"
            ))
            .unwrap(),
            Command::Recovery {
                seeds: 3,
                base_seed: 9,
                kills: 2,
                every: 100,
                only: vec!["E4".into()],
                json: true,
                threads: Some(2),
            }
        );
        assert!(parse_args(&args("recovery --seeds 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("recovery --kills 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("recovery --threads 0")).unwrap_err().0.contains("at least 1"));
    }

    #[test]
    fn checkpoint_then_resume_roundtrips_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("tussle-cli-ck-{}-roundtrip", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = execute(Command::Checkpoint {
            id: "E9".into(),
            seed: 5,
            every: 1,
            dir: dir.display().to_string(),
            json: false,
        })
        .unwrap();
        assert!(out.contains("manifest:"), "{out}");

        let manifest = tussle_sim::checkpoint::load_manifest(&dir.join("manifest.json")).unwrap();
        assert_eq!(manifest.experiment, "E9");
        assert!(!manifest.checkpoints.is_empty());
        let last = dir.join(&manifest.checkpoints.last().unwrap().file);

        let json =
            execute(Command::Resume { from: last.display().to_string(), json: true }).unwrap();
        let parsed: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.field("experiment").unwrap(), &serde::Value::Str("E9".into()));
        assert_eq!(parsed.field("seed").unwrap(), &serde::Value::U64(5));
        assert_eq!(parsed.field("verified").unwrap(), &serde::Value::Bool(true));
        assert!(parsed.field("report").unwrap().field("shape_holds").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_a_missing_file_is_a_clean_error() {
        let err = execute(Command::Resume {
            from: "/nonexistent/ck_000000000001.json".into(),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("/nonexistent/ck_000000000001.json"), "{err}");
        assert!(!err.0.is_empty());
    }

    #[test]
    fn checkpoint_unknown_experiment_errors() {
        let err = execute(Command::Checkpoint {
            id: "E99".into(),
            seed: 1,
            every: 10,
            dir: "/tmp/never-created".into(),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown experiment"), "{err}");
    }

    fn recovery_cmd(json: bool, threads: usize) -> Command {
        Command::Recovery {
            seeds: 1,
            base_seed: 1,
            kills: 1,
            every: 200,
            only: vec!["E4".into(), "E14".into()],
            json,
            threads: Some(threads),
        }
    }

    #[test]
    fn recovery_command_renders_markdown_and_json() {
        let md = execute(recovery_cmd(false, 1)).unwrap();
        assert!(md.contains("Recovery campaign"), "{md}");
        assert!(md.contains("| E4 |"), "{md}");
        assert!(md.contains("byte-identical finish"), "{md}");
        let json = execute(recovery_cmd(true, 1)).unwrap();
        assert!(json.contains("\"cells\""), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
    }

    #[test]
    fn recovery_json_is_byte_identical_across_thread_counts() {
        assert_eq!(
            execute(recovery_cmd(true, 1)).unwrap(),
            execute(recovery_cmd(true, 3)).unwrap()
        );
    }

    fn fuzz_cmd(json: bool, threads: usize) -> Command {
        Command::Fuzz {
            budget: 8,
            seeds: 2,
            base_seed: 5,
            corpus: None,
            json,
            threads: Some(threads),
        }
    }

    #[test]
    fn parses_fuzz_flags_and_defaults() {
        let d = experiments::FuzzConfig::default();
        assert_eq!(
            parse_args(&args("fuzz")).unwrap(),
            Command::Fuzz {
                budget: d.budget,
                seeds: d.seeds,
                base_seed: d.base_seed,
                corpus: None,
                json: false,
                threads: None,
            }
        );
        assert_eq!(
            parse_args(&args(
                "fuzz --budget 50 --seeds 2 --base 9 --corpus tests/corpus --json --threads 4"
            ))
            .unwrap(),
            Command::Fuzz {
                budget: 50,
                seeds: 2,
                base_seed: 9,
                corpus: Some("tests/corpus".into()),
                json: true,
                threads: Some(4),
            }
        );
        assert!(parse_args(&args("fuzz --budget 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("fuzz --seeds 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("fuzz --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("fuzz --corpus")).unwrap_err().0.contains("directory"));
        assert!(parse_args(&args("fuzz --bogus")).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn fuzz_command_renders_markdown_and_json() {
        let md = execute(fuzz_cmd(false, 2)).unwrap();
        assert!(md.contains("Fuzz campaign"), "{md}");
        assert!(md.contains("packet-conservation"), "{md}");
        let json = execute(fuzz_cmd(true, 2)).unwrap();
        let parsed: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.field("schema").unwrap(), &serde::Value::U64(1));
        assert_eq!(parsed.field("executions").unwrap(), &serde::Value::U64(8));
        assert!(parsed.field("oracles").is_ok());
        assert!(parsed.field("digest").is_ok());
    }

    #[test]
    fn fuzz_json_is_byte_identical_across_thread_counts() {
        let one = execute(fuzz_cmd(true, 1)).unwrap();
        assert_eq!(one, execute(fuzz_cmd(true, 2)).unwrap());
        assert_eq!(one, execute(fuzz_cmd(true, 8)).unwrap());
    }

    #[test]
    fn unknown_subset_errors() {
        let err = execute(Command::Experiments { seed: 1, json: false, only: vec!["E99".into()] })
            .unwrap_err();
        assert!(err.0.contains("no experiments match"));
    }

    #[test]
    fn parses_export_flags() {
        assert_eq!(
            parse_args(&args("export --seed 7 --only e9 --format prom --out /tmp/o --threads 2"))
                .unwrap(),
            Command::Export {
                seed: 7,
                only: vec!["E9".into()],
                format: "prom".into(),
                out: Some("/tmp/o".into()),
                threads: Some(2),
            }
        );
        assert_eq!(
            parse_args(&args("export")).unwrap(),
            Command::Export {
                seed: 2002,
                only: vec![],
                format: "chrome".into(),
                out: None,
                threads: None,
            }
        );
        assert!(parse_args(&args("export --format"))
            .unwrap_err()
            .0
            .contains("chrome, prom or jsonl"));
        assert!(parse_args(&args("export --format yaml"))
            .unwrap_err()
            .0
            .contains("unknown export format"));
        assert!(parse_args(&args("export --out")).unwrap_err().0.contains("file path"));
        assert!(parse_args(&args("export --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse_args(&args("export --bogus")).unwrap_err().0.contains("unknown flag"));
    }

    fn export_cmd(format: &str, only: &[&str], threads: usize) -> Command {
        Command::Export {
            seed: 2002,
            only: only.iter().map(|s| (*s).to_owned()).collect(),
            format: format.into(),
            out: None,
            threads: Some(threads),
        }
    }

    #[test]
    fn export_chrome_needs_exactly_one_experiment() {
        let err = execute(export_cmd("chrome", &["E1", "E9"], 1)).unwrap_err();
        assert!(err.0.contains("exactly one experiment"), "{err}");
        let err = execute(export_cmd("chrome", &[], 1)).unwrap_err();
        assert!(err.0.contains("got 17"), "{err}");
    }

    #[test]
    fn export_chrome_renders_valid_trace_json() {
        let out = execute(export_cmd("chrome", &["E9"], 1)).unwrap();
        let parsed: serde::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed.field("displayTimeUnit").unwrap(), &serde::Value::Str("ms".into()));
        let events = match parsed.field("traceEvents").unwrap() {
            serde::Value::Seq(events) => events,
            other => panic!("traceEvents is not an array: {other:?}"),
        };
        assert!(!events.is_empty());
        // Lane metadata names the stakeholders E9 annotates.
        assert!(out.contains("\"user\""), "{out}");
        assert!(out.contains("\"provider\""), "{out}");
    }

    #[test]
    fn export_is_byte_identical_across_thread_counts() {
        let chrome_one = execute(export_cmd("chrome", &["E9"], 1)).unwrap();
        for threads in [2, 8] {
            assert_eq!(
                chrome_one,
                execute(export_cmd("chrome", &["E9"], threads)).unwrap(),
                "chrome, threads={threads}"
            );
        }
        let prom_one = execute(export_cmd("prom", &["E1", "E9", "E14"], 1)).unwrap();
        for threads in [2, 8] {
            assert_eq!(
                prom_one,
                execute(export_cmd("prom", &["E1", "E9", "E14"], threads)).unwrap(),
                "prom, threads={threads}"
            );
        }
    }

    #[test]
    fn export_prom_renders_type_lines_and_headers() {
        let out = execute(export_cmd("prom", &["E1", "E9"], 2)).unwrap();
        assert!(out.contains("# TYPE tussle_stakeholder_entries counter"), "{out}");
        assert!(out.contains("# TYPE tussle_topic_virtual_micros counter"), "{out}");
        assert!(out.contains("tussle_stakeholder_virtual_micros"), "{out}");
        // Concatenated expositions carry attribution headers...
        assert!(out.contains("# experiment E1 seed 2002"), "{out}");
        assert!(out.contains("# experiment E9 seed 2002"), "{out}");
        // ...while a single selection stays a pristine exposition.
        let single = execute(export_cmd("prom", &["E9"], 1)).unwrap();
        assert!(!single.contains("# experiment"), "{single}");
        // Virtual-time discipline: no wall-clock family anywhere.
        assert!(!out.contains("wall"), "{out}");
    }

    #[test]
    fn export_jsonl_lines_are_structured_entries() {
        let out = execute(export_cmd("jsonl", &["E9"], 1)).unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            let parsed: serde::Value = serde_json::from_str(line).unwrap();
            assert!(parsed.field("topic").is_ok(), "{line}");
        }
    }

    #[test]
    fn export_out_writes_exact_bytes() {
        let path = std::env::temp_dir()
            .join(format!("tussle-cli-export-{}-e9.chrome.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let msg = execute(Command::Export {
            seed: 2002,
            only: vec!["E9".into()],
            format: "chrome".into(),
            out: Some(path.display().to_string()),
            threads: Some(1),
        })
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.ends_with("}\n"), "file keeps its trailing newline");
        // The file holds the exact stdout rendering plus that newline.
        assert_eq!(
            written.strip_suffix('\n').unwrap(),
            execute(export_cmd("chrome", &["E9"], 1)).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn export_unknown_experiment_errors() {
        let err = execute(export_cmd("jsonl", &["E99"], 1)).unwrap_err();
        assert!(err.0.contains("unknown experiment"), "{err}");
    }

    #[test]
    fn trace_json_emits_structured_entries() {
        let out = execute(Command::Trace {
            seed: 2002,
            only: vec!["E1".into()],
            grep: Some("econ.".into()),
            json: true,
        })
        .unwrap();
        let parsed: serde::Value = serde_json::from_str(&out).unwrap();
        let first = parsed.item(0).expect("one dump per selected experiment");
        assert_eq!(first.field("experiment").unwrap(), &serde::Value::Str("E1".into()));
        assert_eq!(first.field("seed").unwrap(), &serde::Value::U64(2002));
        match first.field("entries").unwrap() {
            serde::Value::Seq(entries) => {
                assert!(!entries.is_empty());
                for e in entries {
                    match e.field("topic").unwrap() {
                        serde::Value::Str(topic) => {
                            assert!(topic.starts_with("econ."), "{topic}")
                        }
                        other => panic!("topic is not a string: {other:?}"),
                    }
                }
            }
            other => panic!("entries is not an array: {other:?}"),
        }
    }

    #[test]
    fn parses_health_flags() {
        assert_eq!(
            parse_args(&args("health")).unwrap(),
            Command::Health { bench: "BENCH_sim.json".into(), baseline: None, json: false }
        );
        assert_eq!(
            parse_args(&args("health --bench cur.json --baseline base.json --json")).unwrap(),
            Command::Health {
                bench: "cur.json".into(),
                baseline: Some("base.json".into()),
                json: true,
            }
        );
        assert!(parse_args(&args("health --bench")).unwrap_err().0.contains("sidecar file"));
        assert!(parse_args(&args("health --baseline")).unwrap_err().0.contains("sidecar file"));
        assert!(parse_args(&args("health --bogus")).unwrap_err().0.contains("unknown flag"));
    }

    fn write_sidecar(tag: &str, entries: &[(&str, f64)]) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join(format!("tussle-cli-health-{}-{tag}.json", std::process::id()));
        let rows: Vec<String> = entries
            .iter()
            .map(|(bench, ns)| {
                format!("  {{\n    \"bench\": \"{bench}\",\n    \"median_ns\": {ns}\n  }}")
            })
            .collect();
        std::fs::write(&path, format!("[\n{}\n]\n", rows.join(",\n"))).unwrap();
        path
    }

    #[test]
    fn health_self_compare_passes_in_text_and_json() {
        let sidecar = write_sidecar(
            "self",
            &[("obs/dispatch_traced_disabled", 100.0), ("forward/fast_path", 2000.0)],
        );
        let bench = sidecar.display().to_string();
        let text =
            execute(Command::Health { bench: bench.clone(), baseline: None, json: false }).unwrap();
        assert!(text.contains("# Health — ok"), "{text}");
        assert!(text.contains("digests identical"), "{text}");
        assert!(text.contains(", conserved"), "{text}");
        assert!(text.contains("who won:"), "{text}");

        let json =
            execute(Command::Health { bench: bench.clone(), baseline: None, json: true }).unwrap();
        let parsed: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.field("healthy").unwrap(), &serde::Value::Bool(true));
        assert_eq!(parsed.field("determinism_ok").unwrap(), &serde::Value::Bool(true));
        assert_eq!(parsed.field("scoreboard_conserves").unwrap(), &serde::Value::Bool(true));
        assert!(matches!(parsed.field("trends").unwrap(), serde::Value::Seq(_)));
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn health_bench_regression_fails_the_gate() {
        let baseline = write_sidecar("base", &[("econ/settle", 1000.0)]);
        // 1.5x the baseline median breaches the default 1.25x ceiling.
        let current = write_sidecar("cur", &[("econ/settle", 1500.0)]);
        let err = execute(Command::Health {
            bench: current.display().to_string(),
            baseline: Some(baseline.display().to_string()),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("health gate failed"), "{err}");
        assert!(err.0.contains("'econ/settle' regressed"), "{err}");
        assert!(err.0.contains("1.50x > 1.25x"), "{err}");
        let _ = std::fs::remove_file(&baseline);
        let _ = std::fs::remove_file(&current);
    }

    #[test]
    fn health_missing_bench_is_a_regression() {
        let baseline = write_sidecar("mbase", &[("econ/settle", 1000.0), ("net/route", 50.0)]);
        let current = write_sidecar("mcur", &[("econ/settle", 1000.0)]);
        let err = execute(Command::Health {
            bench: current.display().to_string(),
            baseline: Some(baseline.display().to_string()),
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("'net/route' is in the baseline but missing"), "{err}");
        let _ = std::fs::remove_file(&baseline);
        let _ = std::fs::remove_file(&current);
    }

    #[test]
    fn health_sidecar_errors_are_clean() {
        let err = execute(Command::Health {
            bench: "/nonexistent/BENCH_sim.json".into(),
            baseline: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("could not read bench sidecar"), "{err}");

        let empty = std::env::temp_dir()
            .join(format!("tussle-cli-health-{}-empty.json", std::process::id()));
        std::fs::write(&empty, "[]\n").unwrap();
        let err = execute(Command::Health {
            bench: empty.display().to_string(),
            baseline: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("no bench entries"), "{err}");

        std::fs::write(&empty, "{}\n").unwrap();
        let err = execute(Command::Health {
            bench: empty.display().to_string(),
            baseline: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("expected a top-level array"), "{err}");
        let _ = std::fs::remove_file(&empty);
    }

    #[test]
    fn bench_thresholds_tier_by_family() {
        assert!(bench_threshold("obs/dispatch_traced_disabled") < bench_threshold("econ/settle"));
        assert!(bench_threshold("econ/settle") < bench_threshold("scale/forward_10k"));
        assert_eq!(bench_threshold("forward/fast_path"), bench_threshold("scale/forward_10k"));
    }
}

//! Multi-seed sweep: shape stability across the whole registry.
//!
//! Every experiment asserts a qualitative *shape* ("markup rises with
//! switching cost"), not a point value, so a single lucky seed proves
//! little. The sweep fans the registry over `experiments × seeds` jobs,
//! runs them on scoped worker threads, and reduces the per-seed reports
//! into a [`SweepReport`]: per-experiment hold rate, min/median/max of
//! every numeric table cell, and the first failing seed with its full
//! report.
//!
//! ## Determinism
//!
//! Each job depends only on its `(experiment, seed)` pair; workers steal
//! jobs from a shared atomic index, so *which* thread runs a job varies
//! run to run, but results land in a fixed slot and the reduction walks
//! the grid in registry-then-seed order. The rendered report — markdown
//! and JSON — is therefore byte-identical across runs regardless of
//! thread count or scheduling.

use crate::registry;
use std::sync::atomic::{AtomicUsize, Ordering};
use tussle_core::report::{CellStats, ExperimentSweep, FirstFailure, SweepReport};
use tussle_core::ExperimentReport;

/// What to sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of seeds (`base_seed..base_seed + seeds`). Must be nonzero.
    pub seeds: u64,
    /// First seed of the contiguous range.
    pub base_seed: u64,
    /// Restrict to these experiment ids (e.g. `["E1", "E5"]`); `None`
    /// sweeps the whole registry.
    pub only: Option<Vec<String>>,
    /// Worker-thread cap; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { seeds: 32, base_seed: 1, only: None, threads: None }
    }
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// `seeds` was zero.
    NoSeeds,
    /// An id in `only` names no experiment in the registry.
    UnknownExperiment(String),
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SweepError::NoSeeds => f.write_str("sweep needs at least one seed"),
            SweepError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (the registry has E1..=E17)")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Run the sweep. See the module docs for the execution model.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepReport, SweepError> {
    if config.seeds == 0 {
        return Err(SweepError::NoSeeds);
    }
    let full = registry();
    let selected: Vec<crate::ExperimentEntry> = match &config.only {
        None => full,
        Some(ids) => {
            let mut picked = Vec::with_capacity(ids.len());
            for id in ids {
                let entry = full
                    .iter()
                    .find(|(name, _)| name.eq_ignore_ascii_case(id))
                    .ok_or_else(|| SweepError::UnknownExperiment(id.clone()))?;
                picked.push(*entry);
            }
            picked
        }
    };

    let seeds: Vec<u64> = (0..config.seeds).map(|i| config.base_seed.wrapping_add(i)).collect();
    let grid = run_grid(&selected, &seeds, config.threads);

    // Sequential reduction in fixed (experiment, seed) order; nothing past
    // this point depends on how the parallel phase was scheduled.
    let experiments = selected
        .iter()
        .enumerate()
        .map(|(row, (name, _))| reduce_experiment(name, &seeds, &grid[row]))
        .collect();
    Ok(SweepReport { base_seed: config.base_seed, seeds: config.seeds, experiments })
}

/// Run `experiments × seeds` jobs on scoped worker threads, stealing work
/// from a shared index. Returns the reports as `[experiment][seed]`.
fn run_grid(
    experiments: &[crate::ExperimentEntry],
    seeds: &[u64],
    threads: Option<usize>,
) -> Vec<Vec<ExperimentReport>> {
    let jobs = experiments.len() * seeds.len();
    let workers = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1));

    let next = AtomicUsize::new(0);
    let mut harvested: Vec<(usize, ExperimentReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= jobs {
                            break;
                        }
                        let (name, run) = experiments[job / seeds.len()];
                        local.push((job, crate::run_captured(name, run, seeds[job % seeds.len()])));
                    }
                    local
                })
            })
            .collect();
        // Experiment panics are caught inside `run_captured`, so a join
        // failure can only mean the worker loop itself is broken.
        handles.into_iter().flat_map(|h| h.join().expect("worker threads do not panic")).collect()
    });

    harvested.sort_by_key(|(job, _)| *job);
    debug_assert_eq!(harvested.len(), jobs, "every job produced one report");
    let mut rows: Vec<Vec<ExperimentReport>> = Vec::with_capacity(experiments.len());
    let mut it = harvested.into_iter().map(|(_, r)| r);
    for _ in 0..experiments.len() {
        rows.push(it.by_ref().take(seeds.len()).collect());
    }
    rows
}

/// Reduce one experiment's per-seed reports into its sweep summary.
/// Shared with the chaos campaign so an intensity-0 chaos cell reduces
/// through exactly the same code path as a plain sweep.
pub(crate) fn reduce_experiment(
    name: &str,
    seeds: &[u64],
    reports: &[ExperimentReport],
) -> ExperimentSweep {
    let holds = reports.iter().filter(|r| r.shape_holds).count() as u64;
    let first_failure = seeds
        .iter()
        .zip(reports)
        .find(|(_, r)| !r.shape_holds)
        .map(|(seed, r)| FirstFailure { seed: *seed, report: r.clone() });

    // Cell universe: every (row, column) seen under any seed, in first-seen
    // row-major order, so a row that only appears under some seeds still
    // gets stats.
    let mut cell_keys: Vec<(String, String)> = Vec::new();
    for r in reports {
        for row in &r.table.rows {
            for column in &r.table.columns {
                let key = (row.label.clone(), column.clone());
                if !cell_keys.contains(&key) {
                    cell_keys.push(key);
                }
            }
        }
    }

    let cells = cell_keys
        .into_iter()
        .filter_map(|(row, column)| {
            let values: Vec<f64> =
                reports.iter().filter_map(|r| r.table.cell_f64(&row, &column)).collect();
            CellStats::from_samples(&row, &column, values)
        })
        .collect();

    // Fold every per-seed run digest, in seed order, into one experiment
    // digest. Two sweeps agree on it iff every underlying run agreed —
    // the structural cross-thread determinism check. A panicked run has no
    // cost and folds as a distinct tag.
    let mut h = tussle_sim::Fnv1a::new();
    h.write_u64(reports.len() as u64);
    for r in reports {
        match &r.cost {
            Some(c) => {
                h.write_u8(1);
                h.write_str(&c.digest);
            }
            None => h.write_u8(0),
        }
    }
    let digest = tussle_sim::RunDigest(h.finish()).to_hex();

    // Aggregate per-seed scoreboards (merge is commutative, but the walk is
    // in seed order anyway). Digest-excluded, like wall time.
    let mut scoreboard = tussle_core::Scoreboard::default();
    for r in reports {
        if let Some(b) = &r.scoreboard {
            scoreboard.merge(b);
        }
    }
    let scoreboard = if scoreboard.is_empty() { None } else { Some(scoreboard) };

    ExperimentSweep {
        id: name.to_owned(),
        section: reports.first().map_or_else(String::new, |r| r.section.clone()),
        seeds: seeds.len() as u64,
        holds,
        cells,
        first_failure,
        digest,
        scoreboard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seeds: u64, only: &[&str]) -> SweepConfig {
        SweepConfig {
            seeds,
            base_seed: 1,
            only: Some(only.iter().map(|s| (*s).to_owned()).collect()),
            threads: None,
        }
    }

    #[test]
    fn zero_seeds_is_an_error() {
        let cfg = SweepConfig { seeds: 0, ..SweepConfig::default() };
        assert_eq!(run_sweep(&cfg), Err(SweepError::NoSeeds));
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = run_sweep(&quick(2, &["E99"])).unwrap_err();
        assert_eq!(err, SweepError::UnknownExperiment("E99".into()));
        assert!(err.to_string().contains("E99"));
    }

    #[test]
    fn only_filter_selects_and_orders() {
        let report = run_sweep(&quick(2, &["e5", "E1"])).unwrap();
        let ids: Vec<&str> = report.experiments.iter().map(|e| e.id.as_str()).collect();
        // Requested order is preserved; matching is case-insensitive but
        // ids are reported in registry spelling.
        assert_eq!(ids, ["E5", "E1"]);
        assert_eq!(report.seeds, 2);
    }

    #[test]
    fn stats_cover_every_numeric_cell() {
        let report = run_sweep(&quick(3, &["E1"])).unwrap();
        let e1 = &report.experiments[0];
        assert_eq!(e1.seeds, 3);
        assert!(!e1.cells.is_empty(), "E1's table has numeric cells");
        for c in &e1.cells {
            assert!(c.min <= c.median && c.median <= c.max, "{}/{}", c.row, c.column);
            assert!(c.samples >= 1 && c.samples <= 3);
        }
    }

    #[test]
    fn digests_are_identical_across_thread_counts() {
        // The structural determinism check: per-experiment digests (folded
        // from every per-seed RunDigest) must agree regardless of how the
        // parallel phase was scheduled. The full byte-compare canary lives
        // in tests/experiments_all.rs.
        let mut digests = Vec::new();
        for threads in [1, 2, 5] {
            let cfg = SweepConfig {
                seeds: 3,
                base_seed: 7,
                only: Some(vec!["E1".into(), "E14".into(), "E17".into()]),
                threads: Some(threads),
            };
            let report = run_sweep(&cfg).unwrap();
            digests.push(
                report
                    .experiments
                    .iter()
                    .map(|e| (e.id.clone(), e.digest.clone()))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
        for (id, d) in &digests[0] {
            assert_eq!(d.len(), 16, "{id} digest is 16 hex chars, got '{d}'");
        }
    }
}

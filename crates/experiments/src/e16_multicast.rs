//! E16 — The multicast post-mortem: the exercise, done (§VII, footnote 19).
//!
//! Paper claim: "This follows on the failure of multicast to emerge as an
//! open end-to-end service. ... The case study of the failure to deploy
//! multicast is left as an exercise for the reader."
//!
//! The exercise: multicast differs from QoS in one structural way — its
//! benefit is *conjunctive*. A premium queue helps the moment one ISP
//! deploys it; inter-domain multicast delivers nothing until essentially
//! every ISP on the distribution tree deploys. That turns deployment into
//! a stag hunt: even with a value-transfer mechanism, "all deploy" and
//! "none deploy" are both equilibria, and unilateral best-response
//! dynamics starting from the empty Internet select the bad one. The
//! contrast case is the CDN/cache architecture, whose benefit is
//! unilateral — and which is what the market actually built.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::Money;
use tussle_sim::{Engine, SimRng, SimTime};

/// How a technology's benefit accrues to a deployer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenefitShape {
    /// Benefit only if at least `threshold` fraction of others deployed.
    Conjunctive {
        /// Fraction of other ISPs that must have deployed first.
        threshold: f64,
    },
    /// Benefit accrues to the deployer alone, immediately.
    Unilateral,
}

/// One deployment scenario.
#[derive(Debug, Clone)]
pub struct DeploymentScenario {
    /// Display label.
    pub label: &'static str,
    /// Benefit shape.
    pub shape: BenefitShape,
    /// Does a value-transfer mechanism exist (can deployers be paid)?
    pub value_transfer: bool,
    /// Initial deployed fraction (a standards-body "big bang" seeds 1.0).
    pub initial_deployment: f64,
}

/// Result of running the dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOutcome {
    /// Final deployed fraction.
    pub deployed: f64,
    /// Whether the final state is an equilibrium (nobody wants to move).
    pub stable: bool,
}

const N_ISPS: usize = 20;
const BENEFIT: Money = Money(150_000_000); // $150 over the horizon, if paid

fn costs(seed: u64) -> Vec<Money> {
    let mut rng = SimRng::seed_from_u64(seed).fork("e16");
    (0..N_ISPS).map(|_| Money::from_dollars(rng.range(60..120i64))).collect()
}

fn wants_to_deploy(
    shape: BenefitShape,
    value_transfer: bool,
    others_deployed: f64,
    cost: Money,
) -> bool {
    let gross = if value_transfer { BENEFIT } else { Money::ZERO };
    let benefit = match shape {
        BenefitShape::Unilateral => gross,
        BenefitShape::Conjunctive { threshold } => {
            if others_deployed >= threshold {
                gross
            } else {
                Money::ZERO
            }
        }
    };
    benefit > cost
}

/// Iterated best-response deployment dynamics.
pub fn run_scenario(s: &DeploymentScenario, seed: u64) -> DeploymentOutcome {
    let cost_table = costs(seed);
    let mut deployed: Vec<bool> =
        (0..N_ISPS).map(|i| (i as f64) < s.initial_deployment * N_ISPS as f64).collect();
    for _round in 0..50 {
        let mut changed = false;
        for i in 0..N_ISPS {
            let others = deployed.iter().enumerate().filter(|(j, d)| *j != i && **d).count() as f64
                / (N_ISPS - 1) as f64;
            let want = wants_to_deploy(s.shape, s.value_transfer, others, cost_table[i]);
            if want != deployed[i] {
                deployed[i] = want;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // stability check: one more pass must change nothing
    let frac = deployed.iter().filter(|d| **d).count() as f64 / N_ISPS as f64;
    let stable = (0..N_ISPS).all(|i| {
        let others = deployed.iter().enumerate().filter(|(j, d)| *j != i && **d).count() as f64
            / (N_ISPS - 1) as f64;
        wants_to_deploy(s.shape, s.value_transfer, others, cost_table[i]) == deployed[i]
    });
    DeploymentOutcome { deployed: frac, stable }
}

/// The four §VII/fn.19 scenarios.
pub fn scenarios() -> Vec<DeploymentScenario> {
    vec![
        DeploymentScenario {
            label: "multicast, no value transfer",
            shape: BenefitShape::Conjunctive { threshold: 0.8 },
            value_transfer: false,
            initial_deployment: 0.0,
        },
        DeploymentScenario {
            label: "multicast, value transfer, organic start",
            shape: BenefitShape::Conjunctive { threshold: 0.8 },
            value_transfer: true,
            initial_deployment: 0.0,
        },
        DeploymentScenario {
            label: "multicast, value transfer, big-bang start",
            shape: BenefitShape::Conjunctive { threshold: 0.8 },
            value_transfer: true,
            initial_deployment: 1.0,
        },
        DeploymentScenario {
            label: "CDN/caches (unilateral benefit)",
            shape: BenefitShape::Unilateral,
            value_transfer: true,
            initial_deployment: 0.0,
        },
    ]
}

/// World for the engine-driven replay: settled outcomes keyed by label.
#[derive(Default)]
struct DeployWorld {
    outcomes: Vec<(&'static str, DeploymentOutcome)>,
}

/// Run E16 and produce the report. The best-response dynamics are pure;
/// each scenario plays as a two-event causal chain (the standards moment,
/// then — after a seeded roll-out lag — the market settles) on the shared
/// engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(DeployWorld::default(), seed);
    for (i, s) in scenarios().into_iter().enumerate() {
        // Each deployment scenario is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |_w: &mut DeployWorld, ctx| {
            ctx.span_enter("e16.standards", Some("isp"), &[("scenario", s.label)]);
            let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
            ctx.trace_fields(
                "e16.rollout",
                Some("isp"),
                &[("lag_us", &lag.as_micros().to_string())],
                format!("{}: the deployment game begins", s.label),
            );
            ctx.span_exit(&[]);
            ctx.schedule_in(lag, move |w2: &mut DeployWorld, ctx2| {
                ctx2.span_enter("e16.dynamics", Some("isp"), &[("scenario", s.label)]);
                let o = run_scenario(&s, seed);
                ctx2.span_exit(&[("deployed", &format!("{:.2}", o.deployed))]);
                w2.outcomes.push((s.label, o));
            });
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Multicast vs. CDN deployment dynamics (20 ISPs, cost $60-$120, benefit $150 if paid)",
        &["final deployment", "stable equilibrium"],
    );
    let outcomes: Vec<DeploymentOutcome> = scenarios()
        .iter()
        .map(|s| {
            eng.world
                .outcomes
                .iter()
                .find(|(l, _)| *l == s.label)
                .map(|(_, o)| o.clone())
                .expect("every scenario settles")
        })
        .collect();
    for (s, o) in scenarios().iter().zip(&outcomes) {
        table.push_row(s.label, &[format!("{:.2}", o.deployed), o.stable.to_string()]);
    }

    let (no_transfer, organic, bigbang, cdn) =
        (&outcomes[0], &outcomes[1], &outcomes[2], &outcomes[3]);
    let shape_holds = no_transfer.deployed == 0.0
        && organic.deployed == 0.0 // the stag hunt selects the bad equilibrium
        && organic.stable
        && bigbang.deployed == 1.0 // all-deploy IS an equilibrium...
        && bigbang.stable // ...it was just unreachable organically
        && cdn.deployed == 1.0;

    ExperimentReport {
        id: "E16".into(),
        section: "VII (fn. 19)".into(),
        paper_claim: "Multicast failed like QoS but worse: its benefit is conjunctive, so even \
                      with a value-transfer mechanism, organic deployment is a stag hunt stuck \
                      at the none-deploy equilibrium; the all-deploy equilibrium exists but is \
                      unreachable unilaterally. Unilateral-benefit designs (CDNs/caches) \
                      deploy themselves — and that is what the market built."
            .into(),
        summary: format!(
            "organic multicast sticks at {:.0}% even with payment (stable: {}); a coordinated \
             big-bang start sustains {:.0}%; the unilateral CDN design reaches {:.0}% from \
             nothing.",
            organic.deployed * 100.0,
            organic.stable,
            bigbang.deployed * 100.0,
            cdn.deployed * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organic_multicast_fails_even_with_payment() {
        let s = &scenarios()[1];
        let o = run_scenario(s, 3);
        assert_eq!(o.deployed, 0.0);
        assert!(o.stable, "none-deploy is a genuine equilibrium, not a transient");
    }

    #[test]
    fn all_deploy_is_also_an_equilibrium() {
        let s = &scenarios()[2];
        let o = run_scenario(s, 3);
        assert_eq!(o.deployed, 1.0);
        assert!(o.stable);
    }

    #[test]
    fn big_bang_without_value_transfer_unravels() {
        let s = DeploymentScenario {
            label: "seeded but unpaid",
            shape: BenefitShape::Conjunctive { threshold: 0.8 },
            value_transfer: false,
            initial_deployment: 1.0,
        };
        let o = run_scenario(&s, 3);
        assert_eq!(o.deployed, 0.0, "without greed, even coordination cannot hold");
    }

    #[test]
    fn cdn_deploys_from_nothing() {
        let o = run_scenario(&scenarios()[3], 3);
        assert_eq!(o.deployed, 1.0);
    }

    #[test]
    fn report_shape_holds_across_seeds() {
        for seed in [1, 7, 42] {
            let r = run(seed);
            assert!(r.shape_holds, "seed {seed}: {}", r.summary);
        }
    }
}

//! E2 — Value pricing vs. tunneling (§V.A.2).
//!
//! Paper claim: "some acceptable use policies for residential broadband
//! access prohibit the operation of a server in the home. To run a server,
//! the customer is required to pay a higher 'business' rate. Customers who
//! wish to sidestep this restriction can respond by shifting to another
//! provider, if there is one, or by tunneling to disguise the port numbers
//! being used. The probable outcome of this tussle depends strongly on
//! whether one perceives competition as currently healthy."
//!
//! Measured: an escalation in four rounds — flat pricing; value pricing
//! introduced; server-runners tunnel; the provider deploys detection —
//! under a monopoly and under competition (an alternative flat-rate
//! provider the detected can flee to).

use tussle_core::{ExperimentReport, Table};
use tussle_econ::{Money, PricingScheme, Usage};
use tussle_net::tunnel::TunnelDetector;
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// One escalation rung's aggregate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Escalation rung label.
    pub round: &'static str,
    /// Provider revenue from the server-running segment.
    pub revenue: Money,
    /// Server-runners' total surplus.
    pub consumer_surplus: Money,
    /// Customers who left for the competitor (0 in monopoly).
    pub departed: usize,
}

/// Population parameters.
const N_SERVER_RUNNERS: usize = 20;
const SERVER_VALUE: Money = Money(150_000_000); // $150/mo value of service+server
const RESIDENTIAL: Money = Money(40_000_000); // $40
const BUSINESS: Money = Money(120_000_000); // $120
const COMPETITOR_FLAT: Money = Money(55_000_000); // $55 flat elsewhere
const TUNNEL_COST: Money = Money(5_000_000); // $5/mo of hassle

/// One escalation rung's outcome. Rounds 0–2 are pure bills; round 3
/// samples the tunnel detector once per customer from `rng`.
pub fn round_outcome(round: usize, competitive: bool, rng: &mut SimRng) -> RoundOutcome {
    let vp = PricingScheme::ValuePricing { residential: RESIDENTIAL, business: BUSINESS };
    match round {
        // Round 0: flat pricing, everyone pays residential-equivalent.
        0 => RoundOutcome {
            round: "flat pricing",
            revenue: RESIDENTIAL * N_SERVER_RUNNERS as i64,
            consumer_surplus: (SERVER_VALUE - RESIDENTIAL) * N_SERVER_RUNNERS as i64,
            departed: 0,
        },
        // Round 1: value pricing; servers are visible; everyone pays business.
        1 => {
            let bill = vp.bill(Usage::open_server(1000));
            RoundOutcome {
                round: "value pricing",
                revenue: bill * N_SERVER_RUNNERS as i64,
                consumer_surplus: (SERVER_VALUE - bill) * N_SERVER_RUNNERS as i64,
                departed: 0,
            }
        }
        // Round 2: everyone tunnels; bills fall back to residential, minus
        // the tunnel hassle on the consumer side.
        2 => {
            let bill = vp.bill(Usage::hidden_server(1000));
            RoundOutcome {
                round: "consumers tunnel",
                revenue: bill * N_SERVER_RUNNERS as i64,
                consumer_surplus: (SERVER_VALUE - bill - TUNNEL_COST) * N_SERVER_RUNNERS as i64,
                departed: 0,
            }
        }
        // Round 3: the provider deploys detection. Detected customers are
        // re-billed at the business rate; under competition they leave for
        // the flat competitor instead of paying it.
        _ => {
            let detector = TunnelDetector::new(0.8, 0.02);
            let mut revenue = Money::ZERO;
            let mut surplus = Money::ZERO;
            let mut departed = 0;
            for _ in 0..N_SERVER_RUNNERS {
                // a tunneled packet stream is sampled once per billing cycle
                let detected = rng.chance(detector.true_positive);
                if detected {
                    if competitive {
                        departed += 1;
                        surplus += SERVER_VALUE - COMPETITOR_FLAT;
                        // revenue goes to the competitor, not this provider
                    } else {
                        revenue += BUSINESS;
                        surplus += SERVER_VALUE - BUSINESS;
                    }
                } else {
                    revenue += RESIDENTIAL;
                    surplus += SERVER_VALUE - RESIDENTIAL - TUNNEL_COST;
                }
            }
            RoundOutcome { round: "provider detects", revenue, consumer_surplus: surplus, departed }
        }
    }
}

/// Play the four rounds. `competitive` controls whether a flat-rate
/// alternative exists for detected server-runners to flee to.
pub fn run_rounds(competitive: bool, seed: u64) -> Vec<RoundOutcome> {
    let mut rng = SimRng::seed_from_u64(seed).fork("e02");
    (0..4).map(|round| round_outcome(round, competitive, &mut rng)).collect()
}

/// World for the engine-driven replay: settled rounds per regime.
#[derive(Default)]
struct PricingWorld {
    mono: Vec<RoundOutcome>,
    comp: Vec<RoundOutcome>,
}

/// One escalation rung as an engine event. Each rung schedules the rung it
/// provokes after a seeded reaction lag, so the run's provenance records
/// the escalation as a causal chain per regime.
fn play_round(w: &mut PricingWorld, ctx: &mut Ctx<PricingWorld>, competitive: bool, round: usize) {
    // Round 2 (tunneling) is the consumers' move; the rest are the
    // provider's pricing moves.
    let actor = if round == 2 { "user" } else { "provider" };
    let regime = if competitive { "competitive" } else { "monopoly" };
    ctx.span_enter("e2.round", Some(actor), &[("regime", regime), ("round", &round.to_string())]);
    let o = round_outcome(round, competitive, ctx.rng);
    if round + 1 < 4 {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e2.counter",
            Some(actor),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} provokes the next rung", o.round),
        );
        ctx.span_exit(&[("revenue", &o.revenue.to_string())]);
        ctx.schedule_in(lag, move |w2: &mut PricingWorld, ctx2| {
            play_round(w2, ctx2, competitive, round + 1);
        });
    } else {
        ctx.trace_fields(
            "e2.settled",
            Some(actor),
            &[("departed", &o.departed.to_string())],
            format!("{regime} escalation settles at {}", o.round),
        );
        ctx.span_exit(&[("revenue", &o.revenue.to_string())]);
    }
    if competitive { &mut w.comp } else { &mut w.mono }.push(o);
}

/// Run E2 and produce the report. Each regime's escalation plays out as a
/// causally chained sequence of engine events on the shared clock.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(PricingWorld::default(), seed);
    for (i, competitive) in [false, true].into_iter().enumerate() {
        // Each regime's opening rung is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut PricingWorld, ctx| {
            play_round(w, ctx, competitive, 0);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Value-pricing escalation: provider revenue / server-runner surplus / departures",
        &[
            "monopoly revenue",
            "monopoly surplus",
            "competitive revenue",
            "competitive surplus",
            "departed",
        ],
    );
    let mono = eng.world.mono;
    let comp = eng.world.comp;
    for (m, c) in mono.iter().zip(&comp) {
        table.push_row(
            m.round,
            &[
                m.revenue.to_string(),
                m.consumer_surplus.to_string(),
                c.revenue.to_string(),
                c.consumer_surplus.to_string(),
                c.departed.to_string(),
            ],
        );
    }

    // Shape: value pricing raises revenue; tunneling claws it back;
    // detection re-raises revenue under monopoly but LOSES customers (and
    // revenue relative to monopoly) under competition.
    let shape_holds = mono[1].revenue > mono[0].revenue
        && mono[2].revenue < mono[1].revenue
        && mono[3].revenue > mono[2].revenue
        && comp[3].departed > 0
        && comp[3].revenue < mono[3].revenue
        && comp[3].consumer_surplus > mono[3].consumer_surplus;

    ExperimentReport {
        id: "E2".into(),
        section: "V.A.2".into(),
        paper_claim: "Value pricing segments the market; tunneling shifts surplus back to \
                      consumers; detection re-escalates — and the outcome pivots on whether \
                      competition gives detected customers somewhere to go."
            .into(),
        summary: format!(
            "monopoly detection recovers revenue to {}; under competition {} of {} detected \
             customers depart and provider revenue is only {}.",
            mono[3].revenue, comp[3].departed, N_SERVER_RUNNERS, comp[3].revenue
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_pricing_raises_revenue_until_tunnels() {
        let rounds = run_rounds(false, 1);
        assert!(rounds[1].revenue > rounds[0].revenue);
        assert!(rounds[2].revenue < rounds[1].revenue);
        // tunnels return the bill to residential exactly
        assert_eq!(rounds[2].revenue, rounds[0].revenue);
    }

    #[test]
    fn detection_outcome_depends_on_competition() {
        let mono = run_rounds(false, 2);
        let comp = run_rounds(true, 2);
        assert_eq!(mono[3].departed, 0);
        assert!(comp[3].departed > 0);
        assert!(comp[3].revenue < mono[3].revenue);
    }

    #[test]
    fn consumers_always_prefer_competition() {
        for seed in [1, 5, 9] {
            let mono = run_rounds(false, seed);
            let comp = run_rounds(true, seed);
            assert!(comp[3].consumer_surplus >= mono[3].consumer_surplus);
        }
    }

    #[test]
    fn report_shape_holds() {
        let r = run(3);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 4);
    }
}

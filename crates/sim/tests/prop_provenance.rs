//! Property tests for event provenance: the causal DAG the engine records
//! while dispatching.

use proptest::prelude::*;
use tussle_sim::{obs, Ctx, Engine, SimTime};

/// A self-expanding event tree: each event schedules `fan` children until
/// `depth` is exhausted. The world counts dispatches.
fn tick(depth: u8, fan: u8, delay: u64) -> impl FnOnce(&mut u64, &mut Ctx<u64>) + 'static {
    move |w, ctx| {
        *w += 1;
        if depth > 0 {
            for k in 0..fan {
                ctx.schedule_in(
                    SimTime::from_micros(delay + k as u64),
                    tick(depth - 1, fan, delay),
                );
            }
        }
    }
}

/// Build and run a random event forest, returning the engine.
fn run_forest(roots: &[u64], depth: u8, fan: u8, delay: u64) -> Engine<u64> {
    let mut eng: Engine<u64> = Engine::new(0, 7);
    for t in roots {
        eng.schedule_at(SimTime::from_micros(*t), tick(depth, fan, delay));
    }
    eng.run_to_completion();
    eng
}

proptest! {
    /// The provenance graph is acyclic by construction: every recorded
    /// parent id is strictly smaller than its child's id (parents are
    /// dispatched — and numbered — before anything they schedule), and
    /// every non-root node's parent is itself recorded.
    #[test]
    fn provenance_is_an_acyclic_dag(
        roots in proptest::collection::vec(0u64..1_000, 1..4),
        depth in 0u8..4,
        fan in 1u8..3,
        delay in 1u64..100,
    ) {
        let eng = run_forest(&roots, depth, fan, delay);
        prop_assert_eq!(eng.provenance().len() as u64, eng.world, "one node per dispatch");
        for node in eng.provenance().iter() {
            if let Some(parent) = node.parent {
                prop_assert!(parent.0 < node.id.0, "child {} scheduled by later {}", node.id, parent);
                prop_assert!(eng.provenance().get(parent).is_some(), "parent {parent} recorded");
            }
        }
        // Exactly the externally injected events are roots.
        prop_assert_eq!(eng.provenance().roots().count(), roots.len());
    }

    /// Ancestry walks terminate at a root in at most `events` hops, with
    /// strictly decreasing ids along the way.
    #[test]
    fn ancestry_terminates_at_a_root(
        roots in proptest::collection::vec(0u64..1_000, 1..3),
        depth in 0u8..4,
        fan in 1u8..3,
        delay in 1u64..100,
    ) {
        let eng = run_forest(&roots, depth, fan, delay);
        let events = eng.provenance().len();
        for node in eng.provenance().iter() {
            let chain = eng.provenance().ancestry(node.id);
            prop_assert!(!chain.is_empty() && chain.len() <= events);
            prop_assert_eq!(chain[0].id, node.id, "chain starts at the query");
            prop_assert_eq!(chain.last().unwrap().parent, None, "chain ends at a root");
            for hop in chain.windows(2) {
                prop_assert!(hop[1].id.0 < hop[0].id.0, "ids strictly decrease walking up");
            }
        }
    }

    /// The ambient observation scope (Profile mode) mirrors the engine's
    /// own provenance ring node-for-node.
    #[test]
    fn obs_mirror_matches_the_engine_ring(
        roots in proptest::collection::vec(0u64..1_000, 1..3),
        depth in 0u8..3,
        fan in 1u8..3,
        delay in 1u64..100,
    ) {
        let guard = obs::begin(obs::ObsMode::Profile);
        let eng = run_forest(&roots, depth, fan, delay);
        let record = guard.finish();
        prop_assert_eq!(record.events as usize, eng.provenance().len());
        let engine_nodes: Vec<_> = eng.provenance().iter().cloned().collect();
        prop_assert_eq!(record.provenance, engine_nodes);
        prop_assert_eq!(record.provenance_dropped, 0);
    }

    /// Ids are schedule-order sequence numbers: every id in 0..n occurs
    /// exactly once, while the recorded (iteration) order is dispatch
    /// order — virtual time never decreases along it.
    #[test]
    fn ids_are_dense_and_dispatch_order_is_time_ordered(
        roots in proptest::collection::vec(0u64..1_000, 1..3),
        depth in 0u8..3,
    ) {
        let eng = run_forest(&roots, depth, 2, 10);
        let mut ids: Vec<u64> = eng.provenance().iter().map(|n| n.id.0).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..eng.provenance().len() as u64).collect();
        prop_assert_eq!(ids, expected);
        for pair in eng.provenance().iter().collect::<Vec<_>>().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time, "dispatch order is time order");
        }
    }
}

//! Third-party mediation.
//!
//! §V.B: "most users do not trust many of the parties they actually want to
//! talk to. ... we depend on third parties to mediate and enhance the
//! assurance that things are going to go right. Credit card companies limit
//! our liability to $50 ... Public key certificate agents provide us with
//! certificates ... Web sites assess and report the reputation of other
//! sites." And the engineering principle: "there should be explicit ability
//! to select what third parties are used to mediate an interaction."

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tussle_sim::SimRng;

/// The third party (if any) mediating a transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mediator {
    /// No mediation: caveat emptor.
    None,
    /// Escrow / liability-cap mediation (the credit-card model): the buyer
    /// loses at most `liability_cap` to fraud; the mediator charges `fee`
    /// per transaction.
    Escrow {
        /// Maximum buyer loss per fraudulent transaction (micro-currency).
        liability_cap: i64,
        /// Fee per transaction (micro-currency).
        fee: i64,
    },
    /// Reputation mediation: the buyer consults a score and refuses sellers
    /// below `min_score`; the service charges `fee` per consult.
    Reputation {
        /// Minimum acceptable seller score in `[0,1]`.
        min_score: f64,
        /// Fee per consult (micro-currency).
        fee: i64,
    },
}

/// Inputs to one buyer/seller transaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransactionSetup {
    /// Transaction value to the buyer if it goes right (micro-currency).
    pub value: i64,
    /// Price paid to the seller (micro-currency).
    pub price: i64,
    /// Probability the seller defrauds (takes the money, delivers nothing).
    pub fraud_probability: f64,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransactionOutcome {
    /// Did the buyer proceed at all?
    pub attempted: bool,
    /// Was the transaction fraudulent?
    pub defrauded: bool,
    /// Buyer's net gain/loss (micro-currency), fees included.
    pub buyer_net: i64,
    /// Fee collected by the mediator.
    pub mediator_fee: i64,
}

/// A reputation record for sellers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReputationBook {
    records: BTreeMap<u64, (u64, u64)>, // seller -> (good, bad)
}

impl ReputationBook {
    /// Empty book.
    pub fn new() -> Self {
        ReputationBook::default()
    }

    /// Record an outcome for a seller.
    pub fn record(&mut self, seller: u64, good: bool) {
        let e = self.records.entry(seller).or_insert((0, 0));
        if good {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Laplace-smoothed score in `[0,1]`; unknown sellers score 0.5.
    pub fn score(&self, seller: u64) -> f64 {
        match self.records.get(&seller) {
            None => 0.5,
            Some((good, bad)) => (*good as f64 + 1.0) / ((good + bad) as f64 + 2.0),
        }
    }
}

/// Run one transaction under a chosen mediator.
///
/// `seller` identifies the counterparty in the reputation book; the book is
/// updated with the true outcome whenever the transaction is attempted.
pub fn run_transaction(
    setup: TransactionSetup,
    mediator: &Mediator,
    seller: u64,
    book: &mut ReputationBook,
    rng: &mut SimRng,
) -> TransactionOutcome {
    match mediator {
        Mediator::None => {
            let defrauded = rng.chance(setup.fraud_probability);
            let buyer_net = if defrauded { -setup.price } else { setup.value - setup.price };
            book.record(seller, !defrauded);
            TransactionOutcome { attempted: true, defrauded, buyer_net, mediator_fee: 0 }
        }
        Mediator::Escrow { liability_cap, fee } => {
            let defrauded = rng.chance(setup.fraud_probability);
            let loss = if defrauded {
                // escrow caps the loss; the mediator absorbs the rest
                (-setup.price).max(-liability_cap)
            } else {
                setup.value - setup.price
            };
            book.record(seller, !defrauded);
            TransactionOutcome {
                attempted: true,
                defrauded,
                buyer_net: loss - fee,
                mediator_fee: *fee,
            }
        }
        Mediator::Reputation { min_score, fee } => {
            if book.score(seller) < *min_score {
                // buyer walks away: pays the consult fee, avoids the risk
                return TransactionOutcome {
                    attempted: false,
                    defrauded: false,
                    buyer_net: -fee,
                    mediator_fee: *fee,
                };
            }
            let defrauded = rng.chance(setup.fraud_probability);
            let buyer_net =
                if defrauded { -setup.price - fee } else { setup.value - setup.price - fee };
            book.record(seller, !defrauded);
            TransactionOutcome { attempted: true, defrauded, buyer_net, mediator_fee: *fee }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(fraud: f64) -> TransactionSetup {
        TransactionSetup { value: 1_500_000, price: 1_000_000, fraud_probability: fraud }
    }

    #[test]
    fn honest_unmediated_transaction_pays_surplus() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        let o = run_transaction(setup(0.0), &Mediator::None, 7, &mut book, &mut rng);
        assert!(o.attempted && !o.defrauded);
        assert_eq!(o.buyer_net, 500_000);
    }

    #[test]
    fn fraud_without_mediation_costs_full_price() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        let o = run_transaction(setup(1.0), &Mediator::None, 7, &mut book, &mut rng);
        assert!(o.defrauded);
        assert_eq!(o.buyer_net, -1_000_000);
    }

    #[test]
    fn escrow_caps_the_loss() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        let escrow = Mediator::Escrow { liability_cap: 50_000, fee: 10_000 };
        let o = run_transaction(setup(1.0), &escrow, 7, &mut book, &mut rng);
        assert!(o.defrauded);
        assert_eq!(o.buyer_net, -60_000, "cap + fee, not the full price");
        assert_eq!(o.mediator_fee, 10_000);
    }

    #[test]
    fn escrow_fee_reduces_honest_surplus() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        let escrow = Mediator::Escrow { liability_cap: 50_000, fee: 10_000 };
        let o = run_transaction(setup(0.0), &escrow, 7, &mut book, &mut rng);
        assert_eq!(o.buyer_net, 490_000);
    }

    #[test]
    fn reputation_blocks_known_bad_sellers() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        for _ in 0..10 {
            book.record(666, false);
        }
        let rep = Mediator::Reputation { min_score: 0.4, fee: 5_000 };
        let o = run_transaction(setup(1.0), &rep, 666, &mut book, &mut rng);
        assert!(!o.attempted);
        assert_eq!(o.buyer_net, -5_000, "only the consult fee is lost");
    }

    #[test]
    fn reputation_admits_good_sellers() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut book = ReputationBook::new();
        for _ in 0..10 {
            book.record(7, true);
        }
        let rep = Mediator::Reputation { min_score: 0.4, fee: 5_000 };
        let o = run_transaction(setup(0.0), &rep, 7, &mut book, &mut rng);
        assert!(o.attempted);
        assert_eq!(o.buyer_net, 495_000);
    }

    #[test]
    fn reputation_scores() {
        let mut book = ReputationBook::new();
        assert_eq!(book.score(1), 0.5);
        book.record(1, true);
        book.record(1, true);
        book.record(1, false);
        // (2+1)/(3+2) = 0.6
        assert!((book.score(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mediation_beats_no_mediation_under_high_fraud() {
        // the aggregate shape experiment E7 relies on
        let mut rng = SimRng::seed_from_u64(42);
        let mut raw_total = 0i64;
        let mut escrow_total = 0i64;
        let escrow = Mediator::Escrow { liability_cap: 50_000, fee: 10_000 };
        for i in 0..500 {
            let mut book = ReputationBook::new();
            raw_total +=
                run_transaction(setup(0.3), &Mediator::None, i, &mut book, &mut rng).buyer_net;
            escrow_total += run_transaction(setup(0.3), &escrow, i, &mut book, &mut rng).buyer_net;
        }
        assert!(
            escrow_total > raw_total,
            "escrow {escrow_total} should beat raw {raw_total} at 30% fraud"
        );
    }
}

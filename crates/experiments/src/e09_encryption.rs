//! E9 — The encryption escalation ladder (§VI.A).
//!
//! Paper claim: "Peeking is irresistible. ... the ultimate defense of the
//! end-to-end mode is end-to-end encryption. ... the response of the
//! provider is to refuse to carry encrypted data. It is probably not the
//! case that a commercial ISP would escalate to this level ... In the U.S.,
//! competition would probably discipline a provider that tried to block
//! encryption. But a conservative government with a state-run monopoly ISP
//! might. ... Then the advantage of having the encrypted mode is that it
//! would force the government to be explicit about what their policy was."
//! (Footnote 17: "The next step in this sort of escalation is
//! steganography.")
//!
//! Measured: the ladder is played under a competitive market and under a
//! state monopoly; the provider's decision to block is driven by a profit
//! comparison (blocking loses customers only where customers can leave).

use tussle_core::escalation::EscalationLadder;
use tussle_core::{ExperimentReport, Mechanism, Table};
use tussle_econ::Money;
use tussle_sim::{Ctx, Engine, SimTime};

/// Market regimes of §VI.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketRegime {
    /// Several ISPs; customers can switch freely.
    Competitive,
    /// One state-run ISP; nowhere to go.
    StateMonopoly,
}

impl MarketRegime {
    fn label(self) -> &'static str {
        match self {
            MarketRegime::Competitive => "competitive market",
            MarketRegime::StateMonopoly => "state monopoly",
        }
    }
}

/// Outcome of the ladder in one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptionOutcome {
    /// Did the provider block encrypted traffic?
    pub provider_blocked: bool,
    /// The mechanism left standing.
    pub final_mechanism: Mechanism,
    /// Did the user end up with confidential traffic?
    pub privacy_achieved: bool,
    /// Is the provider's interference policy visible to the user?
    pub policy_visible: bool,
    /// Provider profit under its chosen response.
    pub provider_profit: Money,
}

const N_CUSTOMERS: i64 = 20;
const PRICE: Money = Money(60_000_000);
const COST: Money = Money(20_000_000);
/// What the provider gains per customer by controlling/peeking at traffic
/// (VPN surcharges, ad injection, vertical-integration leverage).
const CONTROL_RENT: Money = Money(15_000_000);

/// The provider's profit if it blocks encrypted traffic, given the regime.
pub fn blocking_profit(regime: MarketRegime) -> Money {
    match regime {
        // customers defect to the ISP that carries encrypted traffic
        MarketRegime::Competitive => Money::ZERO,
        // customers have nowhere to go; the provider keeps margin + rent
        MarketRegime::StateMonopoly => (PRICE - COST + CONTROL_RENT) * N_CUSTOMERS,
    }
}

/// The provider's profit if it tolerates encryption.
pub fn tolerate_profit(_regime: MarketRegime) -> Money {
    (PRICE - COST) * N_CUSTOMERS
}

/// Play the §VI.A ladder in one regime (the pure decision logic; the
/// engine-driven replay in [`run`] turns its rungs into causally chained
/// events).
pub fn play_ladder(regime: MarketRegime) -> EscalationLadder {
    let block_pays = blocking_profit(regime) > tolerate_profit(regime);
    EscalationLadder::play(Mechanism::Encryption, 10, |_, counters| {
        // rung 1: the provider decides whether to counter encryption
        if counters.contains(&Mechanism::EncryptionBlocking) {
            return block_pays.then_some(Mechanism::EncryptionBlocking);
        }
        // rung 2: the user decides how to counter blocking
        if counters.contains(&Mechanism::Steganography) {
            return match regime {
                // competitive users would just switch ISP, but if we got
                // here the provider blocked anyway; monopoly users have
                // only concealment left
                MarketRegime::Competitive => Some(Mechanism::ServerChoice),
                MarketRegime::StateMonopoly => Some(Mechanism::Steganography),
            };
        }
        None
    })
}

/// Outcome of the ladder in one regime.
pub fn run_regime(regime: MarketRegime) -> EncryptionOutcome {
    let ladder = play_ladder(regime);
    let final_mechanism = ladder.final_mechanism();
    let provider_blocked =
        ladder.steps.iter().any(|s| s.mechanism == Mechanism::EncryptionBlocking);
    // privacy: encryption survives unless blocking is the last word
    let privacy_achieved = final_mechanism != Mechanism::EncryptionBlocking;
    // the §VI.A consolation: blocking, where it happens, is an explicit,
    // visible policy — cleartext peeking is not
    let policy_visible = provider_blocked;
    EncryptionOutcome {
        provider_blocked,
        final_mechanism,
        privacy_achieved,
        policy_visible,
        provider_profit: if provider_blocked {
            blocking_profit(regime)
        } else {
            tolerate_profit(regime)
        },
    }
}

/// World for the engine-driven ladder replay: settled outcomes per regime.
#[derive(Default)]
struct LadderWorld {
    outcomes: Vec<(MarketRegime, EncryptionOutcome)>,
}

/// One deployment rung as an engine event. Each counter-move is scheduled
/// *by the rung it answers* after a seeded reaction lag, so the run's
/// provenance records the escalation as a causal chain — exactly the
/// structure `tussle-cli explain` walks — and different seeds diverge in
/// their trace streams (the lags are rng draws), which is what
/// `tussle-cli diff` bisects.
fn deploy(
    w: &mut LadderWorld,
    ctx: &mut Ctx<LadderWorld>,
    regime: MarketRegime,
    steps: Vec<Mechanism>,
    rung: usize,
    outcome: EncryptionOutcome,
) {
    let mechanism = steps[rung];
    // Even rungs are the user's moves (encryption, steganography), odd
    // rungs the provider's (blocking).
    let actor = if rung.is_multiple_of(2) { "user" } else { "provider" };
    let mech_label = format!("{mechanism:?}");
    let rung_label = rung.to_string();
    ctx.span_enter(
        "e9.deploy",
        Some(actor),
        &[("regime", regime.label()), ("mechanism", &mech_label), ("rung", &rung_label)],
    );
    if rung + 1 < steps.len() {
        // The counter takes time to procure and roll out; the lag is the
        // run's seed-dependent texture.
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e9.counter",
            Some(actor),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{mech_label} provokes a counter-move"),
        );
        ctx.span_exit(&[("countered", "true")]);
        ctx.schedule_in(lag, move |w2: &mut LadderWorld, ctx2| {
            deploy(w2, ctx2, regime, steps, rung + 1, outcome);
        });
    } else {
        ctx.trace_fields(
            "e9.settled",
            Some(actor),
            &[("final", &mech_label)],
            format!("{} settles at {mech_label}", regime.label()),
        );
        ctx.span_exit(&[("countered", "false")]);
        w.outcomes.push((regime, outcome));
    }
}

/// Run E9 and produce the report. The ladder decisions are pure profit
/// comparisons; the engine replay gives them a causal event structure.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(LadderWorld::default(), seed);
    for (i, regime) in
        [MarketRegime::Competitive, MarketRegime::StateMonopoly].into_iter().enumerate()
    {
        // Each regime's opening move is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut LadderWorld, ctx| {
            let steps: Vec<Mechanism> =
                play_ladder(regime).steps.iter().map(|s| s.mechanism).collect();
            let outcome = run_regime(regime);
            deploy(w, ctx, regime, steps, 0, outcome);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "The encryption escalation ladder by market regime",
        &[
            "provider blocks",
            "final mechanism",
            "privacy achieved",
            "policy visible",
            "provider profit",
        ],
    );
    let mut outcomes = Vec::new();
    for regime in [MarketRegime::Competitive, MarketRegime::StateMonopoly] {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(r, _)| *r == regime)
            .map(|(_, o)| o.clone())
            .expect("every regime's ladder settles");
        table.push_row(
            regime.label(),
            &[
                o.provider_blocked.to_string(),
                format!("{:?}", o.final_mechanism),
                o.privacy_achieved.to_string(),
                o.policy_visible.to_string(),
                o.provider_profit.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let (comp, mono) = (&outcomes[0], &outcomes[1]);
    let shape_holds = !comp.provider_blocked
        && comp.privacy_achieved
        && comp.final_mechanism == Mechanism::Encryption
        && mono.provider_blocked
        && mono.final_mechanism == Mechanism::Steganography
        && mono.privacy_achieved // concealment, not consent
        && mono.policy_visible;

    ExperimentReport {
        id: "E9".into(),
        section: "VI.A".into(),
        paper_claim: "Competition disciplines a provider that would block encryption, so the \
                      ladder stops at (visible) encryption; a state monopoly blocks, the user \
                      escalates to steganography, and the technology's remaining contribution \
                      is forcing the blocking policy to be explicit and visible."
            .into(),
        summary: format!(
            "competitive: provider tolerates, ladder ends at {:?}; monopoly: provider blocks \
             (policy visible: {}), ladder ends at {:?}.",
            comp.final_mechanism, mono.policy_visible, mono.final_mechanism
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competition_makes_blocking_unprofitable() {
        assert!(
            blocking_profit(MarketRegime::Competitive) < tolerate_profit(MarketRegime::Competitive)
        );
        assert!(
            blocking_profit(MarketRegime::StateMonopoly)
                > tolerate_profit(MarketRegime::StateMonopoly)
        );
    }

    #[test]
    fn competitive_ladder_stops_at_encryption() {
        let o = run_regime(MarketRegime::Competitive);
        assert!(!o.provider_blocked);
        assert_eq!(o.final_mechanism, Mechanism::Encryption);
        assert!(o.privacy_achieved);
    }

    #[test]
    fn monopoly_escalates_to_steganography() {
        let o = run_regime(MarketRegime::StateMonopoly);
        assert!(o.provider_blocked);
        assert_eq!(o.final_mechanism, Mechanism::Steganography);
        assert!(o.privacy_achieved, "stego conceals, so traffic is confidential");
        assert!(o.policy_visible, "blocking forced the policy into the open");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }

    #[test]
    fn replay_is_seeded_and_causal() {
        let observe = |seed| {
            let g = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
            let r = run(seed);
            (g.finish(), r)
        };
        let (a, ra) = observe(2002);
        let (a2, _) = observe(2002);
        let (b, rb) = observe(2003);
        assert_eq!(a.digest, a2.digest, "same seed, same stream");
        assert_ne!(a.digest, b.digest, "seeded reaction lags diverge the stream");
        assert!(ra.shape_holds && rb.shape_holds, "outcomes are seed-independent");
        assert!(a.events >= 4, "both regimes replay through the engine: {}", a.events);
        assert!(a.rng_draws >= 2, "monopoly counter-moves draw lags");
    }
}

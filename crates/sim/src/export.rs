//! Deterministic exporters over an observed run.
//!
//! Everything here renders from a [`RunRecord`] — the trace ring, the
//! provenance DAG, the accumulated metrics and the stakeholder fold — into
//! interchange formats:
//!
//! * [`to_chrome`] — Chrome/Perfetto trace-event JSON. Spans become `B`/`E`
//!   duration events, point entries become `i` instants, and provenance
//!   parent edges become `s`/`f` flow events. Each stakeholder gets its own
//!   pseudo-pid, so Perfetto's process lanes *are* the tussle: sort the UI
//!   by process and the per-stakeholder timelines read off directly.
//! * [`to_prometheus`] — Prometheus text exposition of the accumulated
//!   [`MetricsSnapshot`](crate::metrics::MetricsSnapshot) plus stakeholder
//!   and topic attribution.
//! * [`to_jsonl`] — one serialized [`TraceEntry`] per line.
//!
//! Every exporter uses only virtual-time fields (`ts` is virtual
//! microseconds; wall clocks never appear), so output for a fixed seed is
//! byte-identical however the run was scheduled — the same bar the golden
//! reports and collapsed stacks already hold.

use crate::obs::{RunRecord, UNATTRIBUTED};
use crate::trace::{SpanKind, TraceEntry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Resolve the stakeholder lane of one entry against the current lane
/// stack — the same inheritance rule `obs` uses for the scoreboard fold:
/// an explicit annotation wins, otherwise the enclosing span's lane,
/// otherwise [`UNATTRIBUTED`].
fn resolve_lane<'a>(entry: &'a TraceEntry, stack: &'a [(String, u64)]) -> &'a str {
    entry
        .stakeholder
        .as_deref()
        .or_else(|| stack.last().map(|(l, _)| l.as_str()))
        .unwrap_or(UNATTRIBUTED)
}

/// Assign one pseudo-pid per stakeholder lane: pids are 1-based indices
/// into the sorted lane-name list, so the mapping is stable across runs
/// and thread counts. The synthetic engine lane (flow events) always gets
/// the next pid after the last stakeholder.
fn lane_pids(record: &RunRecord) -> BTreeMap<String, u64> {
    let mut lanes: BTreeMap<String, u64> = BTreeMap::new();
    for name in record.stakeholders.keys() {
        lanes.insert(name.clone(), 0);
    }
    // A ring replay can only surface lanes the scoreboard fold already saw,
    // but hand-built records may carry a ring without a fold — cover both.
    let mut stack: Vec<(String, u64)> = Vec::new();
    for entry in &record.ring {
        let lane = resolve_lane(entry, &stack).to_owned();
        lanes.entry(lane.clone()).or_insert(0);
        match entry.kind {
            SpanKind::Enter => stack.push((lane, entry.time.as_micros())),
            SpanKind::Exit => {
                stack.pop();
            }
            SpanKind::Event => {}
        }
    }
    for (i, (_, pid)) in lanes.iter_mut().enumerate() {
        *pid = i as u64 + 1;
    }
    lanes
}

/// The synthetic lane name provenance flow events render under.
pub const ENGINE_LANE: &str = "engine.schedule";

/// Render an args object from span fields, keys sorted (last write wins on
/// duplicates) — jq's `--sort-keys` validation must be a no-op.
fn args_object(fields: &[(String, String)]) -> String {
    let sorted: BTreeMap<&str, &str> =
        fields.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    let inner: Vec<String> =
        sorted.iter().map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v))).collect();
    format!("{{{}}}", inner.join(","))
}

/// Export the captured trace ring + provenance DAG as Chrome trace-event
/// JSON (the format `chrome://tracing` and Perfetto load directly).
///
/// * One pseudo-process per stakeholder lane (named via `M` metadata
///   events), `tid` always 1 — the global span nesting projects onto each
///   lane.
/// * `Enter`/`Exit` entries become `B`/`E` pairs carrying the *Enter*'s
///   lane pid (exits never carry a stakeholder; the opening edge owns the
///   span). Stray exits are skipped and spans still open at the end are
///   closed at the last seen timestamp, so output `B`/`E` are always
///   balanced.
/// * `Event` entries become `i` instants on their resolved lane.
/// * Provenance parent edges become `s`/`f` flow events (id = child event
///   id) on a synthetic [`ENGINE_LANE`] process; edges whose parent was
///   evicted from the bounded ring are dropped.
///
/// `ts` is virtual microseconds; nothing nondeterministic is rendered.
pub fn to_chrome(record: &RunRecord) -> String {
    let lanes = lane_pids(record);
    let engine_pid = lanes.values().max().copied().unwrap_or(0) + 1;
    let mut events: Vec<String> = Vec::new();
    for (name, pid) in &lanes {
        events.push(format!(
            "{{\"args\":{{\"name\":\"{}\"}},\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":1,\"ts\":0}}",
            esc(name),
            pid
        ));
    }
    events.push(format!(
        "{{\"args\":{{\"name\":\"{}\"}},\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":1,\"ts\":0}}",
        esc(ENGINE_LANE),
        engine_pid
    ));

    // Replay the ring with a lane stack; (topic, pid, ts) so close edges
    // land on the lane that opened them.
    let mut stack: Vec<(String, u64)> = Vec::new();
    let mut open: Vec<(String, u64)> = Vec::new();
    let mut last_ts = 0u64;
    for entry in &record.ring {
        let ts = entry.time.as_micros();
        last_ts = last_ts.max(ts);
        match entry.kind {
            SpanKind::Enter => {
                let lane = resolve_lane(entry, &stack).to_owned();
                let pid = lanes[&lane];
                events.push(format!(
                    "{{\"args\":{},\"name\":\"{}\",\"ph\":\"B\",\"pid\":{},\"tid\":1,\"ts\":{}}}",
                    args_object(&entry.fields),
                    esc(&entry.topic),
                    pid,
                    ts
                ));
                stack.push((lane, entry.time.as_micros()));
                open.push((entry.topic.clone(), pid));
            }
            SpanKind::Exit => {
                stack.pop();
                // A stray exit (no matching B in the capture) renders
                // nothing — output B/E stay balanced.
                if let Some((topic, pid)) = open.pop() {
                    events.push(format!(
                        "{{\"args\":{},\"name\":\"{}\",\"ph\":\"E\",\"pid\":{},\"tid\":1,\"ts\":{}}}",
                        args_object(&entry.fields),
                        esc(&topic),
                        pid,
                        ts
                    ));
                }
            }
            SpanKind::Event => {
                let pid = lanes[resolve_lane(entry, &stack)];
                events.push(format!(
                    "{{\"args\":{{\"message\":\"{}\"}},\"name\":\"{}\",\"ph\":\"i\",\"pid\":{},\"s\":\"t\",\"tid\":1,\"ts\":{}}}",
                    esc(&entry.message),
                    esc(&entry.topic),
                    pid,
                    ts
                ));
            }
        }
    }
    // Close spans the capture never saw exit, newest first.
    while let Some((topic, pid)) = open.pop() {
        events.push(format!(
            "{{\"args\":{{}},\"name\":\"{}\",\"ph\":\"E\",\"pid\":{},\"tid\":1,\"ts\":{}}}",
            esc(&topic),
            pid,
            last_ts
        ));
    }

    // Provenance edges as flow events on the synthetic engine lane.
    let by_id: BTreeMap<u64, u64> =
        record.provenance.iter().map(|n| (n.id.0, n.time.as_micros())).collect();
    for node in &record.provenance {
        let Some(parent) = node.parent else { continue };
        let Some(parent_ts) = by_id.get(&parent.0) else { continue };
        events.push(format!(
            "{{\"cat\":\"provenance\",\"id\":{},\"name\":\"sched\",\"ph\":\"s\",\"pid\":{},\"tid\":1,\"ts\":{}}}",
            node.id.0, engine_pid, parent_ts
        ));
        events.push(format!(
            "{{\"bp\":\"e\",\"cat\":\"provenance\",\"id\":{},\"name\":\"sched\",\"ph\":\"f\",\"pid\":{},\"tid\":1,\"ts\":{}}}",
            node.id.0,
            engine_pid,
            node.time.as_micros()
        ));
    }

    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Export the run's accumulated metrics and attribution as Prometheus text
/// exposition (version 0.0.4). Metric *names* are fixed families and the
/// run's own keys become label values, so arbitrary dotted keys can never
/// collide after sanitization:
///
/// * `tussle_counter{key=...}` / `tussle_gauge{key=...}` — the accumulated
///   snapshot (Profile scopes only; empty otherwise).
/// * `tussle_summary{key=...,quantile=...}` + `_sum`/`_count` — histogram
///   summaries at p50/p95/max.
/// * `tussle_stakeholder_{entries,spans,events,virtual_micros}` — the
///   scoreboard fold, one series per stakeholder lane.
/// * `tussle_topic_virtual_micros{topic=...}` — per-topic virtual-time
///   attribution. Wall-time fields are deliberately not exported: the
///   exposition must stay byte-identical across schedulers.
pub fn to_prometheus(record: &RunRecord) -> String {
    let mut out = String::new();
    let m = &record.metrics;
    if !m.counters.is_empty() {
        out.push_str("# TYPE tussle_counter counter\n");
        for (k, v) in &m.counters {
            let _ = writeln!(out, "tussle_counter{{key=\"{}\"}} {}", prom_escape(k), v);
        }
    }
    if !m.gauges.is_empty() {
        out.push_str("# TYPE tussle_gauge gauge\n");
        for (k, v) in &m.gauges {
            let _ = writeln!(out, "tussle_gauge{{key=\"{}\"}} {}", prom_escape(k), v);
        }
    }
    if !m.histograms.is_empty() {
        out.push_str("# TYPE tussle_summary summary\n");
        for (k, s) in &m.histograms {
            let k = prom_escape(k);
            let _ = writeln!(out, "tussle_summary{{key=\"{k}\",quantile=\"0.5\"}} {}", s.p50);
            let _ = writeln!(out, "tussle_summary{{key=\"{k}\",quantile=\"0.95\"}} {}", s.p95);
            let _ = writeln!(out, "tussle_summary{{key=\"{k}\",quantile=\"1\"}} {}", s.max);
            let _ = writeln!(out, "tussle_summary_sum{{key=\"{k}\"}} {}", s.sum);
            let _ = writeln!(out, "tussle_summary_count{{key=\"{k}\"}} {}", s.count);
        }
    }
    if !record.stakeholders.is_empty() {
        for (field, get) in
            [("entries", 0usize), ("spans", 1), ("events", 2), ("virtual_micros", 3)]
        {
            let _ = writeln!(out, "# TYPE tussle_stakeholder_{field} counter");
            for (lane, c) in &record.stakeholders {
                let v = match get {
                    0 => c.entries,
                    1 => c.spans,
                    2 => c.events,
                    _ => c.virtual_micros,
                };
                let _ = writeln!(
                    out,
                    "tussle_stakeholder_{field}{{stakeholder=\"{}\"}} {v}",
                    prom_escape(lane)
                );
            }
        }
    }
    if !record.topics.is_empty() {
        out.push_str("# TYPE tussle_topic_virtual_micros counter\n");
        for (topic, t) in &record.topics {
            let _ = writeln!(
                out,
                "tussle_topic_virtual_micros{{topic=\"{}\"}} {}",
                prom_escape(topic),
                t.virtual_micros
            );
        }
    }
    out
}

/// Export the captured trace ring as JSON Lines: one serialized
/// [`TraceEntry`] per line, oldest first.
pub fn to_jsonl(record: &RunRecord) -> String {
    let mut out = String::new();
    for entry in &record.ring {
        out.push_str(&serde_json::to_string(entry).expect("trace entries serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{self, ObsMode};
    use crate::time::SimTime;

    fn sample_record() -> RunRecord {
        let g = obs::begin(ObsMode::Profile);
        obs::span_enter(SimTime::from_micros(10), "econ.market", Some("isp"), &[("round", "1")]);
        obs::event(SimTime::from_micros(20), "econ.price", "posted");
        obs::span_enter(SimTime::from_micros(30), "econ.audit", None, &[]);
        obs::span_exit(SimTime::from_micros(40), &[]);
        obs::span_exit(SimTime::from_micros(50), &[("rounds", "3")]);
        obs::event(SimTime::from_micros(60), "net.tick", "idle");
        obs::on_metric_counter("pkts", 7);
        obs::on_metric_gauge("price", 2.5);
        obs::on_metric_observe("latency", 10.0);
        g.finish()
    }

    #[test]
    fn chrome_events_are_balanced_and_lane_mapped() {
        let rec = sample_record();
        let out = to_chrome(&rec);
        let b = out.matches("\"ph\":\"B\"").count();
        let e = out.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "B/E balanced:\n{out}");
        assert_eq!(b, 2);
        assert_eq!(out.matches("\"ph\":\"i\"").count(), 2);
        // Stakeholder lanes named via metadata events.
        assert!(out.contains("\"args\":{\"name\":\"isp\"}"), "{out}");
        assert!(out.contains(&format!("\"args\":{{\"name\":\"{UNATTRIBUTED}\"}}")), "{out}");
        assert!(out.contains("\"args\":{\"name\":\"engine.schedule\"}"), "{out}");
        // Span fields ride along as args.
        assert!(out.contains("\"args\":{\"round\":\"1\"}"), "{out}");
    }

    #[test]
    fn chrome_nested_span_inherits_lane_and_exit_matches_enter_pid() {
        let rec = sample_record();
        let lanes = lane_pids(&rec);
        let isp = lanes["isp"];
        let out = to_chrome(&rec);
        // Both B events and both E events carry the isp pid: the nested
        // unannotated span inherits, and exits close on the opening lane.
        for line in out.lines().filter(|l| l.contains("\"ph\":\"B\"") || l.contains("\"ph\":\"E\""))
        {
            assert!(line.contains(&format!("\"pid\":{isp},")), "{line}");
        }
    }

    #[test]
    fn chrome_closes_still_open_spans() {
        let g = obs::begin(ObsMode::Profile);
        obs::span_enter(SimTime::from_micros(1), "a", Some("user"), &[]);
        obs::event(SimTime::from_micros(9), "b", "last");
        let rec = g.finish();
        let out = to_chrome(&rec);
        assert_eq!(out.matches("\"ph\":\"B\"").count(), out.matches("\"ph\":\"E\"").count());
        assert!(
            out.contains("\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":9"),
            "closed at last ts:\n{out}"
        );
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let a = to_chrome(&sample_record());
        let b = to_chrome(&sample_record());
        assert_eq!(a, b);
    }

    #[test]
    fn prometheus_exposition_has_typed_families() {
        let rec = sample_record();
        let out = to_prometheus(&rec);
        assert!(out.contains("# TYPE tussle_counter counter\n"), "{out}");
        assert!(out.contains("tussle_counter{key=\"pkts\"} 7\n"), "{out}");
        assert!(out.contains("tussle_gauge{key=\"price\"} 2.5\n"), "{out}");
        assert!(out.contains("tussle_summary{key=\"latency\",quantile=\"0.95\"}"), "{out}");
        assert!(out.contains("tussle_summary_count{key=\"latency\"} 1\n"), "{out}");
        assert!(
            out.contains("tussle_stakeholder_virtual_micros{stakeholder=\"isp\"} 50\n"),
            "{out}"
        );
        assert!(out.contains("tussle_topic_virtual_micros{topic=\"econ.market\"}"), "{out}");
        // Wall time must never leak into the exposition.
        assert!(!out.contains("wall"), "{out}");
    }

    #[test]
    fn jsonl_emits_one_entry_per_line() {
        let rec = sample_record();
        let out = to_jsonl(&rec);
        assert_eq!(out.lines().count(), rec.ring.len());
        for line in out.lines() {
            let back: TraceEntry = serde_json::from_str(line).expect("round-trips");
            assert!(!back.topic.is_empty());
        }
    }

    #[test]
    fn label_escaping_is_applied() {
        assert_eq!(prom_escape("x\"y"), "x\\\"y");
        assert_eq!(prom_escape("x\\y"), "x\\\\y");
        assert_eq!(prom_escape("x\ny"), "x\\ny");
        assert_eq!(esc("a\"b\nc"), "a\\\"b\\nc");
        assert_eq!(esc("tab\there"), "tab\\there");
    }
}

//! Experiment reporting: paper prediction vs. measured value.
//!
//! The paper has no tables of its own; each experiment reproduces a
//! *narrated prediction* (see `EXPERIMENTS.md`). A [`Table`] holds the
//! measured rows; an [`ExperimentReport`] pairs it with the paper's claim
//! and whether the measured shape holds. Tables render as markdown (for
//! the docs) and JSON (for machine checking in integration tests).

use serde::{Deserialize, Serialize};
use tussle_sim::FaultStats;

/// One table row: a label and its cell values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (the parameter point, e.g. `"switching_cost=$600"`).
    pub label: String,
    /// Cell values, aligned with the table's column names.
    pub values: Vec<String>,
}

/// A results table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column names (excluding the label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the cell count must match the columns.
    pub fn push_row(&mut self, label: &str, values: &[String]) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(Row { label: label.to_owned(), values: values.to_vec() });
    }

    /// Fetch a cell by row label and column name.
    pub fn cell(&self, label: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.label == label)?;
        row.values.get(col).map(|s| s.as_str())
    }

    /// Fetch a numeric cell.
    pub fn cell_f64(&self, label: &str, column: &str) -> Option<f64> {
        self.cell(label, column)?.trim_start_matches('$').parse().ok()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("| {} |", row.label));
            for v in &row.values {
                out.push_str(&format!(" {v} |"));
            }
            out.push('\n');
        }
        out
    }
}

/// What one experiment run cost, as observed by the ambient observation
/// scope (`tussle_sim::obs`). Every field is deterministic for a given
/// seed — wall time deliberately does **not** appear here (it would poison
/// golden reports and cross-thread byte-equality); `tussle-cli profile`
/// reports wall time separately.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCost {
    /// Engine events dispatched.
    pub events: u64,
    /// Randomness-consuming rng calls.
    pub rng_draws: u64,
    /// Per-hop packet forwards in the network substrate.
    pub forwards: u64,
    /// Span-enter edges recorded.
    pub spans: u64,
    /// Structured trace entries recorded (events + span edges).
    pub trace_entries: u64,
    /// Hex rendering of the run's `RunDigest` — equality across two runs
    /// is the determinism check.
    pub digest: String,
    /// Windowed virtual-time activity (events / forwards / faults per
    /// bucket). Deterministic, but *not* part of the digest: series are a
    /// derived projection of streams the digest already covers.
    pub series: tussle_sim::RunSeries,
}

impl RunCost {
    /// Render as the cost appendix under an experiment table: the one-line
    /// counter summary, plus a second line of windowed activity series
    /// when any were recorded.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "*Cost: {} events, {} rng draws, {} forwards, {} spans, {} trace entries — digest `{}`.*",
            self.events, self.rng_draws, self.forwards, self.spans, self.trace_entries, self.digest
        );
        if !self.series.is_empty() {
            out.push_str(&format!(
                "\n*Activity: events {}; forwards {}; faults {}.*",
                self.series.events.render(),
                self.series.forwards.render(),
                self.series.faults.render()
            ));
        }
        out
    }
}

/// A full experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"E1"`).
    pub id: String,
    /// Paper section reproduced (e.g. `"V.A.1"`).
    pub section: String,
    /// The paper's narrated prediction, quoted or paraphrased.
    pub paper_claim: String,
    /// Measured results.
    pub table: Table,
    /// Did the measured shape match the prediction?
    pub shape_holds: bool,
    /// One-sentence summary of what was measured.
    pub summary: String,
    /// Cost appendix, attached by the experiment runner (experiments
    /// construct reports with `cost: None`; the runner fills it in from
    /// the observation scope).
    pub cost: Option<RunCost>,
    /// Per-stakeholder tussle scoreboard, attached by the runner like
    /// `cost`. Deterministic but digest-excluded (a derived projection of
    /// already-digested streams, like wall time and series).
    pub scoreboard: Option<crate::Scoreboard>,
}

impl ExperimentReport {
    /// Render the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {} — §{}\n\n**Paper claim.** {}\n\n**Measured.** {} **Shape holds: {}.**\n\n{}",
            self.id,
            self.section,
            self.paper_claim,
            self.summary,
            if self.shape_holds { "yes" } else { "NO" },
            self.table.to_markdown()
        );
        if let Some(cost) = &self.cost {
            out.push('\n');
            out.push_str(&cost.to_markdown());
            out.push('\n');
        }
        if let Some(scoreboard) = &self.scoreboard {
            out.push('\n');
            out.push_str(&scoreboard.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON (for `EXPERIMENTS.md` regeneration and tests).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports serialize")
    }
}

/// Aggregate statistics for one numeric table cell across swept seeds.
///
/// Built by the multi-seed sweep: for every `(row, column)` cell whose value
/// parses as a finite number, the minimum, maximum and median of that value
/// across all seeds. `samples` counts the seeds in which the cell was a
/// finite number; a cell that is numeric under some seeds but not others
/// will have `samples` below the sweep's seed count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Row label the cell sits in.
    pub row: String,
    /// Column name the cell sits in.
    pub column: String,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Median observed value (mean of the middle two for even counts).
    pub median: f64,
    /// Number of seeds in which this cell parsed as a finite number.
    pub samples: u64,
}

impl CellStats {
    /// Compute stats from raw observations. Non-finite values (a NaN cell
    /// prints as `NaN` and parses back) carry no ordering information and
    /// are dropped. Returns `None` when no finite samples remain.
    pub fn from_samples(row: &str, column: &str, values: Vec<f64>) -> Option<CellStats> {
        let mut values: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let median =
            if n % 2 == 1 { values[n / 2] } else { (values[n / 2 - 1] + values[n / 2]) / 2.0 };
        Some(CellStats {
            row: row.to_owned(),
            column: column.to_owned(),
            min: values[0],
            max: values[n - 1],
            median,
            samples: n as u64,
        })
    }
}

/// The first seed under which an experiment's shape failed to hold,
/// together with the full report from that run for diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirstFailure {
    /// The failing seed.
    pub seed: u64,
    /// The complete report produced under that seed.
    pub report: ExperimentReport,
}

/// Shape-stability summary for one experiment across all swept seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSweep {
    /// Experiment id (e.g. `"E1"`).
    pub id: String,
    /// Paper section reproduced.
    pub section: String,
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds under which the shape held.
    pub holds: u64,
    /// Per-cell spread statistics, in table order (row-major).
    pub cells: Vec<CellStats>,
    /// First failing seed with its full report, if any seed failed.
    pub first_failure: Option<FirstFailure>,
    /// Hex digest folding every per-seed `RunDigest` in seed order —
    /// the structural cross-thread determinism check: two sweeps of the
    /// same experiment agree on this iff every underlying run agreed.
    pub digest: String,
    /// Per-seed tussle scoreboards merged across the sweep. Deterministic
    /// but excluded from `digest` — lane addition commutes, so the merge
    /// is schedule-independent.
    pub scoreboard: Option<crate::Scoreboard>,
}

impl ExperimentSweep {
    /// Fraction of seeds under which the shape held, in `[0, 1]`.
    pub fn hold_rate(&self) -> f64 {
        if self.seeds == 0 {
            return 0.0;
        }
        self.holds as f64 / self.seeds as f64
    }

    /// Look up the stats of one cell.
    pub fn cell(&self, row: &str, column: &str) -> Option<&CellStats> {
        self.cells.iter().find(|c| c.row == row && c.column == column)
    }
}

/// Result of sweeping the experiment registry over many seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// First seed of the contiguous swept range.
    pub base_seed: u64,
    /// Number of seeds swept (`base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// Per-experiment summaries, in registry order.
    pub experiments: Vec<ExperimentSweep>,
}

impl SweepReport {
    /// Did every experiment hold its shape under every seed?
    pub fn all_hold(&self) -> bool {
        self.experiments.iter().all(|e| e.holds == e.seeds)
    }

    /// Render as GitHub-flavoured markdown: a hold-rate summary table, then
    /// a per-cell spread table for each experiment.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Seed sweep — {} experiments × {} seeds (base {})\n\n\
             | experiment | section | hold rate | first failing seed |\n\
             |---|---|---|---|\n",
            self.experiments.len(),
            self.seeds,
            self.base_seed,
        );
        for e in &self.experiments {
            out.push_str(&format!(
                "| {} | §{} | {}/{} | {} |\n",
                e.id,
                e.section,
                e.holds,
                e.seeds,
                e.first_failure.as_ref().map_or("—".to_owned(), |f| f.seed.to_string()),
            ));
        }
        for e in &self.experiments {
            out.push_str(&format!("\n## {} — cell spread across seeds\n\n", e.id));
            out.push_str("| row | column | min | median | max | samples |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for c in &e.cells {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} |\n",
                    c.row, c.column, c.min, c.median, c.max, c.samples,
                ));
            }
            if let Some(s) = &e.scoreboard {
                out.push('\n');
                out.push_str(&s.to_markdown());
                out.push('\n');
            }
            if let Some(f) = &e.first_failure {
                out.push_str(&format!(
                    "\nFirst failure (seed {}):\n\n{}",
                    f.seed,
                    f.report.to_markdown()
                ));
            }
        }
        out
    }

    /// Serialize to JSON. Output is byte-identical for identical sweep
    /// results, independent of how the sweep was scheduled.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports serialize")
    }
}

/// One experiment's sweep results at one chaos intensity: the usual
/// shape-stability summary plus panic and fault-activity tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityStats {
    /// Fault intensity in `[0, 1]` these runs were subjected to.
    pub intensity: f64,
    /// Runs (seeds) that panicked; panics surface as synthetic failing
    /// reports, so they also count against `sweep.holds`.
    pub panics: u64,
    /// Ambient fault activity summed across all seeds at this intensity.
    /// All-zero totals at a positive intensity mean the experiment never
    /// touched the network substrate — its margin is vacuous and the
    /// report says so rather than hiding it.
    pub faults: FaultStats,
    /// The per-seed shape-stability summary, identical in form to a plain
    /// seed sweep (at intensity 0 it must be byte-identical to one).
    pub sweep: ExperimentSweep,
}

/// Robustness margin for one experiment across the intensity grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginStats {
    /// Experiment id (e.g. `"E1"`).
    pub id: String,
    /// Paper section reproduced.
    pub section: String,
    /// The highest intensity at which the claim held for *every* seed,
    /// scanning the grid in ascending order and stopping at the first
    /// intensity that breaks — the margin is the contiguous-from-zero
    /// guarantee, not a lucky island further up. `None` when even the
    /// lowest intensity fails.
    pub margin: Option<f64>,
    /// Per-intensity results, in ascending intensity order.
    pub intensities: Vec<IntensityStats>,
}

impl MarginStats {
    /// Compute the robustness margin from per-intensity results (assumed
    /// ascending). See the field docs for the contiguity rule.
    pub fn margin_of(intensities: &[IntensityStats]) -> Option<f64> {
        let mut margin = None;
        for s in intensities {
            if s.panics == 0 && s.sweep.seeds > 0 && s.sweep.holds == s.sweep.seeds {
                margin = Some(s.intensity);
            } else {
                break;
            }
        }
        margin
    }

    /// Total fault events (drops + corruptions + rate limits) across the
    /// whole grid — zero means chaos never touched this experiment.
    pub fn total_faults(&self) -> u64 {
        self.intensities.iter().map(|s| s.faults.faults()).sum()
    }

    /// Total panicking runs across the whole grid.
    pub fn total_panics(&self) -> u64 {
        self.intensities.iter().map(|s| s.panics).sum()
    }
}

/// Result of a chaos campaign: the experiment registry swept over a grid
/// of fault intensities × seeds, with a robustness margin per experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// First seed of the contiguous swept range.
    pub base_seed: u64,
    /// Seeds per intensity (`base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// The intensity grid, ascending.
    pub intensities: Vec<f64>,
    /// Per-experiment margins, in registry order.
    pub experiments: Vec<MarginStats>,
}

impl ChaosReport {
    /// Look up one experiment's margin stats by id.
    pub fn experiment(&self, id: &str) -> Option<&MarginStats> {
        self.experiments.iter().find(|e| e.id == id)
    }

    /// Did any run anywhere in the campaign panic?
    pub fn any_panics(&self) -> bool {
        self.experiments.iter().any(|e| e.total_panics() > 0)
    }

    /// Render as GitHub-flavoured markdown: one margin summary row per
    /// experiment, with per-intensity hold counts and fault totals.
    pub fn to_markdown(&self) -> String {
        let grid = self.intensities.iter().map(|i| format!("{i}")).collect::<Vec<_>>().join(", ");
        let mut out = format!(
            "# Chaos campaign — {} experiments × {} intensities × {} seeds (base {})\n\n\
             Intensity grid: {}\n\n\
             | experiment | section | margin | holds by intensity | faults | panics |\n\
             |---|---|---|---|---|---|\n",
            self.experiments.len(),
            self.intensities.len(),
            self.seeds,
            self.base_seed,
            grid,
        );
        for e in &self.experiments {
            let holds = e
                .intensities
                .iter()
                .map(|s| format!("{}/{}", s.sweep.holds, s.sweep.seeds))
                .collect::<Vec<_>>()
                .join(" ");
            let faults = e.total_faults();
            let margin = match e.margin {
                Some(m) if faults == 0 && self.intensities.len() > 1 => format!("{m} (vacuous)"),
                Some(m) => format!("{m}"),
                None => "none".to_owned(),
            };
            out.push_str(&format!(
                "| {} | §{} | {} | {} | {} | {} |\n",
                e.id,
                e.section,
                margin,
                holds,
                faults,
                e.total_panics(),
            ));
        }
        out.push_str(
            "\nA *vacuous* margin means no ambient fault ever fired: the experiment does \
             not exercise the network substrate, so surviving the grid is trivial.\n",
        );
        out
    }

    /// Serialize to JSON. Output is byte-identical for identical campaign
    /// results, independent of how workers were scheduled.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("chaos reports serialize")
    }
}

/// One cell of the crash-injection recovery grid: an experiment crashed at
/// a seeded random engine-event index, restored from its latest
/// checkpoint, and compared byte-for-byte against the uninterrupted golden
/// run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCell {
    /// Experiment id (e.g. `"E9"`).
    pub id: String,
    /// The run's seed.
    pub seed: u64,
    /// Kill-point index within the cell's sweep (0-based).
    pub kill_point: u64,
    /// Engine-event cursor the injected crash fired at (`None` when the
    /// golden run scheduled no engine events, so there was nothing to
    /// crash — impossible for registry experiments, which all drive the
    /// engine, but synthetic entries may be event-free).
    pub kill_at: Option<u64>,
    /// Engine events the uninterrupted golden run processed.
    pub golden_events: u64,
    /// Snapshots the crashed run captured before dying.
    pub checkpoints: u64,
    /// Cursor of the checkpoint the resume verified against (0 = genesis:
    /// the crash landed before the first checkpoint).
    pub resumed_from: u64,
    /// Did the injected crash actually fire?
    pub crashed: bool,
    /// Did the resumed run reach the checkpoint byte-exactly (rng position,
    /// queue shape, trace digest, substrate digests all equal)?
    pub verified: bool,
    /// Is the resumed run's final report — cost digest, rng draw count and
    /// forwards included — equal to the golden's?
    pub identical: bool,
    /// First divergence or failure detail, empty when the cell recovered.
    pub detail: String,
}

impl RecoveryCell {
    /// Did this cell fully recover: crash fired (or was legitimately
    /// impossible), restore verified, and the stitched run matched the
    /// golden byte-for-byte?
    pub fn recovered(&self) -> bool {
        self.verified && self.identical && (self.crashed || self.kill_at.is_none())
    }
}

/// Result of the crash-injection recovery campaign: every selected
/// experiment killed at seeded random event indices across seeds, restored
/// from its latest checkpoint, and held to byte-exact equality with the
/// uninterrupted golden run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// First seed of the contiguous swept range.
    pub base_seed: u64,
    /// Seeds per experiment (`base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// Kill points per `(experiment, seed)` pair.
    pub kill_points: u64,
    /// Checkpoint interval (events) the crashed runs captured under.
    pub every: u64,
    /// Every grid cell, in `(experiment, seed, kill point)` order.
    pub cells: Vec<RecoveryCell>,
}

impl RecoveryReport {
    /// Did every cell recover?
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(RecoveryCell::recovered)
    }

    /// Cells that failed to recover.
    pub fn failures(&self) -> impl Iterator<Item = &RecoveryCell> {
        self.cells.iter().filter(|c| !c.recovered())
    }

    /// Render as GitHub-flavoured markdown: one row per cell, failures
    /// called out below the table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Recovery campaign — {} cells × checkpoint every {} events \
             ({} seeds from {}, {} kill points)\n\n\
             | experiment | seed | kill | golden events | checkpoints | resumed from | verified | identical |\n\
             |---|---|---|---|---|---|---|---|\n",
            self.cells.len(),
            self.every,
            self.seeds,
            self.base_seed,
            self.kill_points,
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                c.id,
                c.seed,
                c.kill_at.map_or("—".to_owned(), |k| k.to_string()),
                c.golden_events,
                c.checkpoints,
                c.resumed_from,
                if c.verified { "yes" } else { "NO" },
                if c.identical { "yes" } else { "NO" },
            ));
        }
        let failures: Vec<&RecoveryCell> = self.failures().collect();
        if failures.is_empty() {
            out.push_str("\nEvery crash-injected run restored to a byte-identical finish.\n");
        } else {
            out.push_str(&format!("\n{} cell(s) failed to recover:\n\n", failures.len()));
            for c in failures {
                out.push_str(&format!(
                    "- {} seed {} kill point {}: {}\n",
                    c.id,
                    c.seed,
                    c.kill_point,
                    if c.detail.is_empty() { "(no detail)" } else { &c.detail },
                ));
            }
        }
        out
    }

    /// Serialize to JSON. Output is byte-identical for identical campaign
    /// results, independent of how workers were scheduled.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("recovery reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("markup vs switching cost", &["markup", "switches"]);
        t.push_row("$0", &["0.05".into(), "12".into()]);
        t.push_row("$600", &["0.55".into(), "1".into()]);
        t
    }

    #[test]
    fn cells_are_addressable() {
        let t = table();
        assert_eq!(t.cell("$0", "markup"), Some("0.05"));
        assert_eq!(t.cell("$600", "switches"), Some("1"));
        assert_eq!(t.cell("$0", "nope"), None);
        assert_eq!(t.cell("zzz", "markup"), None);
        assert_eq!(t.cell_f64("$600", "markup"), Some(0.55));
    }

    #[test]
    fn dollar_cells_parse() {
        let mut t = Table::new("x", &["price"]);
        t.push_row("a", &["$42.5".into()]);
        assert_eq!(t.cell_f64("a", "price"), Some(42.5));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row("r", &["1".into()]);
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.contains("### markup vs switching cost"));
        assert!(md.contains("| $600 | 0.55 | 1 |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = ExperimentReport {
            id: "E1".into(),
            section: "V.A.1".into(),
            paper_claim: "lock-in sustains markup".into(),
            table: table(),
            shape_holds: true,
            summary: "markup rises with switching cost".into(),
            cost: None,
            scoreboard: None,
        };
        let json = r.to_json();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.to_markdown().contains("Shape holds: yes"));
    }

    #[test]
    fn cell_stats_order_statistics() {
        let s = CellStats::from_samples("r", "c", vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!((s.min, s.median, s.max, s.samples), (1.0, 2.0, 3.0, 3));
        // Even count: median is the mean of the middle two.
        let s = CellStats::from_samples("r", "c", vec![4.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert!(CellStats::from_samples("r", "c", vec![]).is_none());
        // Non-finite observations are dropped, not propagated.
        let s = CellStats::from_samples("r", "c", vec![f64::NAN, 1.0, f64::INFINITY]).unwrap();
        assert_eq!((s.min, s.max, s.samples), (1.0, 1.0, 1));
        assert!(CellStats::from_samples("r", "c", vec![f64::NAN]).is_none());
    }

    fn sweep() -> SweepReport {
        SweepReport {
            base_seed: 1,
            seeds: 4,
            experiments: vec![
                ExperimentSweep {
                    id: "E1".into(),
                    section: "V.A.1".into(),
                    seeds: 4,
                    holds: 4,
                    cells: vec![CellStats::from_samples("$0", "markup", vec![0.05, 0.06]).unwrap()],
                    first_failure: None,
                    digest: "0123456789abcdef".into(),
                    scoreboard: None,
                },
                ExperimentSweep {
                    id: "E2".into(),
                    section: "V.A.2".into(),
                    seeds: 4,
                    holds: 3,
                    cells: vec![],
                    first_failure: Some(FirstFailure {
                        seed: 3,
                        report: ExperimentReport {
                            id: "E2".into(),
                            section: "V.A.2".into(),
                            paper_claim: "x".into(),
                            table: table(),
                            shape_holds: false,
                            summary: "y".into(),
                            cost: None,
                            scoreboard: None,
                        },
                    }),
                    digest: "fedcba9876543210".into(),
                    scoreboard: None,
                },
            ],
        }
    }

    #[test]
    fn sweep_report_hold_rates_and_json_roundtrip() {
        let s = sweep();
        assert!(!s.all_hold());
        assert_eq!(s.experiments[0].hold_rate(), 1.0);
        assert_eq!(s.experiments[1].hold_rate(), 0.75);
        assert_eq!(s.experiments[0].cell("$0", "markup").unwrap().samples, 2);
        let back: SweepReport = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sweep_markdown_lists_failures() {
        let md = sweep().to_markdown();
        assert!(md.contains("| E1 | §V.A.1 | 4/4 | — |"));
        assert!(md.contains("| E2 | §V.A.2 | 3/4 | 3 |"));
        assert!(md.contains("First failure (seed 3):"));
        assert!(md.contains("| $0 | markup | 0.05 | 0.055 | 0.06 | 2 |"));
    }

    fn stats_at(
        intensity: f64,
        holds: u64,
        seeds: u64,
        panics: u64,
        faults: u64,
    ) -> IntensityStats {
        IntensityStats {
            intensity,
            panics,
            faults: FaultStats { passed: 10, dropped: faults, corrupted: 0, rate_limited: 0 },
            sweep: ExperimentSweep {
                id: "E1".into(),
                section: "V.A.1".into(),
                seeds,
                holds,
                cells: vec![],
                first_failure: None,
                digest: "0000000000000000".into(),
                scoreboard: None,
            },
        }
    }

    #[test]
    fn margin_is_contiguous_from_the_lowest_intensity() {
        // holds at 0 and 0.2, breaks at 0.4, holds again at 0.6: the island
        // at 0.6 must not count — margin is 0.2.
        let grid = vec![
            stats_at(0.0, 4, 4, 0, 0),
            stats_at(0.2, 4, 4, 0, 9),
            stats_at(0.4, 2, 4, 0, 30),
            stats_at(0.6, 4, 4, 0, 80),
        ];
        assert_eq!(MarginStats::margin_of(&grid), Some(0.2));
    }

    #[test]
    fn margin_none_when_the_floor_fails_and_full_when_nothing_breaks() {
        assert_eq!(MarginStats::margin_of(&[stats_at(0.0, 3, 4, 0, 0)]), None);
        let grid = vec![stats_at(0.0, 4, 4, 0, 0), stats_at(1.0, 4, 4, 0, 50)];
        assert_eq!(MarginStats::margin_of(&grid), Some(1.0));
        assert_eq!(MarginStats::margin_of(&[]), None);
    }

    #[test]
    fn panics_break_the_margin_even_if_holds_lie() {
        // A defensive rule: holds==seeds but panics>0 still breaks the chain.
        let grid = vec![stats_at(0.0, 4, 4, 0, 0), stats_at(0.2, 4, 4, 1, 5)];
        assert_eq!(MarginStats::margin_of(&grid), Some(0.0));
    }

    fn chaos() -> ChaosReport {
        let grid = vec![stats_at(0.0, 4, 4, 0, 0), stats_at(0.5, 3, 4, 1, 12)];
        let margin = MarginStats::margin_of(&grid);
        ChaosReport {
            base_seed: 1,
            seeds: 4,
            intensities: vec![0.0, 0.5],
            experiments: vec![
                MarginStats { id: "E1".into(), section: "V.A.1".into(), margin, intensities: grid },
                MarginStats {
                    id: "E2".into(),
                    section: "V.B".into(),
                    margin: Some(0.5),
                    intensities: vec![stats_at(0.0, 4, 4, 0, 0), stats_at(0.5, 4, 4, 0, 0)],
                },
            ],
        }
    }

    fn recovery_cell(
        id: &str,
        kill_at: Option<u64>,
        verified: bool,
        identical: bool,
    ) -> RecoveryCell {
        RecoveryCell {
            id: id.into(),
            seed: 1,
            kill_point: 0,
            kill_at,
            golden_events: 100,
            checkpoints: 2,
            resumed_from: 40,
            crashed: kill_at.is_some(),
            verified,
            identical,
            detail: if verified {
                String::new()
            } else {
                "restore diverged at rng_word_pos".into()
            },
        }
    }

    #[test]
    fn recovery_report_markdown_and_json_roundtrip() {
        let good = RecoveryReport {
            base_seed: 1,
            seeds: 1,
            kill_points: 1,
            every: 50,
            cells: vec![
                recovery_cell("E1", Some(73), true, true),
                recovery_cell("EX", None, true, true), // event-free synthetic: nothing to crash
            ],
        };
        assert!(good.all_recovered());
        assert_eq!(good.failures().count(), 0);
        let md = good.to_markdown();
        assert!(md.contains("| E1 | 1 | 73 | 100 | 2 | 40 | yes | yes |"));
        assert!(md.contains("| EX | 1 | — |"));
        assert!(md.contains("byte-identical finish"));
        let back: RecoveryReport = serde_json::from_str(&good.to_json()).unwrap();
        assert_eq!(back, good);

        let bad = RecoveryReport {
            cells: vec![recovery_cell("E9", Some(5), false, false)],
            ..good.clone()
        };
        assert!(!bad.all_recovered());
        let md = bad.to_markdown();
        assert!(md.contains("1 cell(s) failed to recover"));
        assert!(md.contains("E9 seed 1 kill point 0: restore diverged at rng_word_pos"));
        // A crash that never fired despite a chosen kill point is a failure
        // even if the reports happen to agree.
        let dud = RecoveryCell { crashed: false, ..recovery_cell("E2", Some(9), true, true) };
        assert!(!dud.recovered());
    }

    #[test]
    fn chaos_report_markdown_and_json_roundtrip() {
        let c = chaos();
        assert!(c.any_panics());
        assert_eq!(c.experiment("E1").unwrap().margin, Some(0.0));
        assert_eq!(c.experiment("E1").unwrap().total_faults(), 12);
        assert_eq!(c.experiment("E1").unwrap().total_panics(), 1);
        assert!(c.experiment("E3").is_none());
        let md = c.to_markdown();
        assert!(md.contains("| E1 | §V.A.1 | 0 | 4/4 3/4 | 12 | 1 |"));
        // E2 never saw a fault across a multi-point grid: flagged vacuous
        assert!(md.contains("| E2 | §V.B | 0.5 (vacuous) | 4/4 4/4 | 0 | 0 |"));
        assert!(md.contains("Intensity grid: 0, 0.5"));
        let back: ChaosReport = serde_json::from_str(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }
}

//! Auctions and mechanism design.
//!
//! §II.B: "William Vickrey, in a seminal work, outlined the beginnings of a
//! theory to generatively design and prescribe actor networks that exhibit
//! a desirable apriori set of properties ... rules of a game that
//! guaranteed tussle-free actor networks for a given class of problem
//! revolving around revealing truthful information."
//!
//! The second-price (Vickrey) auction is the canonical instance: truthful
//! bidding is a dominant strategy, so the information sub-game is
//! tussle-free. The first-price auction is the contrast case where bidders
//! have every incentive to shade, i.e. to keep tussling over information.

use serde::{Deserialize, Serialize};

/// Which payment rule the sealed-bid auction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuctionRule {
    /// Winner pays their own bid.
    FirstPrice,
    /// Winner pays the second-highest bid — Vickrey's truthful mechanism.
    SecondPrice,
}

/// Result of a sealed-bid auction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// Index of the winning bidder.
    pub winner: usize,
    /// The price the winner pays.
    pub price: f64,
}

/// Run a sealed-bid auction over non-negative bids. Ties break toward the
/// lowest index (deterministic). Returns `None` for an empty bid set.
pub fn run_auction(rule: AuctionRule, bids: &[f64]) -> Option<AuctionOutcome> {
    if bids.is_empty() {
        return None;
    }
    let winner = bids
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN bid").then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)?;
    let price = match rule {
        AuctionRule::FirstPrice => bids[winner],
        AuctionRule::SecondPrice => {
            let mut rest: Vec<f64> =
                bids.iter().enumerate().filter(|(i, _)| *i != winner).map(|(_, b)| *b).collect();
            rest.sort_by(|a, b| b.partial_cmp(a).expect("NaN bid"));
            rest.first().copied().unwrap_or(0.0)
        }
    };
    Some(AuctionOutcome { winner, price })
}

/// Bidder `i`'s utility if the auction resolves as `outcome` and their
/// private value is `value`: winners get value minus price, losers zero.
pub fn bidder_utility(outcome: &AuctionOutcome, bidder: usize, value: f64) -> f64 {
    if outcome.winner == bidder {
        value - outcome.price
    } else {
        0.0
    }
}

/// Check Vickrey truthfulness for one bidder: given everyone else's bids,
/// does bidding the true `value` do at least as well as bidding `alt`?
///
/// Returns `(truthful utility, deviant utility)` so tests and property
/// tests can assert weak dominance.
pub fn truthful_vs_deviation(others: &[f64], bidder_value: f64, alt_bid: f64) -> (f64, f64) {
    let mut truthful_bids = others.to_vec();
    truthful_bids.push(bidder_value);
    let me = truthful_bids.len() - 1;
    let truthful = run_auction(AuctionRule::SecondPrice, &truthful_bids)
        .map(|o| bidder_utility(&o, me, bidder_value))
        .unwrap_or(0.0);

    let mut alt_bids = others.to_vec();
    alt_bids.push(alt_bid);
    let deviant = run_auction(AuctionRule::SecondPrice, &alt_bids)
        .map(|o| bidder_utility(&o, me, bidder_value))
        .unwrap_or(0.0);
    (truthful, deviant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_price_charges_second_bid() {
        let o = run_auction(AuctionRule::SecondPrice, &[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(o.winner, 1);
        assert_eq!(o.price, 20.0);
    }

    #[test]
    fn first_price_charges_own_bid() {
        let o = run_auction(AuctionRule::FirstPrice, &[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(o.winner, 1);
        assert_eq!(o.price, 30.0);
    }

    #[test]
    fn single_bidder_pays_zero_in_vickrey() {
        let o = run_auction(AuctionRule::SecondPrice, &[42.0]).unwrap();
        assert_eq!(o.winner, 0);
        assert_eq!(o.price, 0.0);
    }

    #[test]
    fn empty_auction_is_none() {
        assert!(run_auction(AuctionRule::SecondPrice, &[]).is_none());
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let o = run_auction(AuctionRule::SecondPrice, &[5.0, 5.0]).unwrap();
        assert_eq!(o.winner, 0);
        assert_eq!(o.price, 5.0);
    }

    #[test]
    fn truthfulness_beats_overbidding_and_underbidding() {
        let others = [15.0, 25.0];
        let value = 20.0;
        // underbid: lose an auction you'd want to... actually with others'
        // max 25 you lose either way; utility equal (0).
        let (t, d) = truthful_vs_deviation(&others, value, 10.0);
        assert!(t >= d);
        // overbid past 25: you win but pay 25 > 20 — negative utility.
        let (t, d) = truthful_vs_deviation(&others, value, 30.0);
        assert!(t >= d);
        assert!(d < 0.0, "winning above value must hurt: {d}");
        // value above others: truthful wins at second price
        let (t, d) = truthful_vs_deviation(&[5.0, 8.0], 20.0, 6.0);
        assert!(t > d, "shading below the second bid forfeits surplus");
        assert_eq!(t, 12.0);
    }

    #[test]
    fn first_price_rewards_shading() {
        // The contrast case: in a first-price auction bidding your true
        // value guarantees zero surplus, so shading strictly helps.
        let others = [10.0f64];
        let value = 20.0;
        let truthful = {
            let o = run_auction(AuctionRule::FirstPrice, &[others[0], value]).unwrap();
            bidder_utility(&o, 1, value)
        };
        let shaded = {
            let o = run_auction(AuctionRule::FirstPrice, &[others[0], 15.0]).unwrap();
            bidder_utility(&o, 1, value)
        };
        assert_eq!(truthful, 0.0);
        assert_eq!(shaded, 5.0);
        assert!(shaded > truthful, "first price keeps the information tussle alive");
    }

    #[test]
    fn utility_of_losers_is_zero() {
        let o = run_auction(AuctionRule::SecondPrice, &[1.0, 9.0]).unwrap();
        assert_eq!(bidder_utility(&o, 0, 1.0), 0.0);
    }
}

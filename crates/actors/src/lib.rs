//! # tussle-actors — the actor-network model of run-time tussle
//!
//! §II.A–II.C ground the paper's argument in sociology of technology:
//! Latour's "Technology is Society made Durable", Callon's actor networks,
//! and Christensen's innovator's dilemma. This crate turns those citations
//! into a small dynamical model:
//!
//! * [`network`] — actors (human and nonhuman) with stances on issues,
//!   alignment edges, a *durability* metric (how locked-in the network is,
//!   with technology actors weighted as the anchors Latour describes) and
//!   a *tussle energy* metric (unresolved conflicts of interest).
//! * [`churn`] — the §II.C mechanism of change: "the new applications
//!   bring new actors to the actor network, which keeps the actor network
//!   from becoming frozen, which in turn permits change to occur." New
//!   entrants arrive with fresh stances and re-inject tension; alignment
//!   dynamics slowly resolve it.
//! * [`freezing`] — the §II.C prediction: "When new applications and user
//!   groups cease to come to the Internet ... this will imply a freezing
//!   of the actor network, and a freezing of the Internet."
//! * [`disruption`] — Christensen's escape hatch: disruptors grow
//!   *outside* the incumbent value chain and overthrow it only after
//!   building their own durability.
//!
//! ## Example
//!
//! ```
//! use tussle_actors::{ActorKind, ActorNetwork};
//!
//! let mut network = ActorNetwork::new(1);
//! let users = network.add_actor(ActorKind::Human, "users", vec![1.0]);
//! let protocol = network.add_actor(ActorKind::Technology, "ip", vec![-0.5]);
//! network.align(users, protocol, 0.8);
//! assert!(network.tussle_energy() > 0.0);
//! for _ in 0..100 { network.relax(0.1); }
//! assert!(network.tussle_energy() < 0.01, "aligned actors resolve their differences");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod disruption;
pub mod freezing;
pub mod network;

pub use churn::ChurnProcess;
pub use disruption::{Disruption, DisruptionPhase};
pub use freezing::FreezeDetector;
pub use network::{Actor, ActorId, ActorKind, ActorNetwork};

//! Forwarding fast-path bench: packets/sec on a ~1k-node scale topology.
//!
//! Measures the hot loop the tussle scenarios live in — FIB-routed
//! longest-prefix forwarding and loose-source-routed forwarding (§V.A.4)
//! across a three-tier ISP fabric from `Network::scale_topology`. The
//! source-routed workload runs twice, with the generation-stamped route
//! cache enabled and force-disabled, and asserts the cached arm is at
//! least 3× faster: the cache's whole reason to exist, pinned in CI.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench net
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tussle_experiments::scale::{Routing, ScaleWorkload};

const SEED: u64 = 2002;
const NODES: usize = 1000;
const DEGREE: usize = 3;
const PACKETS: usize = 256;

/// Best-of-N wall-clock, in nanoseconds.
fn best_of(n: usize, mut run: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one run")
}

fn bench_net(c: &mut Criterion) {
    let mut fib = ScaleWorkload::build(SEED, NODES, DEGREE, PACKETS, Routing::Fib);
    let mut cached = ScaleWorkload::build(SEED, NODES, DEGREE, PACKETS, Routing::SourceRouted);
    let mut uncached = ScaleWorkload::build(SEED, NODES, DEGREE, PACKETS, Routing::SourceRouted);
    uncached.topo.net.set_route_caching(false);

    // The cache must be invisible in results before it is allowed to be
    // visible in throughput.
    let want = cached.run(SEED);
    assert_eq!(want, uncached.run(SEED), "cached and uncached outcomes diverge");
    assert_eq!(want.delivered, PACKETS, "scale workload must deliver everything");

    let mut g = c.benchmark_group("net");
    g.sample_size(10);
    g.bench_function("fib_routed_1k", |b| b.iter(|| black_box(fib.run(SEED))));
    g.bench_function("source_routed_cached_1k", |b| b.iter(|| black_box(cached.run(SEED))));
    g.bench_function("source_routed_uncached_1k", |b| b.iter(|| black_box(uncached.run(SEED))));
    g.finish();

    // Acceptance gate: the generation-stamped next-hop cache buys at least
    // 3× on source-routed traffic at this scale. Both arms are warm (the
    // criterion samples above), best-of-5 to shed scheduler noise.
    let cached_ns = best_of(5, || {
        black_box(cached.run(SEED));
    });
    let uncached_ns = best_of(5, || {
        black_box(uncached.run(SEED));
    });
    let speedup = uncached_ns as f64 / cached_ns as f64;
    let pps = PACKETS as f64 / (cached_ns as f64 / 1e9);
    println!(
        "source-routed forwarding: cached {cached_ns} ns, uncached {uncached_ns} ns, \
         speedup {speedup:.1}x, cached throughput {pps:.0} pkts/s"
    );
    assert!(speedup >= 3.0, "route cache must be >= 3x on source-routed traffic ({speedup:.1}x)");
}

criterion_group!(benches, bench_net);
criterion_main!(benches);

//! Currency as integer micro-units.
//!
//! Floating-point money invites conservation bugs; the ledger's invariants
//! are only checkable with exact arithmetic. One unit of `Money` is one
//! micro-dollar; `Money::from_dollars(1)` is 1_000_000.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An exact amount of currency in micro-units. May be negative (debts,
/// losses).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(pub i64);

impl Money {
    /// Zero.
    pub const ZERO: Money = Money(0);

    /// Whole dollars.
    pub const fn from_dollars(d: i64) -> Money {
        Money(d * 1_000_000)
    }

    /// Raw micro-units.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Fractional dollars (for display and elasticity math only).
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Is the amount strictly positive?
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Is the amount strictly negative?
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Multiply by a non-negative scalar with rounding toward zero.
    pub fn scale(self, factor: f64) -> Money {
        Money((self.0 as f64 * factor) as i64)
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("money overflow"))
    }
}
impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("money underflow"))
    }
}
impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}
impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}
impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}
impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0.checked_mul(rhs).expect("money overflow"))
    }
}
impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 1_000_000, (abs % 1_000_000) / 10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Money::from_dollars(3).micros(), 3_000_000);
        assert_eq!(Money::from_dollars(-2).as_dollars_f64(), -2.0);
        assert!(Money(1).is_positive());
        assert!(Money(-1).is_negative());
        assert!(!Money::ZERO.is_positive() && !Money::ZERO.is_negative());
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_dollars(5);
        let b = Money::from_dollars(2);
        assert_eq!(a + b, Money::from_dollars(7));
        assert_eq!(a - b, Money::from_dollars(3));
        assert_eq!(-a, Money::from_dollars(-5));
        assert_eq!(b * 3, Money::from_dollars(6));
        let mut c = a;
        c += b;
        c -= Money::from_dollars(1);
        assert_eq!(c, Money::from_dollars(6));
    }

    #[test]
    fn scale_and_extremes() {
        assert_eq!(Money::from_dollars(10).scale(0.5), Money::from_dollars(5));
        assert_eq!(Money::from_dollars(10).scale(0.0), Money::ZERO);
        assert_eq!(Money(3).max(Money(7)), Money(7));
        assert_eq!(Money(3).min(Money(7)), Money(3));
    }

    #[test]
    fn sum_iterator() {
        let total: Money = [Money(1), Money(2), Money(3)].into_iter().sum();
        assert_eq!(total, Money(6));
    }

    #[test]
    fn display_format() {
        assert_eq!(Money::from_dollars(12).to_string(), "$12.00");
        assert_eq!(Money(-1_500_000).to_string(), "-$1.50");
        assert_eq!(Money(250_000).to_string(), "$0.25");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = Money(i64::MAX) + Money(1);
    }
}

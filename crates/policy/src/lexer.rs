//! Tokenizer for the policy expression language.

use serde::{Deserialize, Serialize};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// Attribute or keyword-like identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Quoted string literal.
    Str(String),
    /// `true`.
    True,
    /// `false`.
    False,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub message: String,
}

/// Tokenize an expression source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError { at: i, message: "expected '&&'".into() });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError { at: i, message: "expected '||'".into() });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    return Err(LexError { at: i, message: "expected '=='".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { at: i, message: "unterminated string".into() });
                }
                out.push(Token::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' | '-' => {
                let start = i;
                let mut j = i + if c == '-' { 1 } else { 0 };
                if c == '-' && !bytes.get(j).map(|b| b.is_ascii_digit()).unwrap_or(false) {
                    return Err(LexError { at: i, message: "expected digits after '-'".into() });
                }
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &src[start..j];
                let n = text
                    .parse::<i64>()
                    .map_err(|e| LexError { at: start, message: format!("bad integer: {e}") })?;
                out.push(Token::Int(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'.')
                {
                    j += 1;
                }
                let word = &src[start..j];
                out.push(match word {
                    "in" => Token::In,
                    "true" => Token::True,
                    "false" => Token::False,
                    _ => Token::Ident(word.to_owned()),
                });
                i = j;
            }
            other => {
                return Err(LexError { at: i, message: format!("unexpected character '{other}'") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_typical_condition() {
        let toks = lex(r#"action == "connect" && dst_port in [80, 443]"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("action".into()),
                Token::EqEq,
                Token::Str("connect".into()),
                Token::AndAnd,
                Token::Ident("dst_port".into()),
                Token::In,
                Token::LBracket,
                Token::Int(80),
                Token::Comma,
                Token::Int(443),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_all_operators() {
        let toks = lex("a != b || !c < 1 <= 2 > 3 >= 4 ( ) true false").unwrap();
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Bang));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::True));
        assert!(toks.contains(&Token::False));
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(lex("-42").unwrap(), vec![Token::Int(-42)]);
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(lex("identity.role").unwrap(), vec![Token::Ident("identity.role".into())]);
    }

    #[test]
    fn error_positions() {
        assert_eq!(lex("a & b").unwrap_err().at, 2);
        assert_eq!(lex("a = b").unwrap_err().at, 2);
        assert!(lex("\"oops").unwrap_err().message.contains("unterminated"));
        assert!(lex("a $ b").is_err());
        assert!(lex("- x").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(lex("   ").unwrap(), vec![]);
    }
}

//! Causal diagnosis over observed runs.
//!
//! Two questions an experiment author asks when a run surprises them:
//!
//! 1. **"Why did this event run?"** — [`explain`] replays one experiment
//!    under a Profile-mode observation scope and walks the captured
//!    provenance DAG from a chosen event back to the root injection that
//!    ultimately caused it (`tussle-cli explain`).
//! 2. **"Where did these two runs first part ways?"** — [`diff`] replays
//!    two configurations (seed and/or ambient fault intensity may differ)
//!    and bisects their per-entry prefix-digest streams to the first
//!    diverging trace entry, then prints the aligned context and the
//!    causal ancestry of the divergent event on each side
//!    (`tussle-cli diff`).
//!
//! The bisection leans on an invariant of the rolling digest: once two
//! streams diverge at entry *i*, every later prefix digest differs too
//! (FNV-1a is a rolling fold of everything before it, so re-collision
//! after divergence is as unlikely as a 64-bit hash collision). That makes
//! "is the prefix still equal at index *i*?" a monotone predicate, and the
//! first divergence binary-searchable in `O(log n)` digest probes instead
//! of an `O(n)` entry-by-entry walk.

use crate::registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tussle_sim::fault;
use tussle_sim::{EventId, ProvenanceNode, RunRecord};

/// Why a causal query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalityError {
    /// The id names no experiment in the registry.
    UnknownExperiment(String),
    /// The run dispatched no engine events, so there is nothing to explain.
    NoEvents(String),
    /// The requested event id was never dispatched in this run.
    UnknownEvent {
        /// Experiment id.
        id: String,
        /// The event that was asked about.
        event: EventId,
        /// How many events the run actually dispatched.
        events: u64,
    },
}

impl core::fmt::Display for CausalityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CausalityError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (the registry has E1..=E17)")
            }
            CausalityError::NoEvents(id) => {
                write!(f, "{id} dispatched no engine events at this seed; nothing to explain")
            }
            CausalityError::UnknownEvent { id, event, events } => {
                write!(
                    f,
                    "{id} never dispatched event {event}: the run has {events} events \
                     (e0..=e{})",
                    events.saturating_sub(1)
                )
            }
        }
    }
}

impl std::error::Error for CausalityError {}

/// Parse an event id as typed on a command line: `e12`, `E12` or `12`.
pub fn parse_event_id(s: &str) -> Result<EventId, String> {
    let digits = s.strip_prefix('e').or_else(|| s.strip_prefix('E')).unwrap_or(s);
    digits
        .parse::<u64>()
        .map(EventId)
        .map_err(|_| format!("bad event id '{s}': expected a number like 7 or e7"))
}

fn resolve(id: &str) -> Result<crate::ExperimentEntry, CausalityError> {
    registry()
        .into_iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(id))
        .ok_or_else(|| CausalityError::UnknownExperiment(id.to_owned()))
}

/// Replay one experiment under Profile observation at an ambient fault
/// intensity, returning the full capture. The guard scopes the intensity
/// to exactly this run and resets the fault tally, mirroring the chaos
/// campaign's harness.
fn run_side(entry: crate::ExperimentEntry, seed: u64, intensity: f64) -> RunRecord {
    let (name, run) = entry;
    let guard = fault::set_ambient_intensity(intensity);
    let _ = fault::take_ambient_stats();
    let (_, record) = crate::run_profiled(name, run, seed);
    let _ = fault::take_ambient_stats();
    drop(guard);
    record
}

/// One rung of a causal ancestry chain, oldest (root) first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AncestryHop {
    /// The event at this rung.
    pub event: EventId,
    /// Who scheduled it (`None` for root injections).
    pub parent: Option<EventId>,
    /// Virtual time at which it dispatched, in microseconds.
    pub time_micros: u64,
    /// The trace span open when it was scheduled, if any.
    pub span: Option<String>,
    /// Topic of the first trace entry the event emitted, if any.
    pub topic: Option<String>,
    /// Message of that entry.
    pub message: Option<String>,
}

impl AncestryHop {
    fn from_node(node: &ProvenanceNode, first_entry: Option<(&str, &str)>) -> Self {
        AncestryHop {
            event: node.id,
            parent: node.parent,
            time_micros: node.time.as_micros(),
            span: node.span.clone(),
            topic: first_entry.map(|(t, _)| t.to_owned()),
            message: first_entry.map(|(_, m)| m.to_owned()),
        }
    }

    fn render(&self) -> String {
        let mut line = format!("{} @{}us", self.event, self.time_micros);
        if let Some(span) = &self.span {
            line.push_str(&format!(" (scheduled inside span `{span}`)"));
        }
        if let Some(topic) = &self.topic {
            line.push_str(&format!(" — {topic}"));
            if let Some(msg) = &self.message {
                if !msg.is_empty() {
                    line.push_str(&format!(": {msg}"));
                }
            }
        }
        line
    }
}

/// The answer to "why did this event run?": the causal chain from the root
/// injection down to the asked-about event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Explanation {
    /// Experiment id.
    pub id: String,
    /// The replayed seed.
    pub seed: u64,
    /// The event that was asked about.
    pub target: EventId,
    /// The chain, root first, ending at `target`.
    pub hops: Vec<AncestryHop>,
    /// Whether the chain reaches an actual root (`parent: None`). `false`
    /// means an ancestor was evicted from the bounded provenance ring.
    pub complete: bool,
    /// Total events the run dispatched.
    pub events: u64,
}

impl Explanation {
    /// Render as a human-readable indented chain.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# {} explain {} (seed {}) — {} hop{} to {}\n",
            self.id,
            self.target,
            self.seed,
            self.hops.len(),
            if self.hops.len() == 1 { "" } else { "s" },
            if self.complete { "root" } else { "ring horizon (ancestors evicted)" },
        );
        for (depth, hop) in self.hops.iter().enumerate() {
            if depth == 0 {
                out.push_str(&format!("  {}\n", hop.render()));
            } else {
                out.push_str(&format!("  {}└─ {}\n", "   ".repeat(depth - 1), hop.render()));
            }
        }
        out
    }
}

/// Provenance nodes keyed by event id.
type NodeIndex<'a> = BTreeMap<u64, &'a ProvenanceNode>;
/// Each event's first emitted `(topic, message)` trace entry.
type FirstEntryIndex<'a> = BTreeMap<u64, (&'a str, &'a str)>;

/// Index the provenance capture by event id, and find each event's first
/// emitted trace entry for labeling.
fn index_run(record: &RunRecord) -> (NodeIndex<'_>, FirstEntryIndex<'_>) {
    let nodes: NodeIndex<'_> = record.provenance.iter().map(|n| (n.id.0, n)).collect();
    let mut first_entry: FirstEntryIndex<'_> = BTreeMap::new();
    for e in &record.ring {
        if let Some(ev) = e.event {
            first_entry.entry(ev.0).or_insert((e.topic.as_str(), e.message.as_str()));
        }
    }
    (nodes, first_entry)
}

/// Walk the ancestry of `target` in a captured run, root first. Returns the
/// hops and whether the walk reached a true root. Ancestor ids strictly
/// decrease (`parent.0 < id.0` by construction), so the walk terminates in
/// at most `nodes.len()` steps even on a corrupted capture.
fn ancestry_of(
    nodes: &BTreeMap<u64, &ProvenanceNode>,
    first_entry: &BTreeMap<u64, (&str, &str)>,
    target: EventId,
) -> Option<(Vec<AncestryHop>, bool)> {
    let mut hops = Vec::new();
    let mut cursor = *nodes.get(&target.0)?;
    let mut complete = false;
    for _ in 0..=nodes.len() {
        hops.push(AncestryHop::from_node(cursor, first_entry.get(&cursor.id.0).copied()));
        match cursor.parent {
            None => {
                complete = true;
                break;
            }
            Some(parent) => match nodes.get(&parent.0) {
                Some(node) => cursor = node,
                // Parent evicted from the bounded ring: the chain is cut.
                None => break,
            },
        }
    }
    hops.reverse();
    Some((hops, complete))
}

/// Replay `id` at `seed` and explain why `event` ran: the causal chain of
/// scheduling decisions from a root injection down to it.
pub fn explain(id: &str, seed: u64, event: EventId) -> Result<Explanation, CausalityError> {
    let entry = resolve(id)?;
    let name = entry.0.to_owned();
    let record = run_side(entry, seed, 0.0);
    if record.events == 0 {
        return Err(CausalityError::NoEvents(name));
    }
    let (nodes, first_entry) = index_run(&record);
    let (hops, complete) = ancestry_of(&nodes, &first_entry, event)
        .ok_or(CausalityError::UnknownEvent { id: name.clone(), event, events: record.events })?;
    Ok(Explanation { id: name, seed, target: event, hops, complete, events: record.events })
}

/// Configuration for [`diff`]: one experiment, two run configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffConfig {
    /// Experiment id.
    pub id: String,
    /// Seed of side A.
    pub seed_a: u64,
    /// Seed of side B.
    pub seed_b: u64,
    /// Ambient fault intensity of side A, in `[0, 1]`.
    pub intensity_a: f64,
    /// Ambient fault intensity of side B, in `[0, 1]`.
    pub intensity_b: f64,
    /// Worker-thread cap (`Some(1)` runs the sides sequentially; anything
    /// else runs them on two scoped threads). The output is byte-identical
    /// either way — observation and ambient intensity are thread-local.
    pub threads: Option<usize>,
}

/// How many aligned entries of context precede the divergent entry.
const DIFF_CONTEXT: usize = 3;

/// One side of a divergence: the first divergent entry with its preceding
/// context and the causal ancestry of the event that emitted it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffSide {
    /// The first divergent entry, rendered (`None` if this side's stream
    /// ended before the divergence index — the other side has extra
    /// entries).
    pub entry: Option<String>,
    /// Up to [`DIFF_CONTEXT`] entries immediately before the divergence.
    pub context: Vec<String>,
    /// Causal chain (root first) of the event that emitted the divergent
    /// entry; empty when the entry was ambient (no dispatching event).
    pub ancestry: Vec<String>,
}

/// Where two runs' trace streams first part ways.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the first diverging absorbed trace entry (0-based, in
    /// absorb order).
    pub index: u64,
    /// Digest comparisons the bisection spent finding it.
    pub probes: u64,
    /// Side A at the divergence.
    pub a: DiffSide,
    /// Side B at the divergence.
    pub b: DiffSide,
}

/// The full report of a two-run comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Experiment id.
    pub id: String,
    /// Seed of side A.
    pub seed_a: u64,
    /// Seed of side B.
    pub seed_b: u64,
    /// Ambient fault intensity of side A.
    pub intensity_a: f64,
    /// Ambient fault intensity of side B.
    pub intensity_b: f64,
    /// Run digest of side A (hex).
    pub digest_a: String,
    /// Run digest of side B (hex).
    pub digest_b: String,
    /// Trace entries absorbed by side A.
    pub entries_a: u64,
    /// Trace entries absorbed by side B.
    pub entries_b: u64,
    /// `true` when the runs did identical observable work (equal digests).
    pub identical: bool,
    /// The first trace-stream divergence, when there is one.
    pub divergence: Option<Divergence>,
    /// `true` when the trace streams agree entry-for-entry but the digests
    /// still differ — untraced work (e.g. rng draw counts) diverged after
    /// the last common entry.
    pub tail_divergence: bool,
}

impl DiffReport {
    /// Render as a human-readable text block.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# {} diff — seed {} vs {} (intensity {} vs {})\n  a: {} entries, digest {}\n  \
             b: {} entries, digest {}\n",
            self.id,
            self.seed_a,
            self.seed_b,
            self.intensity_a,
            self.intensity_b,
            self.entries_a,
            self.digest_a,
            self.entries_b,
            self.digest_b,
        );
        if self.identical {
            out.push_str("  identical: the runs did the same observable work\n");
            return out;
        }
        match &self.divergence {
            Some(d) => {
                out.push_str(&format!(
                    "  first divergence at entry {} ({} digest probes)\n",
                    d.index, d.probes
                ));
                for (label, side) in [("a", &d.a), ("b", &d.b)] {
                    for c in &side.context {
                        out.push_str(&format!("  {label}| {c}\n"));
                    }
                    match &side.entry {
                        Some(e) => out.push_str(&format!("  {label}> {e}\n")),
                        None => out.push_str(&format!("  {label}> (stream ended here)\n")),
                    }
                    if !side.ancestry.is_empty() {
                        out.push_str(&format!("  {label}  caused by:\n"));
                        for hop in &side.ancestry {
                            out.push_str(&format!("  {label}    {hop}\n"));
                        }
                    }
                }
            }
            None => out.push_str(
                "  trace streams agree entry-for-entry; untraced work (counters) \
                 diverged after the last common entry\n",
            ),
        }
        out
    }
}

/// Find the first index where the two prefix-digest streams differ, by
/// binary search. Returns `None` when they agree over the shorter stream's
/// whole length. The second value counts digest comparisons.
///
/// Correctness rests on divergence being *sticky*: each prefix digest folds
/// the whole stream before it, so once the streams differ every later
/// prefix differs too (up to 64-bit hash collision), making "diverged at
/// index i" monotone in `i`.
fn first_divergence(a: &[u64], b: &[u64]) -> (Option<u64>, u64) {
    let n = a.len().min(b.len());
    if n == 0 {
        return (None, 0);
    }
    let mut probes = 1;
    if a[n - 1] == b[n - 1] {
        return (None, probes);
    }
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if a[mid] == b[mid] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (Some(lo as u64), probes)
}

/// Build one side's view of the divergence at absorbed-entry `index`.
fn side_at(record: &RunRecord, index: u64) -> DiffSide {
    // The capture ring is bounded; absorbed-entry index i lives at ring
    // slot i - ring_dropped when it is still retained.
    let slot = |i: u64| -> Option<&tussle_sim::TraceEntry> {
        i.checked_sub(record.ring_dropped).and_then(|s| record.ring.get(s as usize))
    };
    let entry = slot(index);
    let context = (index.saturating_sub(DIFF_CONTEXT as u64)..index)
        .filter_map(slot)
        .map(|e| e.to_line())
        .collect();
    let (nodes, first_entry) = index_run(record);
    let ancestry = entry
        .and_then(|e| e.event)
        .and_then(|ev| ancestry_of(&nodes, &first_entry, ev))
        .map(|(hops, _)| hops.iter().map(AncestryHop::render).collect())
        .unwrap_or_default();
    DiffSide { entry: entry.map(|e| e.to_line()), context, ancestry }
}

/// Run both sides of a [`DiffConfig`] and locate their first divergence.
pub fn diff(config: &DiffConfig) -> Result<DiffReport, CausalityError> {
    let entry = resolve(&config.id)?;
    let name = entry.0.to_owned();
    let sequential = config.threads == Some(1);
    let (ra, rb) = if sequential {
        (
            run_side(entry, config.seed_a, config.intensity_a),
            run_side(entry, config.seed_b, config.intensity_b),
        )
    } else {
        std::thread::scope(|scope| {
            let ha = scope.spawn(|| run_side(entry, config.seed_a, config.intensity_a));
            let hb = scope.spawn(|| run_side(entry, config.seed_b, config.intensity_b));
            (
                ha.join().expect("diff side A does not panic"),
                hb.join().expect("diff side B does not panic"),
            )
        })
    };

    let identical = ra.digest == rb.digest;
    let (within, probes) = first_divergence(&ra.prefix_digests, &rb.prefix_digests);
    // Agreement over the shared prefix with unequal lengths means one
    // stream simply continued: the divergence is the first extra entry.
    let index = within.or_else(|| {
        (ra.trace_entries != rb.trace_entries).then(|| ra.trace_entries.min(rb.trace_entries))
    });
    let divergence = (!identical)
        .then(|| {
            index.map(|i| Divergence { index: i, probes, a: side_at(&ra, i), b: side_at(&rb, i) })
        })
        .flatten();
    let tail_divergence = !identical && divergence.is_none();

    Ok(DiffReport {
        id: name,
        seed_a: config.seed_a,
        seed_b: config.seed_b,
        intensity_a: config.intensity_a,
        intensity_b: config.intensity_b,
        digest_a: ra.digest.to_hex(),
        digest_b: rb.digest.to_hex(),
        entries_a: ra.trace_entries,
        entries_b: rb.trace_entries,
        identical,
        divergence,
        tail_divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ids_parse_in_both_spellings() {
        assert_eq!(parse_event_id("7").unwrap(), EventId(7));
        assert_eq!(parse_event_id("e7").unwrap(), EventId(7));
        assert_eq!(parse_event_id("E7").unwrap(), EventId(7));
        assert!(parse_event_id("seven").is_err());
        assert!(parse_event_id("e").is_err());
    }

    #[test]
    fn first_divergence_bisects_in_log_probes() {
        let a: Vec<u64> = (0..1000).collect();
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), (None, 1));
        for at in [0usize, 1, 499, 998, 999] {
            let mut c = b.clone();
            for v in c.iter_mut().skip(at) {
                *v ^= 0xDEAD_BEEF; // sticky divergence from `at` on
            }
            let (idx, probes) = first_divergence(&a, &c);
            assert_eq!(idx, Some(at as u64));
            assert!(probes <= 11, "1000 entries need ≤ 1 + ceil(log2 1000) probes, got {probes}");
        }
        b.push(42);
        assert_eq!(first_divergence(&a, &b).0, None, "shared prefix agrees");
        assert_eq!(first_divergence(&[], &[]), (None, 0));
    }

    #[test]
    fn explain_walks_to_a_root_injection() {
        // E9's ladder replay chains rungs causally; the last event of the
        // monopoly ladder must trace back to a root injection.
        let record = run_side(("E9", crate::e09_encryption::run), 2002, 0.0);
        assert!(record.events >= 4, "E9 replays through the engine");
        let last = record.provenance.last().expect("provenance captured").id;
        let exp = explain("E9", 2002, last).unwrap();
        assert!(exp.complete, "chain reaches a root");
        assert_eq!(exp.hops.last().unwrap().event, last);
        assert_eq!(exp.hops[0].parent, None, "root first");
        assert!(exp.hops.len() >= 2, "the ladder escalated at least once");
        let text = exp.to_text();
        assert!(text.contains("hops to root"), "{text}");
        assert!(text.contains("└─"), "{text}");
    }

    #[test]
    fn explain_rejects_unknown_targets() {
        assert!(matches!(explain("E99", 1, EventId(0)), Err(CausalityError::UnknownExperiment(_))));
        let err = explain("E9", 2002, EventId(9_999)).unwrap_err();
        match err {
            CausalityError::UnknownEvent { ref id, event, events } => {
                assert_eq!(id, "E9");
                assert_eq!(event, EventId(9_999));
                assert!(events >= 4);
            }
            other => panic!("expected UnknownEvent, got {other:?}"),
        }
        assert!(err.to_string().contains("e9999"), "{err}");
        // Every registry experiment now schedules engine events, so
        // formerly loop-driven ids are explainable too.
        let exp = explain("E14", 2002, EventId(0)).unwrap();
        assert!(exp.events > 0);
    }

    fn e9_diff(seed_a: u64, seed_b: u64, threads: Option<usize>) -> DiffReport {
        diff(&DiffConfig {
            id: "E9".into(),
            seed_a,
            seed_b,
            intensity_a: 0.0,
            intensity_b: 0.0,
            threads,
        })
        .unwrap()
    }

    #[test]
    fn equal_seeds_diff_identical() {
        let report = e9_diff(2002, 2002, Some(1));
        assert!(report.identical);
        assert_eq!(report.digest_a, report.digest_b);
        assert!(report.divergence.is_none());
        assert!(!report.tail_divergence);
        assert!(report.to_text().contains("identical"), "{}", report.to_text());
    }

    #[test]
    fn seed_change_pinpoints_the_first_diverging_entry() {
        let report = e9_diff(2002, 2003, Some(1));
        assert!(!report.identical);
        let d = report.divergence.as_ref().expect("seeded lags diverge the trace stream");
        // The divergence is localized: everything before `index` is shared.
        assert!(d.index < report.entries_a.min(report.entries_b));
        assert!(d.probes >= 1);
        let (ea, eb) = (d.a.entry.as_ref().unwrap(), d.b.entry.as_ref().unwrap());
        assert_ne!(ea, eb, "the divergent entries differ textually");
        let text = report.to_text();
        assert!(text.contains("first divergence at entry"), "{text}");
    }

    #[test]
    fn diff_is_byte_identical_across_thread_counts() {
        let one = e9_diff(2002, 2003, Some(1));
        let two = e9_diff(2002, 2003, Some(2));
        let eight = e9_diff(2002, 2003, Some(8));
        assert_eq!(one, two);
        assert_eq!(one, eight);
        assert_eq!(serde_json::to_string(&one).unwrap(), serde_json::to_string(&eight).unwrap());
    }

    #[test]
    fn intensity_change_diverges_network_experiments() {
        let report = diff(&DiffConfig {
            id: "E4".into(),
            seed_a: 7,
            seed_b: 7,
            intensity_a: 0.0,
            intensity_b: 0.8,
            threads: Some(1),
        })
        .unwrap();
        assert!(!report.identical, "ambient faults change E4's observable work");
    }

    #[test]
    fn divergent_entries_carry_their_causal_ancestry() {
        let report = e9_diff(2002, 2003, Some(1));
        let d = report.divergence.expect("divergence found");
        // E9's trace entries are emitted inside engine events, so at least
        // one side's divergent entry should explain itself causally.
        assert!(
            !d.a.ancestry.is_empty() || !d.b.ancestry.is_empty(),
            "no ancestry on either side: a={:?} b={:?}",
            d.a.ancestry,
            d.b.ancestry
        );
    }
}

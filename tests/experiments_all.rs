//! Workspace integration: the full evaluation runs, holds its shapes, is
//! deterministic, and serializes.

use tussle::experiments::{run_all, run_sweep, SweepConfig};

#[test]
fn every_shape_holds_on_the_default_seed() {
    let reports = run_all(2002);
    assert_eq!(reports.len(), 17);
    for r in &reports {
        assert!(r.shape_holds, "{} failed: {}", r.id, r.summary);
    }
}

#[test]
fn shapes_hold_across_seeds() {
    // The claims are qualitative; they must not hinge on a lucky seed.
    // Sweep the whole registry over 32 consecutive seeds and demand a
    // 100% hold rate, with the first failing seed's report in the message.
    let cfg = SweepConfig { seeds: 32, base_seed: 1, only: None, threads: None };
    let sweep = run_sweep(&cfg).expect("sweep runs");
    assert_eq!(sweep.experiments.len(), 17);
    for e in &sweep.experiments {
        assert_eq!(e.seeds, 32, "{} swept the wrong seed count", e.id);
        assert!(
            e.holds == e.seeds,
            "{} held on only {}/{} seeds; first failure (seed {}):\n{}",
            e.id,
            e.holds,
            e.seeds,
            e.first_failure.as_ref().map_or(0, |f| f.seed),
            e.first_failure.as_ref().map_or_else(String::new, |f| f.report.to_markdown()),
        );
    }
    assert!(sweep.all_hold());
    // Most tables are numeric and must yield spread stats (E10's factorial
    // table is boolean/ratio-valued, so not all 17 do).
    let with_stats = sweep.experiments.iter().filter(|e| !e.cells.is_empty()).count();
    assert!(with_stats >= 14, "only {with_stats}/17 experiments produced cell stats");
}

#[test]
fn sweep_json_is_stable_across_thread_counts() {
    // The aggregate must not depend on how the parallel phase was
    // scheduled: byte-identical output at 1, 3 and 8 worker threads.
    let json_per_threads: Vec<String> = [1usize, 3, 8]
        .into_iter()
        .map(|threads| {
            let cfg = SweepConfig { seeds: 4, base_seed: 2002, only: None, threads: Some(threads) };
            run_sweep(&cfg).expect("sweep runs").to_json()
        })
        .collect();
    assert_eq!(json_per_threads[0], json_per_threads[1]);
    assert_eq!(json_per_threads[1], json_per_threads[2]);
}

#[test]
fn reports_are_deterministic() {
    let a = run_all(99);
    let b = run_all(99);
    assert_eq!(a, b);
}

#[test]
fn reports_roundtrip_through_json() {
    for r in run_all(2002) {
        let json = r.to_json();
        let back: tussle::core::ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

#[test]
fn ids_and_sections_are_well_formed() {
    let reports = run_all(2002);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.id, format!("E{}", i + 1));
        assert!(!r.section.is_empty());
        assert!(!r.paper_claim.is_empty());
        assert!(!r.table.columns.is_empty());
        let md = r.to_markdown();
        assert!(md.contains(&r.id));
        assert!(md.contains("Shape holds: yes"));
    }
}

//! Equivalence oracle for the forwarding fast path.
//!
//! The route cache's contract is invisibility: with caching enabled or
//! force-disabled, the same workload over the same topology — including
//! mid-run chaos link flaps and lossy links that consume rng draws — must
//! produce byte-identical `DeliveryReport`s, the same number of rng draws
//! and forwards, and the same run digest. Any divergence means a cache
//! entry outlived a topology change.

use proptest::prelude::*;
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{DeliveryReport, LinkId, Network, NodeId};
use tussle_sim::obs::{self, ObsMode};
use tussle_sim::{FaultInjector, SimRng, SimTime};

/// One randomized scenario: a connected random topology, lossy links, a
/// send schedule with interleaved link flaps.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    /// Extra edges beyond the spanning chain, as (a, b) raw draws.
    edges: Vec<(u8, u8)>,
    /// (link draw, loss percent) — installs a lossy fault injector.
    lossy: Vec<(u8, u8)>,
    /// (src draw, dst draw, waypoint draw, extra hop?) per send.
    sends: Vec<(u8, u8, u8, bool)>,
    /// (send index to fire before, link draw, up) link flaps.
    flaps: Vec<(u8, u8, bool)>,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        4usize..16,
        proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        proptest::collection::vec((any::<u8>(), 1u8..50), 0..4),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 1..24),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..12),
        any::<u64>(),
    )
        .prop_map(|(nodes, edges, lossy, sends, flaps, seed)| Scenario {
            nodes,
            edges,
            lossy,
            sends,
            flaps,
            seed,
        })
}

fn build(s: &Scenario) -> Network {
    let mut net = Network::new();
    let ids: Vec<NodeId> = (0..s.nodes).map(|_| net.add_router(Asn(1))).collect();
    for (i, &id) in ids.iter().enumerate() {
        let addr = Address::in_prefix(
            Prefix::new(((i as u32) + 1) << 16, 16),
            1,
            AddressOrigin::ProviderIndependent,
        );
        net.node_mut(id).bind(addr);
    }
    // Spanning chain keeps the graph mostly connected; extra edges add the
    // path diversity that makes cached BFS answers interesting.
    for w in ids.windows(2) {
        net.connect(w[0], w[1], SimTime::from_millis(1), 1_000_000_000);
    }
    for &(a, b) in &s.edges {
        let (a, b) = (ids[a as usize % s.nodes], ids[b as usize % s.nodes]);
        if a != b && net.link_between(a, b).is_none() {
            net.connect(a, b, SimTime::from_millis(1), 1_000_000_000);
        }
    }
    let n_links = net.links().len();
    for &(l, pct) in &s.lossy {
        let lid = LinkId((l as usize % n_links) as u32);
        net.link_mut(lid).faults = FaultInjector::lossy(pct as f64 / 100.0, 0.0);
    }
    net
}

fn addr_of(net: &Network, id: NodeId) -> Address {
    net.node(id).primary_address().expect("every node is addressed")
}

/// Run the scenario's send schedule, flipping links mid-run as scripted.
/// Returns everything an observer can see about the run.
fn run(s: &Scenario, cached: bool) -> (Vec<DeliveryReport>, u64, u64, String) {
    let mut net = build(s);
    net.set_route_caching(cached);
    let n_links = net.links().len();
    let guard = obs::begin(ObsMode::Cost);
    let mut rng = SimRng::seed_from_u64(s.seed);
    let mut reports = Vec::with_capacity(s.sends.len());
    for (i, &(src, dst, way, extra)) in s.sends.iter().enumerate() {
        for &(at, link, up) in &s.flaps {
            if at as usize % s.sends.len() == i {
                net.set_link_up(LinkId((link as usize % n_links) as u32), up);
            }
        }
        let src = NodeId((src as usize % s.nodes) as u32);
        let dst = NodeId((dst as usize % s.nodes) as u32);
        let way = NodeId((way as usize % s.nodes) as u32);
        // Loose source route ending at the destination: every hop of every
        // segment goes through `next_hop_toward`, the cached path.
        let route = if extra { vec![way, dst] } else { vec![dst] };
        let pkt =
            Packet::new(addr_of(&net, src), addr_of(&net, dst), Protocol::Tcp, 1, ports::HTTP)
                .with_source_route(route);
        reports.push(net.send(src, pkt, &mut rng));
    }
    let rec = guard.finish();
    (reports, rec.rng_draws, rec.forwards, format!("{:?}", rec.digest))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cached and uncached runs are indistinguishable, byte for byte.
    #[test]
    fn cache_is_invisible_to_any_observer(s in scenario()) {
        let (reports_c, draws_c, fwd_c, digest_c) = run(&s, true);
        let (reports_u, draws_u, fwd_u, digest_u) = run(&s, false);
        prop_assert_eq!(reports_c, reports_u);
        prop_assert_eq!(draws_c, draws_u);
        prop_assert_eq!(fwd_c, fwd_u);
        prop_assert_eq!(digest_c, digest_u);
    }
}

//! Event representation and deterministic ordering.

use crate::engine::Ctx;
use crate::time::SimTime;
use core::cmp::Ordering;
use serde::{Deserialize, Serialize};

/// An event handler: runs against the world and an engine context that can
/// schedule further events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>)>;

/// The identity of a scheduled event: the engine's global sequence number,
/// assigned at schedule time. Ids are unique within a run and *strictly
/// increase* in schedule order, which gives the provenance layer its key
/// structural invariant for free: an event's parent was necessarily
/// scheduled before it, so `parent.0 < id.0` always, and every ancestry
/// walk strictly decreases — the causal graph is acyclic by construction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventId(pub u64);

impl core::fmt::Display for EventId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A scheduled event. Ordering is `(time, seq)` — the sequence number makes
/// the order *total*, so simultaneous events always run in the order they
/// were scheduled, which is what makes whole runs reproducible. Each entry
/// also carries its causal origin: the event whose handler scheduled it
/// (`None` for root injections scheduled from outside the engine) and the
/// innermost engine-trace span open at schedule time.
pub(crate) struct Scheduled<W> {
    pub time: SimTime,
    pub seq: u64,
    pub f: EventFn<W>,
    pub parent: Option<EventId>,
    pub span: Option<String>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: u64, seq: u64) -> Scheduled<()> {
        Scheduled {
            time: SimTime::from_micros(time),
            seq,
            f: Box::new(|_, _| {}),
            parent: None,
            span: None,
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(ev(30, 0));
        h.push(ev(10, 1));
        h.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|e| e.time.as_micros()).collect();
        assert_eq!(order, [10, 20, 30]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut h = BinaryHeap::new();
        h.push(ev(5, 2));
        h.push(ev(5, 0));
        h.push(ev(5, 1));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|e| e.seq).collect();
        assert_eq!(order, [0, 1, 2]);
    }

    #[test]
    fn event_ids_render_compactly() {
        assert_eq!(EventId(42).to_string(), "e42");
        assert!(EventId(1) < EventId(2));
    }
}

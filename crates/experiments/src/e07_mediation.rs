//! E7 — Third-party mediation (§V.B).
//!
//! Paper claim: "most users do not trust many of the parties they actually
//! want to talk to ... we depend on third parties to mediate and enhance
//! the assurance that things are going to go right. Credit card companies
//! limit our liability to $50 ... there should be explicit ability to
//! select what third parties are used to mediate an interaction."
//!
//! Measured: a buyer population transacting with sellers of whom a fraction
//! are fraudulent, under no mediation, escrow mediation, reputation
//! mediation — and a final condition where buyers may *choose* between two
//! escrow providers with different fees, to show choice disciplining the
//! mediator market itself.

use tussle_core::{ExperimentReport, Table};
use tussle_sim::SimRng;
use tussle_trust::mediator::{run_transaction, Mediator, ReputationBook, TransactionSetup};

/// Mediation regimes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Caveat emptor.
    Unmediated,
    /// Single escrow provider.
    Escrow,
    /// Reputation service.
    Reputation,
    /// Two escrow providers; buyers pick the cheaper.
    EscrowChoice,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::Unmediated => "no mediation",
            Regime::Escrow => "escrow ($50 cap)",
            Regime::Reputation => "reputation service",
            Regime::EscrowChoice => "escrow with choice",
        }
    }
}

/// Aggregate outcome of one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct MediationOutcome {
    /// Total buyer net across all transactions (micro-currency).
    pub buyer_net_total: i64,
    /// Transactions actually attempted.
    pub attempted: usize,
    /// Fraudulent completions.
    pub frauds: usize,
    /// Total fees collected by mediators.
    pub fees: i64,
}

const FRAUD_RATE: f64 = 0.25;
const N_TRANSACTIONS: usize = 400;

fn setup() -> TransactionSetup {
    TransactionSetup { value: 1_500_000, price: 1_000_000, fraud_probability: 0.0 }
}

/// Run one regime.
pub fn run_regime(regime: Regime, seed: u64) -> MediationOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e07");
    let mut book = ReputationBook::new();
    let mut total = 0i64;
    let mut attempted = 0usize;
    let mut frauds = 0usize;
    let mut fees = 0i64;

    // each "seller slot" is drawn fraudulent or honest; sellers recur so
    // reputation can learn
    let n_sellers = 40u64;
    let fraudulent: Vec<bool> = (0..n_sellers).map(|_| rng.chance(FRAUD_RATE)).collect();

    let cheap_escrow = Mediator::Escrow { liability_cap: 50_000, fee: 10_000 };
    let dear_escrow = Mediator::Escrow { liability_cap: 50_000, fee: 60_000 };
    let reputation = Mediator::Reputation { min_score: 0.4, fee: 5_000 };

    for i in 0..N_TRANSACTIONS {
        let seller = (i as u64) % n_sellers;
        let mut s = setup();
        s.fraud_probability = if fraudulent[seller as usize] { 0.9 } else { 0.02 };
        let mediator = match regime {
            Regime::Unmediated => &Mediator::None,
            Regime::Escrow => &cheap_escrow,
            Regime::Reputation => &reputation,
            // buyers compare fee schedules and pick the cheaper — "explicit
            // ability to select what third parties are used"
            Regime::EscrowChoice => {
                if fee_of(&cheap_escrow) <= fee_of(&dear_escrow) {
                    &cheap_escrow
                } else {
                    &dear_escrow
                }
            }
        };
        let o = run_transaction(s, mediator, seller, &mut book, &mut rng);
        total += o.buyer_net;
        fees += o.mediator_fee;
        if o.attempted {
            attempted += 1;
        }
        if o.defrauded {
            frauds += 1;
        }
    }
    MediationOutcome { buyer_net_total: total, attempted, frauds, fees }
}

fn fee_of(m: &Mediator) -> i64 {
    match m {
        Mediator::Escrow { fee, .. } | Mediator::Reputation { fee, .. } => *fee,
        Mediator::None => 0,
    }
}

/// Run E7 and produce the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut table = Table::new(
        "Commerce among strangers (400 transactions, 25% of sellers fraudulent)",
        &["buyer net ($)", "attempted", "frauds", "mediator fees ($)"],
    );
    let regimes = [Regime::Unmediated, Regime::Escrow, Regime::Reputation, Regime::EscrowChoice];
    let mut outcomes = Vec::new();
    for r in regimes {
        let o = run_regime(r, seed);
        table.push_row(
            r.label(),
            &[
                format!("{:.2}", o.buyer_net_total as f64 / 1e6),
                o.attempted.to_string(),
                o.frauds.to_string(),
                format!("{:.2}", o.fees as f64 / 1e6),
            ],
        );
        outcomes.push(o);
    }
    let (raw, escrow, rep, choice) = (&outcomes[0], &outcomes[1], &outcomes[2], &outcomes[3]);
    let shape_holds = escrow.buyer_net_total > raw.buyer_net_total
        && rep.buyer_net_total > raw.buyer_net_total
        && rep.frauds < raw.frauds
        && choice.buyer_net_total >= escrow.buyer_net_total
        && choice.fees <= escrow.fees;

    ExperimentReport {
        id: "E7".into(),
        section: "V.B".into(),
        paper_claim: "Third-party mediation (liability caps, reputation) makes commerce among \
                      mutually distrusting parties viable; parties must be able to choose their \
                      mediators, which disciplines mediator pricing."
            .into(),
        summary: format!(
            "buyer net: unmediated ${:.0}, escrow ${:.0}, reputation ${:.0} (frauds {} → {}); \
             with mediator choice buyers do no worse and fees do not rise.",
            raw.buyer_net_total as f64 / 1e6,
            escrow.buyer_net_total as f64 / 1e6,
            rep.buyer_net_total as f64 / 1e6,
            raw.frauds,
            rep.frauds,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mediation_beats_caveat_emptor() {
        let raw = run_regime(Regime::Unmediated, 1);
        let escrow = run_regime(Regime::Escrow, 1);
        assert!(escrow.buyer_net_total > raw.buyer_net_total);
    }

    #[test]
    fn reputation_reduces_fraud_volume() {
        let raw = run_regime(Regime::Unmediated, 2);
        let rep = run_regime(Regime::Reputation, 2);
        assert!(rep.frauds < raw.frauds, "rep {} vs raw {}", rep.frauds, raw.frauds);
        // and it refuses some transactions outright
        assert!(rep.attempted < raw.attempted);
    }

    #[test]
    fn choice_picks_the_cheap_mediator() {
        let one = run_regime(Regime::Escrow, 3);
        let choice = run_regime(Regime::EscrowChoice, 3);
        assert_eq!(one.fees, choice.fees, "buyers route around the expensive escrow");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! E14 — Game-theoretic substrate validation (§II.B).
//!
//! Paper claims exercised:
//! 1. Vickrey mechanisms make the information sub-game tussle-free
//!    (truth-telling weakly dominates); first-price auctions keep it alive
//!    (shading strictly pays).
//! 2. TCP congestion compliance rests on social pressure, and "should this
//!    balance change, the technical design of the system will do nothing to
//!    bound or guide the resulting shift" — compliance tips from near-total
//!    to near-zero as the pressure term crosses the bandwidth-grab payoff.
//! 3. The zero-sum ↔ coordination spectrum: learning dynamics find the
//!    mixed equilibrium of a purely conflicting game and the payoff-
//!    dominant outcome of a coordination game.

use tussle_core::{ExperimentReport, Table};
use tussle_game::auction::truthful_vs_deviation;
use tussle_game::repeated::CongestionGame;
use tussle_game::solve::is_nash;
use tussle_game::{FictitiousPlay, Game};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// Vickrey truthfulness over random profiles drawn from `rng`: count of
/// profitable deviations found (paper prediction: zero).
pub fn vickrey_deviations(trials: usize, rng: &mut SimRng) -> usize {
    let mut violations = 0;
    for _ in 0..trials {
        let n_others = rng.range(1..5usize);
        let others: Vec<f64> = (0..n_others).map(|_| rng.range(0.0..100.0)).collect();
        let value = rng.range(0.0..100.0);
        let alt = rng.range(0.0..150.0);
        let (truthful, deviant) = truthful_vs_deviation(&others, value, alt);
        if deviant > truthful + 1e-9 {
            violations += 1;
        }
    }
    violations
}

/// [`vickrey_deviations`] with a self-seeded stream (the unit-test entry).
pub fn vickrey_violations(trials: usize, seed: u64) -> usize {
    let mut rng = SimRng::seed_from_u64(seed).fork("e14-vickrey");
    vickrey_deviations(trials, &mut rng)
}

/// Final defector share of the congestion game at a given social-pressure
/// level.
pub fn compliance_at(pressure: f64) -> f64 {
    CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: pressure }
        .evolve(0.1, 60_000)
}

/// Fictitious play's distance from the known mixed equilibrium of matching
/// pennies.
pub fn matching_pennies_error(rounds: u64) -> f64 {
    let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
    let mut fp = FictitiousPlay::new(g);
    fp.run(rounds);
    (fp.row_empirical()[0] - 0.5).abs().max((fp.col_empirical()[0] - 0.5).abs())
}

/// The social-pressure sweep for the congestion game.
const PRESSURES: [f64; 4] = [0.0, 0.3, 0.8, 1.5];
/// Vickrey profiles sampled.
const TRIALS: usize = 2_000;

/// World for the engine-driven replay: the three sub-games' results.
#[derive(Default)]
struct GameWorld {
    violations: Option<usize>,
    defection: Vec<f64>,
    fp_error: Option<f64>,
    coord: Option<(f64, bool)>,
}

/// One congestion-game pressure level as a span carried across two engine
/// events (enter → evolve → exit after a seeded settling period), chaining
/// to the next level; the last level hands off to the learning sub-game.
fn pressure_level(w: &mut GameWorld, ctx: &mut Ctx<GameWorld>, idx: usize) {
    let p = PRESSURES[idx];
    ctx.span_enter("e14.congestion", Some("user"), &[("pressure", &p.to_string())]);
    let d = compliance_at(p);
    w.defection.push(d);
    let settle = SimTime::from_micros(ctx.rng.range(100..5_000u64));
    ctx.trace_fields(
        "e14.evolved",
        Some("user"),
        &[("defectors", &format!("{d:.3}")), ("lag_us", &settle.as_micros().to_string())],
        format!("pressure {p}: defector share settles at {d:.3}"),
    );
    ctx.schedule_in(settle, move |w2: &mut GameWorld, ctx2| {
        ctx2.span_exit(&[("defectors", &format!("{:.3}", w2.defection[idx]))]);
        if idx + 1 < PRESSURES.len() {
            pressure_level(w2, ctx2, idx + 1);
        } else {
            learning_phase(w2, ctx2);
        }
    });
}

/// The learning-dynamics sub-game: matching pennies, then the coordination
/// game, each under its own span on the virtual timeline.
fn learning_phase(w: &mut GameWorld, ctx: &mut Ctx<GameWorld>) {
    ctx.span_enter("e14.learning", Some("society"), &[("game", "matching-pennies")]);
    w.fp_error = Some(matching_pennies_error(20_000));
    let settle = SimTime::from_micros(ctx.rng.range(100..5_000u64));
    ctx.schedule_in(settle, move |w2: &mut GameWorld, ctx2| {
        ctx2.span_exit(&[("error", &format!("{:.3}", w2.fp_error.unwrap_or(1.0)))]);
        ctx2.span_enter("e14.learning", Some("society"), &[("game", "coordination")]);
        let g = Game::coordination(vec![1.0, 3.0]);
        let mut fp = FictitiousPlay::new(g.clone());
        fp.run(5_000);
        let x = fp.row_empirical();
        let y = fp.col_empirical();
        let nash = is_nash(&g, &x, &y, 0.05);
        w2.coord = Some((x[1], nash));
        let settle2 = SimTime::from_micros(ctx2.rng.range(100..5_000u64));
        ctx2.schedule_in(settle2, move |w3: &mut GameWorld, ctx3| {
            ctx3.span_exit(&[("dominant_mass", &format!("{:.3}", w3.coord.map_or(0.0, |c| c.0)))]);
            ctx3.trace("e14.settled", "all three sub-games settled");
        });
    });
}

/// Run E14 and produce the report. The three sub-games run as one
/// sequential causal chain — Vickrey auctions, the congestion-compliance
/// sweep, then learning dynamics — so the run's flamegraph
/// (`tests/golden/E14.collapsed`) shows the spans in phase order with real
/// virtual-time widths.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(GameWorld::default(), seed);
    // The Vickrey phase is the chain's root injection.
    eng.schedule_at(SimTime::ZERO, move |w: &mut GameWorld, ctx| {
        ctx.span_enter("e14.vickrey", Some("provider"), &[("trials", &TRIALS.to_string())]);
        let v = vickrey_deviations(TRIALS, ctx.rng);
        w.violations = Some(v);
        let settle = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e14.audited",
            Some("provider"),
            &[("violations", &v.to_string()), ("lag_us", &settle.as_micros().to_string())],
            format!("{v} profitable deviations in {TRIALS} sampled profiles"),
        );
        ctx.schedule_in(settle, move |w2: &mut GameWorld, ctx2| {
            ctx2.span_exit(&[("violations", &w2.violations.unwrap_or(0).to_string())]);
            pressure_level(w2, ctx2, 0);
        });
    });
    eng.run_to_completion();

    let trials = TRIALS;
    let violations = eng.world.violations.expect("the Vickrey phase settles");
    let pressures = PRESSURES;
    let defection = eng.world.defection;
    assert_eq!(defection.len(), pressures.len(), "every pressure level settles");
    let fp_error = eng.world.fp_error.expect("matching pennies settles");
    let coord = eng.world.coord.expect("the coordination game settles");

    let mut table = Table::new("Game-theoretic substrate checks", &["metric", "value"]);
    table.push_row(
        "Vickrey profitable deviations",
        &["violations / trials".into(), format!("{violations} / {trials}")],
    );
    for (p, d) in pressures.iter().zip(&defection) {
        table.push_row(
            &format!("congestion defection @ pressure {p}"),
            &["final defector share".into(), format!("{d:.3}")],
        );
    }
    table.push_row(
        "matching pennies (fictitious play)",
        &["|empirical - equilibrium|".into(), format!("{fp_error:.3}")],
    );
    table.push_row(
        "coordination game",
        &["mass on payoff-dominant action".into(), format!("{:.3} (nash: {})", coord.0, coord.1)],
    );

    let shape_holds = violations == 0
        && defection[0] > 0.9 // no pressure: compliance collapses
        && defection[3] < 0.05 // strong pressure: compliance holds
        && defection.windows(2).all(|w| w[1] <= w[0] + 1e-9) // monotone
        && fp_error < 0.02
        && coord.0 > 0.9
        && coord.1;

    ExperimentReport {
        id: "E14".into(),
        section: "II.B".into(),
        paper_claim: "Vickrey's mechanism makes truthful revelation dominant (a tussle-free \
                      information sub-game); TCP congestion compliance survives only while \
                      social pressure outweighs the defection payoff, with nothing technical \
                      bounding the shift; learning dynamics recover equilibria across the \
                      zero-sum/coordination spectrum."
            .into(),
        summary: format!(
            "{violations} profitable Vickrey deviations in {trials} trials; congestion \
             defection falls {:.2} → {:.2} as social pressure rises 0 → 1.5; fictitious play \
             reaches the matching-pennies mix within {:.3}.",
            defection[0], defection[3], fp_error,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vickrey_is_truthful_everywhere_we_look() {
        assert_eq!(vickrey_violations(500, 3), 0);
    }

    #[test]
    fn congestion_compliance_tips_with_pressure() {
        assert!(compliance_at(0.0) > 0.9);
        assert!(compliance_at(1.5) < 0.05);
    }

    #[test]
    fn fictitious_play_converges() {
        assert!(matching_pennies_error(20_000) < 0.02);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! Crash-injection recovery oracle: resume must equal never-crashed.
//!
//! For every `(experiment, seed, kill point)` cell the harness runs the
//! experiment three times, all three on the same index space — the
//! engine-event cursor (every experiment drives the engine, so the cursor
//! is a universal kill surface):
//!
//! 1. **Golden** — uninterrupted, under a cost observation scope. Its
//!    final report (cost digest, rng draw count, forwards included) is the
//!    ground truth, and its engine-event count bounds the kill cursor.
//! 2. **Crash** — under a checkpoint scope capturing every `every` events,
//!    with an injected panic at a seeded random engine-event index. The
//!    PR 2 panic isolation ([`crate::run_isolated`]) catches the crash;
//!    the checkpoint guard is held *outside* that boundary, so the
//!    snapshots survive the death.
//! 3. **Resume** — a successor process's replay: the run restarts from its
//!    deterministic inputs and, when the event cursor reaches the latest
//!    checkpoint's, the scope verifies every recorded field byte-exactly
//!    (rng seed + stream position, queue shape, trace digest, substrate
//!    digests) and then fires the engine's restore hook, invalidating the
//!    route memo exactly as a real restore would. The resumed report must
//!    equal the golden byte-for-byte.
//!
//! The resume is the oracle's active probe of the cache-invisibility
//! invariant (DESIGN.md §7): it bumps the network's topology generation
//! mid-run where the golden never did, so any cached state that leaks
//! into behavior shows up as `identical == false`. An event-free golden
//! (possible only for synthetic entries injected by tests — every
//! registry experiment schedules events) short-circuits to a vacuous
//! no-kill cell without the extra replay the old observable-step design
//! needed.
//!
//! ## Determinism
//!
//! Same execution model as the chaos campaign: workers steal cells from a
//! shared atomic index, results land in fixed slots, and the report is
//! byte-identical across thread counts. Checkpoint scopes are thread-local,
//! so job placement cannot leak snapshots between cells.

use crate::{registry, ExperimentEntry};
use std::sync::atomic::{AtomicUsize, Ordering};
use tussle_core::report::{RecoveryCell, RecoveryReport};
use tussle_core::ExperimentReport;
use tussle_sim::checkpoint::{self, CheckpointConfig, CheckpointPolicy, Snapshot};
use tussle_sim::{RestoreError, SimRng};

/// What to subject to crash injection.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Seeds per experiment (`base_seed..base_seed + seeds`). Must be
    /// nonzero.
    pub seeds: u64,
    /// First seed of the contiguous range.
    pub base_seed: u64,
    /// Kill points per `(experiment, seed)` pair. Must be nonzero; each is
    /// an independent seeded-random event index in the golden run's range.
    pub kill_points: u64,
    /// Checkpoint interval in events. Must be ≥ 1.
    pub every: u64,
    /// Restrict to these experiment ids; `None` runs the whole registry.
    pub only: Option<Vec<String>>,
    /// Worker-thread cap; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            seeds: 2,
            base_seed: 1,
            kill_points: 1,
            every: 500,
            only: None,
            threads: None,
        }
    }
}

/// Why a recovery campaign could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// `seeds` was zero.
    NoSeeds,
    /// `kill_points` was zero.
    NoKillPoints,
    /// `every` was zero.
    ZeroInterval,
    /// An id in `only` names no experiment in the registry.
    UnknownExperiment(String),
    /// A snapshot failed validation (wrong version or broken self-digest).
    BadSnapshot(RestoreError),
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::NoSeeds => f.write_str("recovery campaign needs at least one seed"),
            RecoveryError::NoKillPoints => {
                f.write_str("recovery campaign needs at least one kill point")
            }
            RecoveryError::ZeroInterval => {
                f.write_str("checkpoint interval must be at least 1 event")
            }
            RecoveryError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (the registry has E1..=E17)")
            }
            RecoveryError::BadSnapshot(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Run the recovery campaign over the experiment registry (or the `only`
/// subset). See the module docs for the execution model.
pub fn run_recovery(config: &RecoveryConfig) -> Result<RecoveryReport, RecoveryError> {
    let full = registry();
    let selected: Vec<ExperimentEntry> = match &config.only {
        None => full,
        Some(ids) => {
            let mut picked = Vec::with_capacity(ids.len());
            for id in ids {
                let entry = full
                    .iter()
                    .find(|(name, _)| name.eq_ignore_ascii_case(id))
                    .ok_or_else(|| RecoveryError::UnknownExperiment(id.clone()))?;
                picked.push(*entry);
            }
            picked
        }
    };
    run_recovery_entries(&selected, config)
}

/// Run the campaign over an explicit entry list, ignoring `config.only`.
/// Public so tests can inject synthetic experiments alongside or instead
/// of the registry.
pub fn run_recovery_entries(
    entries: &[ExperimentEntry],
    config: &RecoveryConfig,
) -> Result<RecoveryReport, RecoveryError> {
    if config.seeds == 0 {
        return Err(RecoveryError::NoSeeds);
    }
    if config.kill_points == 0 {
        return Err(RecoveryError::NoKillPoints);
    }
    if config.every == 0 {
        return Err(RecoveryError::ZeroInterval);
    }

    let seeds: Vec<u64> = (0..config.seeds).map(|i| config.base_seed.wrapping_add(i)).collect();
    let kills = config.kill_points;
    let per_exp = (seeds.len() as u64 * kills) as usize;
    let jobs = entries.len() * per_exp;
    let workers = config
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1));

    let next = AtomicUsize::new(0);
    let mut harvested: Vec<(usize, RecoveryCell)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= jobs {
                            break;
                        }
                        let (name, run) = entries[job / per_exp];
                        let within = (job % per_exp) as u64;
                        let seed = seeds[(within / kills) as usize];
                        let kill_point = within % kills;
                        local.push((job, run_cell(name, run, seed, kill_point, config.every)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker threads do not panic")).collect()
    });

    harvested.sort_by_key(|(job, _)| *job);
    debug_assert_eq!(harvested.len(), jobs, "every job produced one cell");
    Ok(RecoveryReport {
        base_seed: config.base_seed,
        seeds: config.seeds,
        kill_points: config.kill_points,
        every: config.every,
        cells: harvested.into_iter().map(|(_, c)| c).collect(),
    })
}

/// The kill event for one cell: a seeded random engine-event index in
/// `1..=golden_events`, decorrelated across experiments, seeds and kill
/// points. `None` when the golden run processed no engine events (only
/// possible for synthetic event-free entries), so there is nowhere to
/// crash.
fn kill_event(name: &str, seed: u64, kill_point: u64, golden_events: u64) -> Option<u64> {
    if golden_events == 0 {
        return None;
    }
    let mut rng = SimRng::seed_from_u64(seed).fork(&format!("recovery:{name}:{kill_point}"));
    Some(rng.range(1..=golden_events))
}

/// Run one `(experiment, seed, kill point)` cell: golden, crash, resume.
fn run_cell(
    name: &str,
    run: fn(u64) -> ExperimentReport,
    seed: u64,
    kill_point: u64,
    every: u64,
) -> RecoveryCell {
    let mut cell = RecoveryCell {
        id: name.to_owned(),
        seed,
        kill_point,
        kill_at: None,
        golden_events: 0,
        checkpoints: 0,
        resumed_from: 0,
        crashed: false,
        verified: false,
        identical: false,
        detail: String::new(),
    };

    // 1. Golden: the uninterrupted ground truth.
    let (golden, golden_panicked) = crate::run_isolated(name, run, seed);
    if golden_panicked {
        cell.detail = format!("golden run panicked: {}", golden.summary);
        return cell;
    }
    cell.golden_events = golden.cost.as_ref().map_or(0, |c| c.events);
    cell.kill_at = kill_event(name, seed, kill_point, cell.golden_events);

    let Some(kill_at) = cell.kill_at else {
        // Nothing to crash: the run scheduled no engine events (a synthetic
        // test entry — every registry experiment schedules events). The
        // cell is vacuously recovered; the golden already proved the run
        // completes, so no extra replay is performed.
        cell.verified = true;
        cell.identical = true;
        return cell;
    };

    // 2. Crash: checkpoint every `every` events, die at `kill_at`. The
    // guard lives outside run_isolated's catch_unwind so the snapshots
    // survive the injected panic.
    let guard = checkpoint::begin(
        CheckpointConfig::new(CheckpointPolicy::every_n_events(every))
            .kill_at(kill_at)
            .meta(name, seed),
    );
    let (_crash_report, crash_panicked) = crate::run_isolated(name, run, seed);
    let crash = guard.finish();
    cell.crashed = crash_panicked && crash.killed_at == Some(kill_at);
    cell.checkpoints = crash.snapshots.len() as u64;
    if !cell.crashed {
        cell.detail = format!(
            "injected crash did not fire (killed_at {:?}, events {})",
            crash.killed_at, crash.cursor
        );
        return cell;
    }
    let latest: Option<Snapshot> = crash.snapshots.last().cloned();
    cell.resumed_from = latest.as_ref().map_or(0, |s| s.cursor);

    // 3. Resume: replay from genesis, verify at the checkpoint frontier
    // (which also fires the restore hook — the route-memo invalidation a
    // real restore performs), and finish the run.
    let verify_cfg = match &latest {
        Some(snap) => {
            CheckpointConfig::new(CheckpointPolicy::manual()).verify(snap.clone()).meta(name, seed)
        }
        None => CheckpointConfig::new(CheckpointPolicy::manual()).meta(name, seed),
    };
    let guard = checkpoint::begin(verify_cfg);
    let (resumed, resume_panicked) = crate::run_isolated(name, run, seed);
    let resume = guard.finish();

    cell.verified = !resume_panicked
        && resume.divergence.is_none()
        && match &latest {
            Some(snap) => resume.verified_at == Some(snap.cursor),
            // Genesis resume: no checkpoint existed, nothing to verify.
            None => true,
        };
    if let Some(err) = &resume.divergence {
        cell.detail = divergence_detail(err);
    } else if !cell.verified {
        cell.detail = format!(
            "resume never reached the checkpoint (verified_at {:?}, wanted {:?})",
            resume.verified_at,
            latest.as_ref().map(|s| s.cursor)
        );
    }

    cell.identical = resumed == golden;
    if cell.identical && cell.verified {
        cell.detail.clear();
    } else if !cell.identical && cell.detail.is_empty() {
        cell.detail = report_diff_detail(&golden, &resumed);
    }
    cell
}

fn divergence_detail(err: &RestoreError) -> String {
    format!("{err}")
}

/// A one-line diagnosis of where a resumed report differs from its golden.
fn report_diff_detail(golden: &ExperimentReport, resumed: &ExperimentReport) -> String {
    let (g, r) = (&golden.cost, &resumed.cost);
    match (g, r) {
        (Some(g), Some(r)) if g.digest != r.digest => {
            format!("run digest differs: golden {} vs resumed {}", g.digest, r.digest)
        }
        (Some(g), Some(r)) if g.rng_draws != r.rng_draws => {
            format!("rng draws differ: golden {} vs resumed {}", g.rng_draws, r.rng_draws)
        }
        (Some(g), Some(r)) if g.forwards != r.forwards => {
            format!("forwards differ: golden {} vs resumed {}", g.forwards, r.forwards)
        }
        _ => "reports differ outside the cost appendix".to_owned(),
    }
}

/// Outcome of resuming a persisted snapshot from disk, for `tussle-cli
/// resume`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeOutcome {
    /// The snapshot's experiment id.
    pub experiment: String,
    /// The snapshot's seed.
    pub seed: u64,
    /// The snapshot's event cursor.
    pub cursor: u64,
    /// Did the replay verify the snapshot byte-exactly?
    pub verified: bool,
    /// First divergence, if the replay did not match.
    pub divergence: Option<RestoreError>,
    /// The finished run's report.
    pub report: ExperimentReport,
}

/// Resume an experiment run from a snapshot: replay deterministically,
/// verify byte-exactly at the snapshot's cursor (firing the restore hook),
/// and finish the run. The snapshot names its experiment and seed, so the
/// caller provides nothing but the file.
pub fn resume_from_snapshot(snapshot: &Snapshot) -> Result<ResumeOutcome, RecoveryError> {
    snapshot.validate().map_err(RecoveryError::BadSnapshot)?;
    let id = snapshot.meta.experiment.clone();
    let entry = registry()
        .into_iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(&id))
        .ok_or(RecoveryError::UnknownExperiment(id))?;
    let (name, run) = entry;
    let seed = snapshot.meta.seed;
    let guard = checkpoint::begin(
        CheckpointConfig::new(CheckpointPolicy::manual()).verify(snapshot.clone()).meta(name, seed),
    );
    let (report, _panicked) = crate::run_isolated(name, run, seed);
    let record = guard.finish();
    Ok(ResumeOutcome {
        experiment: name.to_owned(),
        seed,
        cursor: snapshot.cursor,
        verified: record.verified_at == Some(snapshot.cursor) && record.divergence.is_none(),
        divergence: record.divergence,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seeds: u64, kill_points: u64, every: u64, only: &[&str]) -> RecoveryConfig {
        RecoveryConfig {
            seeds,
            base_seed: 1,
            kill_points,
            every,
            only: Some(only.iter().map(|s| (*s).to_owned()).collect()),
            threads: None,
        }
    }

    #[test]
    fn config_validation() {
        let cfg = RecoveryConfig { seeds: 0, ..RecoveryConfig::default() };
        assert_eq!(run_recovery(&cfg), Err(RecoveryError::NoSeeds));
        let cfg = RecoveryConfig { kill_points: 0, ..RecoveryConfig::default() };
        assert_eq!(run_recovery(&cfg), Err(RecoveryError::NoKillPoints));
        let cfg = RecoveryConfig { every: 0, ..RecoveryConfig::default() };
        assert_eq!(run_recovery(&cfg), Err(RecoveryError::ZeroInterval));
        let err = run_recovery(&quick(1, 1, 100, &["E99"])).unwrap_err();
        assert_eq!(err, RecoveryError::UnknownExperiment("E99".into()));
    }

    #[test]
    fn networked_experiment_recovers_from_an_injected_crash() {
        // E4 schedules its forwarding bursts as chained engine events, so
        // the crash lands mid-chain and the resume is a genesis replay
        // held to byte-exact equality.
        let report = run_recovery(&quick(1, 2, 200, &["E4"])).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.crashed, "kill at {:?} never fired: {}", cell.kill_at, cell.detail);
            assert!(cell.golden_events > 0);
            assert!(cell.verified, "{}", cell.detail);
            assert!(cell.identical, "{}", cell.detail);
        }
        assert!(report.all_recovered());
    }

    #[test]
    fn formerly_loop_driven_experiment_now_presents_a_kill_surface() {
        // E1 was pure accounting before the engine migration; it now
        // schedules its regimes as engine events and must crash + recover
        // like every other registry experiment.
        let report = run_recovery(&quick(1, 1, 100, &["E1"])).unwrap();
        let cell = &report.cells[0];
        assert!(cell.kill_at.is_some());
        assert!(cell.golden_events > 0);
        assert!(cell.crashed, "{}", cell.detail);
        assert!(cell.recovered(), "{}", cell.detail);
    }

    #[test]
    fn event_free_synthetic_entry_yields_a_vacuous_no_kill_cell() {
        // An experiment that never touches the engine has no kill surface;
        // the cell is vacuously recovered with no extra replay.
        fn pure(_seed: u64) -> tussle_core::ExperimentReport {
            tussle_core::ExperimentReport {
                id: "EX".into(),
                section: "—".into(),
                paper_claim: String::new(),
                summary: String::new(),
                table: tussle_core::Table::new("t", &[]),
                shape_holds: true,
                cost: None,
                scoreboard: None,
            }
        }
        let entries: Vec<ExperimentEntry> = vec![("EX", pure)];
        let report = run_recovery_entries(&entries, &quick(1, 1, 100, &[])).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.kill_at, None);
        assert_eq!(cell.golden_events, 0);
        assert!(!cell.crashed);
        assert!(cell.recovered(), "{}", cell.detail);
    }

    #[test]
    fn rng_driven_experiment_crashes_mid_draw_and_recovers() {
        // E14's rng draws happen inside engine-event handlers, so the
        // event cursor brackets every draw the games make.
        let report = run_recovery(&quick(1, 1, 100, &["E14"])).unwrap();
        let cell = &report.cells[0];
        assert!(cell.crashed, "{}", cell.detail);
        assert!(cell.recovered(), "{}", cell.detail);
    }

    #[test]
    fn kill_events_are_seeded_and_in_range() {
        let a = kill_event("E4", 1, 0, 1000);
        assert_eq!(a, kill_event("E4", 1, 0, 1000), "deterministic");
        assert_ne!(a, kill_event("E4", 1, 1, 1000), "kill points decorrelate");
        assert_ne!(a, kill_event("E5", 1, 0, 1000), "experiments decorrelate");
        for k in 0..50 {
            let c = kill_event("E4", 7, k, 10).unwrap();
            assert!((1..=10).contains(&c));
        }
        assert_eq!(kill_event("E4", 1, 0, 0), None);
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let mut jsons = Vec::new();
        for threads in [1, 3] {
            let cfg = RecoveryConfig { threads: Some(threads), ..quick(2, 1, 150, &["E4", "E14"]) };
            jsons.push(run_recovery(&cfg).unwrap().to_json());
        }
        assert_eq!(jsons[0], jsons[1]);
    }

    #[test]
    fn resume_from_snapshot_replays_and_verifies() {
        // Find E9's event count, crash at the last event (every earlier
        // event is already checkpointed), then resume from the latest
        // snapshot the way the CLI would.
        let (golden, _) = crate::run_isolated("E9", crate::e09_encryption::run, 3);
        let events = golden.cost.as_ref().map(|c| c.events).unwrap();
        assert!(events > 0, "E9 must process engine events");
        let guard = checkpoint::begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(1))
                .kill_at(events)
                .meta("E9", 3),
        );
        let (_report, panicked) = crate::run_isolated("E9", crate::e09_encryption::run, 3);
        let record = guard.finish();
        assert!(panicked);
        let snap = record.snapshots.last().cloned().expect("a checkpoint before the crash");

        let outcome = resume_from_snapshot(&snap).unwrap();
        assert_eq!(outcome.experiment, "E9");
        assert_eq!(outcome.seed, 3);
        assert_eq!(outcome.cursor, snap.cursor);
        assert!(outcome.verified, "{:?}", outcome.divergence);
        assert_eq!(outcome.report, golden);
    }

    #[test]
    fn resume_from_unknown_experiment_is_an_error() {
        let snap = Snapshot::sealed(
            tussle_sim::SnapshotMeta { experiment: "E99".into(), seed: 1 },
            10,
            tussle_sim::EngineState {
                now_micros: 0,
                next_seq: 0,
                events_processed: 10,
                queued: 0,
                queue_digest: "0".repeat(16),
                rng_seed: "00".repeat(32),
                rng_word_pos: 0,
                trace_entries: 0,
                trace_dropped: 0,
                open_spans: 0,
                trace_digest: "0".repeat(16),
                run_digest: "0".repeat(16),
            },
            vec![],
        );
        assert_eq!(
            resume_from_snapshot(&snap),
            Err(RecoveryError::UnknownExperiment("E99".into()))
        );
    }

    #[test]
    fn a_synthetic_always_panicking_experiment_fails_its_golden() {
        fn boom(_seed: u64) -> tussle_core::ExperimentReport {
            panic!("synthetic failure");
        }
        let entries: Vec<ExperimentEntry> = vec![("EX", boom)];
        let report = run_recovery_entries(&entries, &quick(1, 1, 100, &[])).unwrap();
        let cell = &report.cells[0];
        assert!(!cell.recovered());
        assert!(cell.detail.contains("golden run panicked"), "{}", cell.detail);
    }
}

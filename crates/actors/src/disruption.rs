//! Christensen's innovator's dilemma as dynamics.
//!
//! §II.B: "disruptive technology does not initially succeed by
//! de-stabilizing an existing actor network ... Instead, innovators step
//! outside the existing value chain, and find new customers and new
//! markets, and build up their stability outside the existing network.
//! Only when they have enough durability (stable production and markets)
//! do they then have the potential to overthrow the existing producers."

use serde::{Deserialize, Serialize};

/// Where the disruptor currently is in Christensen's arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisruptionPhase {
    /// Performance below even the niche's needs: invisible.
    Gestating,
    /// Serving the niche the incumbent ignores; building durability.
    NicheGrowth,
    /// Performance crosses mainstream demand while durability is
    /// sufficient: the incumbent falls.
    Overthrow,
}

/// A two-firm disruption model, stepped in discrete periods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Disruption {
    /// Incumbent performance (sustaining innovation moves it up slowly).
    pub incumbent_performance: f64,
    /// Incumbent per-step sustaining improvement.
    pub incumbent_rate: f64,
    /// Disruptor performance.
    pub disruptor_performance: f64,
    /// Disruptor per-step improvement (typically steeper).
    pub disruptor_rate: f64,
    /// What the mainstream market demands (also drifts upward).
    pub mainstream_demand: f64,
    /// Per-step drift of mainstream demand.
    pub demand_rate: f64,
    /// What the ignored niche accepts.
    pub niche_demand: f64,
    /// Disruptor durability (stable production + markets), grows only
    /// while serving the niche or better.
    pub disruptor_durability: f64,
    /// Durability needed before overthrow is possible.
    pub durability_needed: f64,
}

impl Disruption {
    /// The textbook setup: incumbent far ahead on performance, disruptor
    /// below the niche, steeper improvement curve.
    pub fn textbook() -> Self {
        Disruption {
            incumbent_performance: 10.0,
            incumbent_rate: 0.10,
            disruptor_performance: 2.0,
            disruptor_rate: 0.35,
            mainstream_demand: 8.0,
            demand_rate: 0.05,
            niche_demand: 3.0,
            disruptor_durability: 0.0,
            durability_needed: 5.0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> DisruptionPhase {
        if self.disruptor_performance >= self.mainstream_demand
            && self.disruptor_durability >= self.durability_needed
        {
            DisruptionPhase::Overthrow
        } else if self.disruptor_performance >= self.niche_demand {
            DisruptionPhase::NicheGrowth
        } else {
            DisruptionPhase::Gestating
        }
    }

    /// Advance one period.
    pub fn step(&mut self) {
        self.incumbent_performance += self.incumbent_rate;
        self.disruptor_performance += self.disruptor_rate;
        self.mainstream_demand += self.demand_rate;
        if self.disruptor_performance >= self.niche_demand {
            // serving real customers is what builds durability
            self.disruptor_durability += 1.0;
        }
    }

    /// Run until overthrow or `max_steps`; returns the step at which the
    /// overthrow happened, if it did.
    pub fn run_to_overthrow(&mut self, max_steps: usize) -> Option<usize> {
        for step in 0..max_steps {
            if self.phase() == DisruptionPhase::Overthrow {
                return Some(step);
            }
            self.step();
        }
        (self.phase() == DisruptionPhase::Overthrow).then_some(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_arc_passes_through_all_phases() {
        let mut d = Disruption::textbook();
        assert_eq!(d.phase(), DisruptionPhase::Gestating);
        let mut seen_niche = false;
        let overthrow = d.run_to_overthrow(1000);
        assert!(overthrow.is_some(), "textbook disruption must complete");
        // replay to check the middle phase existed
        let mut d2 = Disruption::textbook();
        for _ in 0..overthrow.unwrap() {
            if d2.phase() == DisruptionPhase::NicheGrowth {
                seen_niche = true;
            }
            d2.step();
        }
        assert!(seen_niche, "overthrow must pass through niche growth");
    }

    #[test]
    fn overthrow_needs_durability_not_just_performance() {
        let mut d = Disruption::textbook();
        d.durability_needed = f64::INFINITY;
        assert_eq!(d.run_to_overthrow(500), None);
        // performance alone got there long ago
        assert!(d.disruptor_performance > d.mainstream_demand);
    }

    #[test]
    fn slow_disruptors_never_catch_up() {
        let mut d = Disruption::textbook();
        d.disruptor_rate = 0.04; // slower than demand drift
        assert_eq!(d.run_to_overthrow(2000), None);
    }

    #[test]
    fn durability_grows_only_in_the_niche() {
        let mut d = Disruption::textbook();
        let before = d.disruptor_durability;
        d.step(); // still gestating (2.35 < 3.0)
        assert_eq!(d.disruptor_durability, before);
        while d.phase() == DisruptionPhase::Gestating {
            d.step();
        }
        let at_entry = d.disruptor_durability;
        d.step();
        assert!(d.disruptor_durability > at_entry);
    }

    #[test]
    fn incumbent_keeps_improving_regardless() {
        let mut d = Disruption::textbook();
        let p0 = d.incumbent_performance;
        for _ in 0..10 {
            d.step();
        }
        assert!((d.incumbent_performance - (p0 + 1.0)).abs() < 1e-9);
    }
}

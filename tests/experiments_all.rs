//! Workspace integration: the full evaluation runs, holds its shapes, is
//! deterministic, and serializes.

use tussle::experiments::run_all;

#[test]
fn every_shape_holds_on_the_default_seed() {
    let reports = run_all(2002);
    assert_eq!(reports.len(), 17);
    for r in &reports {
        assert!(r.shape_holds, "{} failed: {}", r.id, r.summary);
    }
}

#[test]
fn shapes_hold_across_seeds() {
    // The claims are qualitative; they must not hinge on a lucky seed.
    for seed in [1, 7, 1234] {
        let reports = run_all(seed);
        for r in &reports {
            assert!(r.shape_holds, "{} failed on seed {seed}: {}", r.id, r.summary);
        }
    }
}

#[test]
fn reports_are_deterministic() {
    let a = run_all(99);
    let b = run_all(99);
    assert_eq!(a, b);
}

#[test]
fn reports_roundtrip_through_json() {
    for r in run_all(2002) {
        let json = r.to_json();
        let back: tussle::core::ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

#[test]
fn ids_and_sections_are_well_formed() {
    let reports = run_all(2002);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.id, format!("E{}", i + 1));
        assert!(!r.section.is_empty());
        assert!(!r.paper_claim.is_empty());
        assert!(!r.table.columns.is_empty());
        let md = r.to_markdown();
        assert!(md.contains(&r.id));
        assert!(md.contains("Shape holds: yes"));
    }
}

//! Quickstart: one tour through the public API.
//!
//! Builds a tiny internet, fights the §V.B firewall tussle on it, plays the
//! §VI.A escalation ladder, checks the design principles, and prints what
//! happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tussle::core::{choice_index, visibility_index, EscalationLadder, Mechanism};
use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::diagnostics::{blame, traceroute};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::{Firewall, Network};
use tussle::sim::{SimRng, SimTime};

fn main() {
    let mut rng = SimRng::seed_from_u64(2002);

    // -- build a tiny internet: alice -- ISP border -- bob ----------------
    let mut net = Network::new();
    let alice = net.add_host(Asn(1));
    let border = net.add_router(Asn(2));
    let bob = net.add_host(Asn(2));
    net.connect(alice, border, SimTime::from_millis(10), 1_000_000_000);
    net.connect(border, bob, SimTime::from_millis(2), 1_000_000_000);

    let a_addr =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let b_addr =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(alice).bind(a_addr);
    net.node_mut(bob).bind(b_addr);
    net.fib_mut(alice).install(Prefix::DEFAULT, border, 0);
    net.fib_mut(border).install(Prefix::new(0x0b010000, 16), bob, 0);

    // -- the transparent Internet: a novel application just works ---------
    let novel = Packet::new(a_addr, b_addr, Protocol::Udp, 5000, ports::NOVEL);
    let report = net.send(alice, novel.clone(), &mut rng);
    println!("transparent net: novel app delivered = {}", report.delivered);

    // -- bob's admin deploys a port firewall: innovation dies -------------
    net.set_firewall(
        border,
        Firewall::port_allowlist(vec![ports::HTTP, ports::SMTP], "bob's admin"),
    );
    let report = net.send(alice, novel.clone(), &mut rng);
    println!("port firewall:   novel app delivered = {}", report.delivered);
    if let Some(b) = blame(&net, &report) {
        println!("blame report:    {}", b.message);
    }

    // -- the trust-mediated alternative: key on WHO, not WHAT -------------
    net.set_firewall(border, Firewall::trust_mediated(vec![42], "bob"));
    let report = net.send(alice, novel.clone().with_identity(42), &mut rng);
    println!("trust firewall:  novel app (trusted id) delivered = {}", report.delivered);

    // -- traceroute sees (or doesn't see) the middlebox --------------------
    let probe = Packet::new(a_addr, b_addr, Protocol::Icmp, 0, ports::HTTP).with_identity(42);
    let hops = traceroute(&mut net, alice, probe, &mut rng);
    println!(
        "traceroute: {} hops, all visible = {}",
        hops.len(),
        hops.iter().all(|h| h.node.is_some())
    );

    // -- play the §VI.A escalation ladder to quiescence --------------------
    let ladder = EscalationLadder::play_to_the_end(Mechanism::QosPortBased, 10);
    let moves: Vec<String> = ladder.steps.iter().map(|s| format!("{:?}", s.mechanism)).collect();
    println!("escalation:      {}", moves.join(" -> "));

    // -- score the design against the paper's principles -------------------
    // alice can pick between 2 firewall designs and 1 ISP: one real choice.
    println!("choice index:    {:.2}", choice_index(&[2, 1]));
    // the port firewall concealed nothing, the rules were not disclosed:
    println!("visibility:      {:.2}", visibility_index(&[true, false]));

    println!(
        "\n`tussle` is working. See EXPERIMENTS.md and the other examples for the full evaluation."
    );
}

//! # tussle-game — the formal model of tussle
//!
//! §II.B: "A more formal model of tussle is provided by the discipline of
//! game theory ... A game represents an abstraction of the underlying
//! tussle environment, and can range from purely conflicting games (so
//! called zero-sum games) where the values of actors in the network are in
//! direct conflict, to coordination games where actors have a common goal
//! but fail to coordinate their actions due to incentive problems."
//!
//! * [`matrix`] — normal-form bimatrix games, with the zero-sum ↔
//!   coordination spectrum the paper describes.
//! * [`solve`] — pure Nash enumeration and the analytic 2×2 mixed
//!   equilibrium (von Neumann / Nash, the paper's refs \[12\], \[13\]).
//! * [`learning`] — best-response dynamics and fictitious play.
//! * [`evolution`] — replicator dynamics: the bounded-rationality /
//!   evolutionary branch the paper cites via Binmore \[28\].
//! * [`auction`] — Vickrey's truthful second-price auction and the
//!   first-price comparison: "with this theory in hand designers begin to
//!   have a blueprint for construction of actor network systems that are
//!   ... tussle-free" (§II.B).
//! * [`repeated`] — repeated play and the TCP-congestion compliance game:
//!   the paper's worked example of a tussle "resolved" only by social
//!   pressure, with nothing in the technical design to bound the shift
//!   when defection starts to pay.
//!
//! ## Example
//!
//! ```
//! use tussle_game::{pure_nash, Game};
//!
//! // the congestion tussle in miniature: defection dominates
//! let pd = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
//! assert_eq!(pure_nash(&pd), vec![(1, 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod evolution;
pub mod learning;
pub mod matrix;
pub mod repeated;
pub mod solve;
pub mod support;
pub mod vcg;

pub use auction::{AuctionOutcome, AuctionRule};
pub use evolution::Replicator;
pub use learning::FictitiousPlay;
pub use matrix::Game;
pub use repeated::{CongestionGame, RepeatedGame, Strategy};
pub use solve::{is_nash, mixed_2x2, pure_nash};
pub use support::support_enumeration;
pub use vcg::{run_vcg, VcgOutcome};

//! Causal provenance: which event scheduled which.
//!
//! Every event dispatched by the engine records a [`ProvenanceNode`]: its
//! own [`EventId`], the id of the event whose handler scheduled it (`None`
//! for *root injections* scheduled from outside the engine), its virtual
//! dispatch time, and the innermost engine-trace span open when it was
//! scheduled. Because ids are the engine's schedule-order sequence numbers,
//! `parent.0 < id.0` holds for every node, so the recorded graph is a DAG
//! (a forest, in fact) by construction and ancestry walks always terminate.
//!
//! The capture is a bounded ring like [`crate::trace::Trace`]: long runs
//! keep the most recent [`PROVENANCE_RING_CAPACITY`] nodes and count the
//! rest as dropped. Provenance is **never digested** — it is positional
//! bookkeeping derived from the already-digested schedule order, so
//! capturing (or disabling) it cannot change a run's [`crate::RunDigest`].

use crate::event::EventId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Default number of provenance nodes retained by [`Provenance`].
pub const PROVENANCE_RING_CAPACITY: usize = 65_536;

/// One dispatched event's causal record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceNode {
    /// The event's own id (the engine sequence number it was scheduled with).
    pub id: EventId,
    /// The event whose handler scheduled this one; `None` for root
    /// injections scheduled from outside the engine.
    pub parent: Option<EventId>,
    /// Virtual time at which the event was dispatched.
    pub time: SimTime,
    /// The innermost engine-trace span open when the event was scheduled.
    pub span: Option<String>,
}

/// A bounded, insertion-ordered capture of [`ProvenanceNode`]s keyed by
/// event id, with ancestry walks.
#[derive(Debug, Clone)]
pub struct Provenance {
    nodes: BTreeMap<u64, ProvenanceNode>,
    order: VecDeque<u64>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for Provenance {
    fn default() -> Self {
        Self::with_capacity(PROVENANCE_RING_CAPACITY)
    }
}

impl Provenance {
    /// An enabled capture retaining at most `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            enabled: true,
        }
    }

    /// Stop recording (existing nodes are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Resume recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is the capture currently recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a dispatched event, evicting the oldest node when full.
    pub fn record(&mut self, node: ProvenanceNode) {
        debug_assert!(
            node.parent.is_none_or(|p| p.0 < node.id.0),
            "provenance parent must be scheduled before its child"
        );
        if !self.enabled {
            return;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.nodes.remove(&old);
                self.dropped += 1;
            }
        }
        self.order.push_back(node.id.0);
        self.nodes.insert(node.id.0, node);
    }

    /// Look up a node by event id.
    pub fn get(&self, id: EventId) -> Option<&ProvenanceNode> {
        self.nodes.get(&id.0)
    }

    /// The causal chain of `id`, youngest first: the event itself, then its
    /// parent, and so on. The walk stops at a root injection (`parent ==
    /// None`) or at the first ancestor evicted from the ring. Because
    /// parent ids strictly decrease, the chain length is bounded by the
    /// number of retained nodes.
    pub fn ancestry(&self, id: EventId) -> Vec<&ProvenanceNode> {
        let mut chain = Vec::new();
        let mut cur = match self.nodes.get(&id.0) {
            Some(n) => n,
            None => return chain,
        };
        for _ in 0..=self.nodes.len() {
            chain.push(cur);
            match cur.parent {
                None => break,
                Some(p) => match self.nodes.get(&p.0) {
                    Some(next) => cur = next,
                    None => break,
                },
            }
        }
        chain
    }

    /// Retained nodes in execution (dispatch) order.
    pub fn iter(&self) -> impl Iterator<Item = &ProvenanceNode> {
        self.order.iter().filter_map(|id| self.nodes.get(id))
    }

    /// Retained root injections (nodes with no parent), in execution order.
    pub fn roots(&self) -> impl Iterator<Item = &ProvenanceNode> {
        self.iter().filter(|n| n.parent.is_none())
    }

    /// The most recently dispatched retained node.
    pub fn last(&self) -> Option<&ProvenanceNode> {
        self.order.back().and_then(|id| self.nodes.get(id))
    }

    /// Number of retained nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Nodes evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, parent: Option<u64>, t: u64) -> ProvenanceNode {
        ProvenanceNode {
            id: EventId(id),
            parent: parent.map(EventId),
            time: SimTime::from_micros(t),
            span: None,
        }
    }

    #[test]
    fn ancestry_walks_to_the_root() {
        let mut p = Provenance::default();
        p.record(node(0, None, 0));
        p.record(node(1, Some(0), 5));
        p.record(node(2, Some(1), 9));
        let chain: Vec<u64> = p.ancestry(EventId(2)).iter().map(|n| n.id.0).collect();
        assert_eq!(chain, [2, 1, 0]);
        assert_eq!(p.roots().count(), 1);
        assert_eq!(p.last().unwrap().id, EventId(2));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut p = Provenance::with_capacity(2);
        p.record(node(0, None, 0));
        p.record(node(1, Some(0), 1));
        p.record(node(2, Some(1), 2));
        assert_eq!(p.len(), 2);
        assert_eq!(p.dropped(), 1);
        assert!(p.get(EventId(0)).is_none());
        // Ancestry stops at the evicted ancestor instead of looping.
        let chain: Vec<u64> = p.ancestry(EventId(2)).iter().map(|n| n.id.0).collect();
        assert_eq!(chain, [2, 1]);
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let mut p = Provenance::default();
        p.disable();
        p.record(node(0, None, 0));
        assert!(p.is_empty());
        p.enable();
        p.record(node(1, None, 1));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unknown_event_yields_empty_chain() {
        let p = Provenance::default();
        assert!(p.ancestry(EventId(7)).is_empty());
    }
}

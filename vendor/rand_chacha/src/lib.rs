//! Offline vendored ChaCha8 random number generator.
//!
//! A faithful ChaCha stream-cipher core (IETF variant, 8 rounds) driving the
//! workspace's [`rand::RngCore`]/[`rand::SeedableRng`] traits. ChaCha's
//! output is fully specified by its seed, so streams are stable across
//! platforms, compilers and releases — the property `tussle-sim` pins this
//! generator for. Word order of the output buffer is the generator's own
//! convention; it is *self*-consistent, which is what reproducibility needs,
//! but not bit-compatible with upstream `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds: the speed-oriented family member,
/// statistically indistinguishable from random for simulation purposes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill before reading".
    idx: usize,
}

const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The raw 32-byte seed this generator was built from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Number of 32-bit output words consumed from the stream so far.
    ///
    /// Together with the seed this pins the generator's exact position:
    /// `set_word_pos(word_pos())` on a fresh generator with the same seed
    /// reproduces the remaining stream bit-for-bit.
    pub fn word_pos(&self) -> u64 {
        if self.counter == 0 && self.idx >= 16 {
            // Fresh generator: nothing produced, nothing consumed.
            0
        } else {
            // `counter` is the next block to generate, so the current
            // buffer is block `counter - 1`; `idx` words of it are gone.
            (self.counter - 1) * 16 + self.idx as u64
        }
    }

    /// Reposition the stream so that exactly `pos` output words have been
    /// consumed. Seeking is O(1): ChaCha blocks are generated directly
    /// from `(seed, block counter)`.
    pub fn set_word_pos(&mut self, pos: u64) {
        let block = pos / 16;
        let offset = (pos % 16) as usize;
        if offset == 0 {
            // On a block boundary: arm the counter and defer generation
            // to the next read (mirrors the `from_seed` initial state).
            self.counter = block;
            self.idx = 16;
        } else {
            // Mid-block: generate block `block` now and skip `offset`
            // words into it.
            self.counter = block;
            self.refill();
            self.idx = offset;
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in self.seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state) {
            *w = w.wrapping_add(s);
        }
        self.buf = working;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng { seed, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, run at 20 rounds to validate the core
    /// permutation (the round function is shared across family members).
    #[test]
    fn chacha_core_matches_rfc8439_vector() {
        let mut state: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, 0x03020100, 0x07060504, 0x0b0a0908,
            0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, 0x00000001, 0x09000000,
            0x4a000000, 0x00000000,
        ];
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, s) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(s);
        }
        assert_eq!(
            state,
            [
                0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
                0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
                0xe883d0cb, 0x4e3c50a2,
            ]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut diverged = false;
        for _ in 0..256 {
            let word = a.next_u64();
            assert_eq!(word, b.next_u64());
            diverged |= word != c.next_u64();
        }
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn word_pos_counts_consumed_words() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(r.word_pos(), 0, "fresh generator has consumed nothing");
        r.next_u32();
        assert_eq!(r.word_pos(), 1);
        r.next_u64();
        assert_eq!(r.word_pos(), 3);
        // Drain to the end of the first block and just past it.
        for _ in 3..16 {
            r.next_u32();
        }
        assert_eq!(r.word_pos(), 16, "exact block boundary");
        r.next_u32();
        assert_eq!(r.word_pos(), 17);
    }

    #[test]
    fn set_word_pos_reproduces_the_stream() {
        // Positions chosen to cover: start, mid-block, both sides of the
        // first and second block boundaries.
        for pos in [0u64, 1, 7, 15, 16, 17, 31, 32, 33, 100] {
            let mut reference = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..pos {
                reference.next_u32();
            }
            let mut seeked = ChaCha8Rng::seed_from_u64(42);
            seeked.set_word_pos(pos);
            assert_eq!(seeked.word_pos(), pos, "pos={pos}");
            for i in 0..64 {
                assert_eq!(seeked.next_u32(), reference.next_u32(), "pos={pos} word {i}");
            }
        }
    }

    #[test]
    fn set_word_pos_rewinds() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        r.set_word_pos(0);
        let again: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        assert_eq!(first, again, "seeking to 0 replays the stream from the seed");
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64,000 bits; expect ~32,000 set, binomial sd ~126.
        assert!((31_000..33_000).contains(&ones), "ones={ones}");
    }
}

//! Collapsed-stack (flamegraph) rendering of span captures.
//!
//! Folds a structured trace stream — `Enter`/`Exit` span edges with point
//! events in between — into the collapsed-stack format consumed by
//! `inferno` and Brendan Gregg's `flamegraph.pl`: one line per unique
//! frame path, `root;parent;child <value>`, where the value is the frame's
//! *self* time in virtual microseconds. Virtual time is deterministic, so
//! collapsed output is byte-stable across runs and thread counts — unlike
//! wall-clock profiles, it can be snapshot-tested.

use crate::time::SimTime;
use crate::trace::{SpanKind, TraceEntry};
use std::collections::BTreeMap;

struct Frame {
    topic: String,
    entered: SimTime,
    /// Virtual time already attributed to children of this frame.
    child_micros: u64,
}

/// Fold span edges into `(path, self_micros)` pairs, lexicographically
/// sorted. `root` becomes the first path segment so per-experiment outputs
/// stay distinguishable when concatenated. Unbalanced streams are
/// tolerated: spans still open at the end of the stream are closed at the
/// last entry's timestamp, and stray exits are ignored.
pub fn collapse(entries: &[TraceEntry], root: &str) -> Vec<(String, u64)> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let end = entries.last().map_or(SimTime::ZERO, |e| e.time);

    let mut close = |stack: &mut Vec<Frame>, at: SimTime, root: &str| {
        let Some(frame) = stack.pop() else {
            return;
        };
        let total = at.as_micros().saturating_sub(frame.entered.as_micros());
        let self_micros = total.saturating_sub(frame.child_micros);
        let mut path = String::from(root);
        for f in stack.iter() {
            path.push(';');
            path.push_str(&f.topic);
        }
        path.push(';');
        path.push_str(&frame.topic);
        *totals.entry(path).or_insert(0) += self_micros;
        if let Some(parent) = stack.last_mut() {
            parent.child_micros += total;
        }
    };

    for e in entries {
        match e.kind {
            SpanKind::Enter => {
                stack.push(Frame { topic: e.topic.clone(), entered: e.time, child_micros: 0 });
            }
            SpanKind::Exit => close(&mut stack, e.time, root),
            SpanKind::Event => {}
        }
    }
    while !stack.is_empty() {
        close(&mut stack, end, root);
    }
    // Paths with zero self time are kept: the frame existed, and dropping
    // it would make output shape depend on timing resolution.
    totals.into_iter().collect()
}

/// Render [`collapse`] as collapsed-stack text: one `path value` line per
/// frame path, trailing newline included (empty string for spanless input).
pub fn to_collapsed(entries: &[TraceEntry], root: &str) -> String {
    let mut out = String::new();
    for (path, micros) in collapse(entries, root) {
        out.push_str(&format!("{path} {micros}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(kind: SpanKind, topic: &str, t: u64) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_micros(t),
            topic: topic.to_owned(),
            message: String::new(),
            kind,
            stakeholder: None,
            fields: Vec::new(),
            depth: 0,
            event: None,
        }
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        // outer: 0..100, inner: 20..50 → outer self 70, inner self 30.
        let entries = vec![
            edge(SpanKind::Enter, "outer", 0),
            edge(SpanKind::Enter, "inner", 20),
            edge(SpanKind::Exit, "inner", 50),
            edge(SpanKind::Exit, "outer", 100),
        ];
        let folded = collapse(&entries, "E1");
        assert_eq!(folded, [("E1;outer".to_owned(), 70), ("E1;outer;inner".to_owned(), 30)]);
        let text = to_collapsed(&entries, "E1");
        assert_eq!(text, "E1;outer 70\nE1;outer;inner 30\n");
    }

    #[test]
    fn repeated_paths_accumulate() {
        let entries = vec![
            edge(SpanKind::Enter, "a", 0),
            edge(SpanKind::Exit, "a", 10),
            edge(SpanKind::Enter, "a", 20),
            edge(SpanKind::Exit, "a", 25),
        ];
        assert_eq!(collapse(&entries, "r"), [("r;a".to_owned(), 15)]);
    }

    #[test]
    fn unbalanced_streams_are_tolerated() {
        // A stray exit, then a span left open at the end of the stream.
        let entries = vec![
            edge(SpanKind::Exit, "ghost", 1),
            edge(SpanKind::Enter, "open", 10),
            edge(SpanKind::Event, "tick", 40),
        ];
        assert_eq!(collapse(&entries, "r"), [("r;open".to_owned(), 30)]);
    }

    #[test]
    fn zero_self_time_frames_are_kept() {
        let entries = vec![
            edge(SpanKind::Enter, "a", 5),
            edge(SpanKind::Enter, "b", 5),
            edge(SpanKind::Exit, "b", 9),
            edge(SpanKind::Exit, "a", 9),
        ];
        let folded = collapse(&entries, "r");
        assert_eq!(folded, [("r;a".to_owned(), 0), ("r;a;b".to_owned(), 4)]);
    }

    #[test]
    fn empty_and_spanless_streams_render_empty() {
        assert_eq!(to_collapsed(&[], "r"), "");
        let only_events = vec![edge(SpanKind::Event, "tick", 3)];
        assert_eq!(to_collapsed(&only_events, "r"), "");
    }
}

//! Domain scenario: reviewing application designs against the paper's
//! guidelines (§VI.A "application design guidelines").
//!
//! Scores a handful of recognizable application architectures and prints
//! each violation with the paper section it comes from.
//!
//! ```sh
//! cargo run --release --example app_review
//! ```

use tussle::core::guidelines::AppDesign;

fn designs() -> Vec<AppDesign> {
    vec![
        // The paper's good example: mail. "The design of the mail system
        // allows the user to select his SMTP server and his POP server."
        AppDesign {
            name: "internet-mail".into(),
            user_selects_server: true,
            user_selects_mediators: true,
            keys_on_well_known_ports: false,
            works_encrypted: true,
            value_flow_designed: true,
            needs_value_flow: false,
            network_features_user_controlled: true,
            reports_failures_usably: false, // bounce messages, famously cryptic
        },
        // The 2002 web: port-80 semantics, transparent caches inserted
        // without consent, mostly cleartext.
        AppDesign {
            name: "web-2002".into(),
            user_selects_server: true,
            user_selects_mediators: false,
            keys_on_well_known_ports: true,
            works_encrypted: false,
            value_flow_designed: false,
            needs_value_flow: false,
            network_features_user_controlled: false,
            reports_failures_usably: false,
        },
        // ISP-bundled telephony: vertical integration, QoS only for the
        // provider's own app (§VII's closed-QoS fear).
        AppDesign {
            name: "isp-bundled-voip".into(),
            user_selects_server: false,
            user_selects_mediators: false,
            keys_on_well_known_ports: true,
            works_encrypted: false,
            value_flow_designed: true,
            needs_value_flow: true,
            network_features_user_controlled: false,
            reports_failures_usably: true,
        },
        // A tussle-aware P2P design: everything user-chosen, paid relays,
        // encrypted, explicit failure reports.
        AppDesign {
            name: "tussle-aware-p2p".into(),
            user_selects_server: true,
            user_selects_mediators: true,
            keys_on_well_known_ports: false,
            works_encrypted: true,
            value_flow_designed: true,
            needs_value_flow: true,
            network_features_user_controlled: true,
            reports_failures_usably: true,
        },
    ]
}

fn main() {
    println!("# Application design review (§VI.A guidelines)\n");
    let mut scored: Vec<(f64, AppDesign)> = designs().into_iter().map(|d| (d.score(), d)).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (score, design) in &scored {
        println!("## {}  —  score {:.2}", design.name, score);
        let violations = design.review();
        if violations.is_empty() {
            println!("  no violations\n");
            continue;
        }
        for v in violations {
            println!("  [§{}] {}", v.section, v.finding);
        }
        println!();
    }
    println!(
        "The ordering is the paper's argument in miniature: the designs that \
         survive their own success are the ones that left the tussle room to move."
    );
}

//! Network address translation.
//!
//! The paper's very first list of tussle examples includes: "ISPs give
//! their users a single IP address, and users attach a network of computers
//! using address translation" (§I). NAT is therefore modeled as what it is
//! in the tussle: a *consumer counter-mechanism* that multiplexes many
//! private hosts behind one provider-assigned address, at the cost of
//! breaking inbound transparency.

use crate::addr::Address;
use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A port-translating NAT with one external address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nat {
    /// The single address the ISP assigned.
    pub external: Address,
    /// Next external port to hand out.
    next_port: u16,
    /// external port -> (internal address, internal port)
    bindings: BTreeMap<u16, (Address, u16)>,
    /// (internal address, internal port) -> external port
    reverse: BTreeMap<(u32, u16), u16>,
}

impl Nat {
    /// First external port handed out.
    pub const PORT_BASE: u16 = 20_000;

    /// A NAT holding the given external address.
    pub fn new(external: Address) -> Self {
        Nat {
            external,
            next_port: Self::PORT_BASE,
            bindings: BTreeMap::new(),
            reverse: BTreeMap::new(),
        }
    }

    /// Translate an outbound packet: source becomes the external address
    /// with a stable per-flow port. Returns the translated packet.
    pub fn outbound(&mut self, mut pkt: Packet) -> Packet {
        let key = (pkt.src.value, pkt.src_port);
        let ext_port = match self.reverse.get(&key) {
            Some(p) => *p,
            None => {
                let p = self.next_port;
                self.next_port = self.next_port.wrapping_add(1).max(Self::PORT_BASE);
                self.bindings.insert(p, (pkt.src, pkt.src_port));
                self.reverse.insert(key, p);
                p
            }
        };
        pkt.src = self.external;
        pkt.src_port = ext_port;
        pkt
    }

    /// Translate an inbound packet addressed to the external address.
    ///
    /// Returns `None` when no binding exists — unsolicited inbound traffic
    /// is silently dropped, which is exactly the transparency loss the
    /// purists bemoan and the reason new peer-to-peer applications struggle
    /// behind NAT.
    pub fn inbound(&self, mut pkt: Packet) -> Option<Packet> {
        if pkt.dst != self.external {
            return None;
        }
        let (internal, port) = self.bindings.get(&pkt.dst_port)?;
        pkt.dst = *internal;
        pkt.dst_port = *port;
        Some(pkt)
    }

    /// Number of active flow bindings.
    pub fn active_bindings(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddressOrigin, Asn, Prefix};
    use crate::packet::Protocol;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), v & 0xff, AddressOrigin::ProviderAssigned(Asn(1)))
    }

    fn outward(src: Address, sport: u16) -> Packet {
        Packet::new(src, addr(0x0b000000), Protocol::Tcp, sport, 80)
    }

    #[test]
    fn outbound_rewrites_source() {
        let ext = addr(0x0a000001);
        let mut nat = Nat::new(ext);
        let p = nat.outbound(outward(addr(0xc0a80001), 5555));
        assert_eq!(p.src, ext);
        assert_eq!(p.src_port, Nat::PORT_BASE);
        assert_eq!(nat.active_bindings(), 1);
    }

    #[test]
    fn same_flow_keeps_same_port() {
        let mut nat = Nat::new(addr(0x0a000001));
        let p1 = nat.outbound(outward(addr(0xc0a80001), 5555));
        let p2 = nat.outbound(outward(addr(0xc0a80001), 5555));
        assert_eq!(p1.src_port, p2.src_port);
        assert_eq!(nat.active_bindings(), 1);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = Nat::new(addr(0x0a000001));
        let p1 = nat.outbound(outward(addr(0xc0a80001), 5555));
        let p2 = nat.outbound(outward(addr(0xc0a80002), 5555));
        assert_ne!(p1.src_port, p2.src_port);
        assert_eq!(nat.active_bindings(), 2);
    }

    #[test]
    fn inbound_follows_binding() {
        let ext = addr(0x0a000001);
        let internal = addr(0xc0a80001);
        let mut nat = Nat::new(ext);
        let out = nat.outbound(outward(internal, 5555));
        // reply comes back to the external (addr, port)
        let reply = Packet::new(addr(0x0b000000), ext, Protocol::Tcp, 80, out.src_port);
        let translated = nat.inbound(reply).expect("binding should exist");
        assert_eq!(translated.dst, internal);
        assert_eq!(translated.dst_port, 5555);
    }

    #[test]
    fn unsolicited_inbound_is_dropped() {
        let ext = addr(0x0a000001);
        let nat = Nat::new(ext);
        let unsolicited = Packet::new(addr(0x0b000000), ext, Protocol::Tcp, 80, 33333);
        assert!(nat.inbound(unsolicited).is_none());
    }

    #[test]
    fn inbound_to_wrong_address_is_rejected() {
        let nat = Nat::new(addr(0x0a000001));
        let stray = Packet::new(addr(0x0b000000), addr(0x0c000000), Protocol::Tcp, 80, 20000);
        assert!(nat.inbound(stray).is_none());
    }
}

//! Offline vendored JSON serializer/deserializer over the workspace's
//! serde facade.
//!
//! Emits RFC 8259 JSON. Output is fully deterministic: struct fields render
//! in declaration order, map entries in the order the facade produced them
//! (sorted for hash containers), and float formatting uses Rust's shortest
//! round-trip `Display`, which is platform-independent — the property the
//! sweep runner's byte-identical-output guarantee rests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// A JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(items.len(), '[', ']', indent, depth, out, |i, depth, out| {
                write_value(&items[i], indent, depth, out);
            });
        }
        Value::Map(entries) => {
            write_bracketed(entries.len(), '{', '}', indent, depth, out, |i, depth, out| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth, out);
            });
        }
    }
}

fn write_bracketed(
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(usize, usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(i, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!("unexpected `{}` at byte {}", c as char, self.pos))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy an unescaped run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid code point".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid code point".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| core::str::from_utf8(b).ok())
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let v = parse_value(src).unwrap();
            let mut out = String::new();
            write_value(&v, None, 0, &mut out);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse_value(src).unwrap();
        let mut out = String::new();
        write_value(&v, None, 0, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::Map(vec![
            ("k".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            ("s".into(), Value::Str("v".into())),
        ]);
        let mut out = String::new();
        write_value(&v, Some(2), 0, &mut out);
        assert_eq!(out, "{\n  \"k\": [\n    1,\n    2\n  ],\n  \"s\": \"v\"\n}");
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse_value(r#""aA😀\t""#).unwrap();
        assert_eq!(v, Value::Str("aA😀\t".into()));
        let mut out = String::new();
        write_value(&Value::Str("tab\tquote\"".into()), None, 0, &mut out);
        assert_eq!(out, r#""tab\tquote\"""#);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let m: std::collections::BTreeMap<String, Vec<u32>> =
            [("xs".to_string(), vec![1, 2, 3])].into_iter().collect();
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"xs":[1,2,3]}"#);
        let back: std::collections::BTreeMap<String, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}

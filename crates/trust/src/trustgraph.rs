//! Pairwise and transitive trust.
//!
//! "Most users would prefer to have nothing to do with the bad guys"
//! (§V.B). The trust graph records who trusts whom and how much, and
//! derives indirect trust along paths with multiplicative decay — enough
//! structure for receivers to implement "choose with whom they interact"
//! and for trust-aware firewalls to source their allow sets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A directed trust graph over `u64` party ids, weights in `[0, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustGraph {
    edges: BTreeMap<u64, BTreeMap<u64, f64>>,
    /// Per-hop decay applied when deriving transitive trust.
    pub decay: f64,
}

impl TrustGraph {
    /// An empty graph with the given transitive decay (e.g. 0.8).
    pub fn new(decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1]");
        TrustGraph { edges: BTreeMap::new(), decay }
    }

    /// Record that `from` trusts `to` at `level` (clamped to `[0,1]`).
    pub fn trust(&mut self, from: u64, to: u64, level: f64) {
        self.edges.entry(from).or_default().insert(to, level.clamp(0.0, 1.0));
    }

    /// Remove a trust edge (betrayal, revocation).
    pub fn revoke(&mut self, from: u64, to: u64) {
        if let Some(m) = self.edges.get_mut(&from) {
            m.remove(&to);
        }
    }

    /// Direct trust, if declared.
    pub fn direct(&self, from: u64, to: u64) -> Option<f64> {
        self.edges.get(&from)?.get(&to).copied()
    }

    /// Derived trust: the best product-with-decay over simple paths up to
    /// `max_hops`. Direct edges are returned as-is.
    pub fn derived(&self, from: u64, to: u64, max_hops: usize) -> f64 {
        if from == to {
            return 1.0;
        }
        // Dijkstra-like best-product search; deterministic via BTreeMap order.
        let mut best: BTreeMap<u64, f64> = BTreeMap::new();
        best.insert(from, 1.0);
        let mut frontier = vec![(from, 1.0, 0usize)];
        let mut answer: f64 = 0.0;
        while let Some((node, score, hops)) = frontier.pop() {
            if hops >= max_hops {
                continue;
            }
            let Some(out) = self.edges.get(&node) else { continue };
            for (&next, &w) in out {
                let factor = if hops == 0 { w } else { w * self.decay };
                let s = score * factor;
                if next == to {
                    answer = answer.max(s);
                }
                let entry = best.get(&next).copied().unwrap_or(0.0);
                if s > entry + 1e-12 {
                    best.insert(next, s);
                    frontier.push((next, s, hops + 1));
                }
            }
        }
        answer
    }

    /// Every party `from` trusts at or above `threshold` within `max_hops`
    /// — the allow set a trust-mediated firewall installs.
    pub fn trusted_set(&self, from: u64, threshold: f64, max_hops: usize) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .edges
            .values()
            .flat_map(|m| m.keys().copied())
            .chain(self.edges.keys().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter(|&id| id != from && self.derived(from, id, max_hops) >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_trust_roundtrip() {
        let mut g = TrustGraph::new(0.8);
        g.trust(1, 2, 0.9);
        assert_eq!(g.direct(1, 2), Some(0.9));
        assert_eq!(g.direct(2, 1), None);
        g.revoke(1, 2);
        assert_eq!(g.direct(1, 2), None);
    }

    #[test]
    fn levels_are_clamped() {
        let mut g = TrustGraph::new(0.8);
        g.trust(1, 2, 7.0);
        g.trust(1, 3, -1.0);
        assert_eq!(g.direct(1, 2), Some(1.0));
        assert_eq!(g.direct(1, 3), Some(0.0));
    }

    #[test]
    fn transitive_trust_decays() {
        let mut g = TrustGraph::new(0.5);
        g.trust(1, 2, 1.0);
        g.trust(2, 3, 1.0);
        // path 1->2->3: 1.0 * (1.0 * 0.5) = 0.5
        let d = g.derived(1, 3, 4);
        assert!((d - 0.5).abs() < 1e-9, "derived {d}");
    }

    #[test]
    fn best_path_wins() {
        let mut g = TrustGraph::new(0.9);
        g.trust(1, 2, 0.2);
        g.trust(2, 4, 1.0);
        g.trust(1, 3, 0.9);
        g.trust(3, 4, 0.9);
        // via 3: 0.9 * 0.9*0.9 = 0.729 beats via 2: 0.2 * 0.9
        let d = g.derived(1, 4, 4);
        assert!((d - 0.729).abs() < 1e-9, "derived {d}");
    }

    #[test]
    fn hop_limit_cuts_long_chains() {
        let mut g = TrustGraph::new(1.0);
        for i in 0..5 {
            g.trust(i, i + 1, 1.0);
        }
        assert!(g.derived(0, 5, 5) > 0.99);
        assert_eq!(g.derived(0, 5, 3), 0.0);
    }

    #[test]
    fn self_trust_is_total() {
        let g = TrustGraph::new(0.5);
        assert_eq!(g.derived(9, 9, 1), 1.0);
    }

    #[test]
    fn unknown_parties_are_untrusted() {
        let g = TrustGraph::new(0.5);
        assert_eq!(g.derived(1, 2, 4), 0.0);
    }

    #[test]
    fn trusted_set_threshold() {
        let mut g = TrustGraph::new(0.5);
        g.trust(1, 2, 1.0);
        g.trust(2, 3, 1.0); // derived 0.5
        g.trust(2, 4, 0.2); // derived 0.1
        assert_eq!(g.trusted_set(1, 0.5, 4), vec![2, 3]);
        assert_eq!(g.trusted_set(1, 0.95, 4), vec![2]);
        assert_eq!(g.trusted_set(1, 0.05, 4), vec![2, 3, 4]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = TrustGraph::new(0.9);
        g.trust(1, 2, 1.0);
        g.trust(2, 1, 1.0);
        g.trust(2, 3, 0.5);
        let d = g.derived(1, 3, 10);
        assert!(d > 0.0 && d <= 0.5);
    }
}

//! # tussle — a playground for run-time tussle in network architecture
//!
//! A comprehensive reproduction of **Clark, Wroclawski, Sollins & Braden,
//! "Tussle in Cyberspace: Defining Tomorrow's Internet"** (SIGCOMM 2002 /
//! IEEE/ACM ToN 2005) as a Rust workspace: the paper's design principles
//! as executable analyzers, every mechanism it names as a working
//! implementation, and every scenario it narrates as a seeded experiment.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event engine.
//! * [`net`] — packets, links, FIBs, firewalls, NAT, tunnels, QoS.
//! * [`routing`] — link-state, path-vector (Gao–Rexford), paid source
//!   routing, resilient overlays, information-exposure metrics.
//! * [`econ`] — money, the value-flow ledger, pricing, contracts, markets
//!   with switching costs, fear-and-greed investment.
//! * [`game`] — Nash equilibria, fictitious play, replicator dynamics,
//!   Vickrey auctions, the congestion-compliance game.
//! * [`policy`] — a KeyNote/COPS-flavoured policy language with a bounded
//!   ontology and delegation.
//! * [`trust`] — identity framework, trust graphs, third-party mediators,
//!   firewall control-point negotiation.
//! * [`names`] — DNS-like naming, resolver perversion, trademark disputes,
//!   and the separated design.
//! * [`actors`] — actor-network dynamics: churn, durability, freezing,
//!   disruption.
//! * [`core`] — stakeholders, tussle spaces, the mechanism/counter
//!   catalog, escalation ladders, principle analyzers, reporting.
//! * [`experiments`] — E1–E14, the evaluation the paper never ran.
//!
//! ## Quickstart
//!
//! ```
//! use tussle::core::{EscalationLadder, Mechanism};
//!
//! // Play the §VI.A encryption tussle to quiescence.
//! let ladder = EscalationLadder::play_to_the_end(Mechanism::QosPortBased, 10);
//! assert_eq!(ladder.final_mechanism(), Mechanism::Steganography);
//! ```
//!
//! ```
//! use tussle::experiments;
//!
//! // Reproduce the §VII QoS deployment post-mortem.
//! let report = experiments::e10_qos::run(42);
//! assert!(report.shape_holds);
//! println!("{}", report.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tussle_actors as actors;
pub use tussle_core as core;
pub use tussle_econ as econ;
pub use tussle_experiments as experiments;
pub use tussle_game as game;
pub use tussle_names as names;
pub use tussle_net as net;
pub use tussle_policy as policy;
pub use tussle_routing as routing;
pub use tussle_sim as sim;
pub use tussle_trust as trust;

//! # tussle-policy — a policy language with a bounded ontology
//!
//! §II.B: "Recently, systems have been proposed that capture differing user
//! interests using 'policy languages'. ... Policy languages serve two
//! functions. Explicitly, they allow actors to express their own
//! constraints and requirements within a larger actor space. Implicitly,
//! by imposing an ontology on what can be expressed, they bound the tussle
//! that can be expressed within defined limits."
//!
//! Both functions are implemented literally:
//!
//! * the **expression language** ([`lexer`], [`parser`], [`ast`]) lets an
//!   actor write conditions over request attributes
//!   (`action == "connect" && dst_port in [80, 443]`);
//! * the **ontology** ([`ontology`]) is the declared attribute vocabulary;
//!   conditions referencing attributes outside it are *rejected*, which is
//!   exactly how a policy language bounds expressible tussle — and the
//!   paper's warning that this "can be defeating, if it prevents the
//!   system from capturing ... tussles that were not anticipated" is
//!   testable as an `UnknownAttribute` error;
//! * the **compliance engine** ([`engine`]) is KeyNote-shaped: trusted
//!   roots, assertions `issuer → subject if condition`, bounded
//!   delegation, and first-match rule lists for middlebox policies.
//!
//! The language deliberately does *nothing* to resolve tussles: "the
//! existence of a policy language does nothing to resolve tussles ... It
//! simply provides a first step toward accommodation" (§II.B). It decides
//! requests; it does not align interests.
//!
//! ## Example
//!
//! ```
//! use tussle_policy::{parse_expr, Ontology, Request};
//!
//! let rule = parse_expr("!anonymous && dst_port in [80, 443]").unwrap();
//! let request = Request::new().with("anonymous", false).with("dst_port", 443i64);
//! assert_eq!(rule.matches(&request, &Ontology::network()), Ok(true));
//!
//! // the ontology bound: unanticipated tussles cannot be expressed
//! let outside = parse_expr("carbon_footprint > 9000").unwrap();
//! assert!(outside.matches(&request, &Ontology::network()).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cops;
pub mod engine;
mod errors;
pub mod lexer;
pub mod ontology;
pub mod p3p;
pub mod parser;
pub mod value;

pub use ast::{CmpOp, EvalError, Expr};
pub use cops::{DecisionPath, DecisionPoint, EnforcementPoint, PdpError};
pub use engine::{Assertion, ComplianceError, PolicyEngine, Principal, Rule, RuleAction, RuleSet};
pub use lexer::{LexError, Token};
pub use ontology::{AttrType, Ontology, OntologyError};
pub use p3p::{acceptable, SitePolicy, UserPreferences};
pub use parser::{parse_expr, ParseError};
pub use value::{Request, Value};

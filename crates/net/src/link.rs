//! Links between nodes.
//!
//! Each link has propagation latency, a bandwidth that converts packet size
//! into serialization delay, an administrative up/down state, and a
//! [`FaultInjector`] for loss, corruption and rate limiting — the same
//! knobs smoltcp's example harness exposes.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use tussle_sim::{FaultInjector, SimTime};

/// Index of a link in a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Usable as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (index into the network's link table).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation latency.
    pub latency: SimTime,
    /// Bandwidth in bits per second (serialization delay = size/bandwidth).
    pub bandwidth_bps: u64,
    /// Administrative and physical state.
    pub up: bool,
    /// Loss/corruption/rate-limit model.
    pub faults: FaultInjector,
    /// Monetary cost per megabyte carried, in micro-currency. Routing
    /// policies and the economics engine read this.
    pub cost_per_mb: u64,
    /// Opt-in FIFO queue: when set, packets serialize one at a time and a
    /// packet whose queueing delay would exceed the cap is dropped
    /// (congestion loss). `None` models an unloaded link (the default).
    pub queue_delay_cap: Option<SimTime>,
    /// When the transmitter frees up (queue state; meaningful only with
    /// `queue_delay_cap`).
    busy_until: SimTime,
}

/// Outcome of attempting to enqueue a packet on a queued link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueOutcome {
    /// Accepted; carries the total delay (queueing + serialization +
    /// propagation).
    Sent {
        /// Total one-way delay experienced.
        delay: SimTime,
        /// The queueing component alone.
        queued_for: SimTime,
    },
    /// The queue cap would be exceeded: congestion drop.
    Overflow,
}

impl Link {
    /// A healthy link with the given latency and bandwidth.
    pub fn new(id: LinkId, a: NodeId, b: NodeId, latency: SimTime, bandwidth_bps: u64) -> Self {
        assert!(a != b, "self-links are not allowed");
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        Link {
            id,
            a,
            b,
            latency,
            bandwidth_bps,
            up: true,
            faults: FaultInjector::none(),
            cost_per_mb: 0,
            queue_delay_cap: None,
            busy_until: SimTime::ZERO,
        }
    }

    /// Enable the FIFO queue with the given maximum tolerated queueing
    /// delay.
    pub fn with_queue(mut self, delay_cap: SimTime) -> Self {
        self.queue_delay_cap = Some(delay_cap);
        self
    }

    /// The endpoint opposite `from`, or `None` if `from` is not on the link.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Does the link connect `x` and `y` (in either direction)?
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// One-way delay for a packet of `size_bytes`: propagation plus
    /// serialization (unloaded-link model).
    pub fn transit_delay(&self, size_bytes: usize) -> SimTime {
        let ser_us = (size_bytes as u64 * 8).saturating_mul(1_000_000) / self.bandwidth_bps;
        self.latency.saturating_add(SimTime::from_micros(ser_us))
    }

    /// Transmit through the FIFO queue at absolute time `now`. Without a
    /// queue cap this degenerates to [`Link::transit_delay`] with zero
    /// queueing. Mutates the transmitter-busy state on success.
    pub fn enqueue_at(&mut self, now: SimTime, size_bytes: usize) -> QueueOutcome {
        let ser_us = (size_bytes as u64 * 8).saturating_mul(1_000_000) / self.bandwidth_bps;
        let ser = SimTime::from_micros(ser_us);
        match self.queue_delay_cap {
            None => QueueOutcome::Sent {
                delay: self.latency.saturating_add(ser),
                queued_for: SimTime::ZERO,
            },
            Some(cap) => {
                let start = self.busy_until.max(now);
                let queued_for = start.since(now);
                if queued_for > cap {
                    return QueueOutcome::Overflow;
                }
                self.busy_until = start.saturating_add(ser);
                QueueOutcome::Sent {
                    delay: queued_for.saturating_add(ser).saturating_add(self.latency),
                    queued_for,
                }
            }
        }
    }

    /// Reset queue state (e.g. between experiment runs).
    pub fn reset_queue(&mut self) {
        self.busy_until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(LinkId(0), NodeId(1), NodeId(2), SimTime::from_millis(10), 1_000_000)
    }

    #[test]
    fn endpoints() {
        let l = link();
        assert_eq!(l.other_end(NodeId(1)), Some(NodeId(2)));
        assert_eq!(l.other_end(NodeId(2)), Some(NodeId(1)));
        assert_eq!(l.other_end(NodeId(3)), None);
        assert!(l.connects(NodeId(2), NodeId(1)));
        assert!(!l.connects(NodeId(1), NodeId(3)));
    }

    #[test]
    fn transit_delay_adds_serialization() {
        let l = link(); // 1 Mbps, 10 ms latency
                        // 1250 bytes = 10_000 bits = 10 ms at 1 Mbps
        let d = l.transit_delay(1250);
        assert_eq!(d, SimTime::from_millis(20));
        // zero-size packet: pure propagation
        assert_eq!(l.transit_delay(0), SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn no_self_links() {
        Link::new(LinkId(0), NodeId(1), NodeId(1), SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn no_zero_bandwidth() {
        Link::new(LinkId(0), NodeId(1), NodeId(2), SimTime::ZERO, 0);
    }
}

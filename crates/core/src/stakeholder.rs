//! Stakeholders and interests.
//!
//! §I: "At a minimum these players include users, who want to run
//! applications and interact over the Internet; commercial ISPs, who sell
//! Internet service with the goal of profit; private sector network
//! providers ...; governments, who enforce laws ...; intellectual property
//! rights holders ...; and providers of content and higher level services."

use serde::{Deserialize, Serialize};

/// The classes of player the paper enumerates (§I), plus the designers
/// themselves, who "should not for a moment think we somehow sit outside
/// or above the tussle" (§II.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StakeholderKind {
    /// End users running applications.
    User,
    /// Profit-seeking access/transit providers.
    CommercialIsp,
    /// Organizations running network infrastructure for their own ends.
    PrivateNetworkProvider,
    /// Law enforcement, regulators, legislatures.
    Government,
    /// Intellectual-property rights holders.
    RightsHolder,
    /// Content and higher-level service providers.
    ContentProvider,
    /// The technologists: actors with "the power to create the technology".
    Designer,
}

/// Interests stakeholders pursue; tussle is adverse interests meeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interest {
    /// Communicate without observation.
    Privacy,
    /// Observe or constrain others' traffic (wiretap, filtering, pricing
    /// enforcement).
    Observation,
    /// Maximize revenue.
    Revenue,
    /// Minimize price paid.
    LowPrice,
    /// Deploy new, unproven applications.
    Innovation,
    /// Keep running services stable and controlled.
    Control,
    /// Be unreachable by attackers.
    Security,
    /// Reach anyone (universal transparent connectivity).
    Transparency,
    /// Act without attribution.
    Anonymity,
    /// Hold counterparties answerable.
    Accountability,
}

impl Interest {
    /// The paper's central structural fact: some interests are *inherently*
    /// adverse — no mechanism aligns them; the tussle can only be shaped.
    pub fn adverse_to(self, other: Interest) -> bool {
        use Interest::*;
        matches!(
            (self, other),
            (Privacy, Observation)
                | (Observation, Privacy)
                | (Revenue, LowPrice)
                | (LowPrice, Revenue)
                | (Innovation, Control)
                | (Control, Innovation)
                | (Security, Transparency)
                | (Transparency, Security)
                | (Anonymity, Accountability)
                | (Accountability, Anonymity)
        )
    }
}

/// A named stakeholder with a kind and interests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stakeholder {
    /// Stable id.
    pub id: u64,
    /// Which class of player.
    pub kind: StakeholderKind,
    /// Display name.
    pub name: String,
    /// What this player wants.
    pub interests: Vec<Interest>,
}

impl Stakeholder {
    /// Construct a stakeholder.
    pub fn new(id: u64, kind: StakeholderKind, name: &str, interests: Vec<Interest>) -> Self {
        Stakeholder { id, kind, name: name.to_owned(), interests }
    }

    /// Interests of `self` that are adverse to interests of `other` —
    /// nonempty means these two are in tussle.
    pub fn conflicts_with(&self, other: &Stakeholder) -> Vec<(Interest, Interest)> {
        let mut out = Vec::new();
        for &a in &self.interests {
            for &b in &other.interests {
                if a.adverse_to(b) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The default interest profile for a stakeholder kind, per §I's
    /// description of each player.
    pub fn typical(id: u64, kind: StakeholderKind) -> Stakeholder {
        use Interest::*;
        let (name, interests): (&str, Vec<Interest>) = match kind {
            StakeholderKind::User => {
                ("user", vec![Privacy, LowPrice, Innovation, Transparency, Anonymity])
            }
            StakeholderKind::CommercialIsp => ("isp", vec![Revenue, Observation, Control]),
            StakeholderKind::PrivateNetworkProvider => ("private-net", vec![Control, Security]),
            StakeholderKind::Government => ("government", vec![Observation, Accountability]),
            StakeholderKind::RightsHolder => ("rights-holder", vec![Observation, Control, Revenue]),
            StakeholderKind::ContentProvider => {
                ("content", vec![Revenue, Innovation, Transparency])
            }
            StakeholderKind::Designer => ("designer", vec![Innovation, Transparency]),
        };
        Stakeholder::new(id, kind, name, interests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Interest::*;

    #[test]
    fn adverse_pairs_are_symmetric() {
        let pairs = [
            (Privacy, Observation),
            (Revenue, LowPrice),
            (Innovation, Control),
            (Security, Transparency),
            (Anonymity, Accountability),
        ];
        for (a, b) in pairs {
            assert!(a.adverse_to(b), "{a:?} vs {b:?}");
            assert!(b.adverse_to(a), "{b:?} vs {a:?}");
        }
        assert!(!Privacy.adverse_to(LowPrice));
        assert!(!Revenue.adverse_to(Observation));
    }

    #[test]
    fn users_and_isps_tussle() {
        let user = Stakeholder::typical(1, StakeholderKind::User);
        let isp = Stakeholder::typical(2, StakeholderKind::CommercialIsp);
        let conflicts = user.conflicts_with(&isp);
        assert!(conflicts.contains(&(Privacy, Observation)));
        assert!(conflicts.contains(&(LowPrice, Revenue)));
        assert!(conflicts.contains(&(Innovation, Control)));
    }

    #[test]
    fn users_and_government_tussle_over_privacy_and_anonymity() {
        let user = Stakeholder::typical(1, StakeholderKind::User);
        let gov = Stakeholder::typical(2, StakeholderKind::Government);
        let conflicts = user.conflicts_with(&gov);
        assert!(conflicts.contains(&(Privacy, Observation)));
        assert!(conflicts.contains(&(Anonymity, Accountability)));
    }

    #[test]
    fn aligned_parties_have_no_conflicts() {
        let designer = Stakeholder::typical(1, StakeholderKind::Designer);
        let content = Stakeholder::typical(2, StakeholderKind::ContentProvider);
        assert!(designer.conflicts_with(&content).is_empty());
    }

    #[test]
    fn rights_holders_vs_users() {
        // "Music lovers of a certain bent want to exchange recordings with
        // each other, but the rights holders want to stop them." (§I)
        let user = Stakeholder::typical(1, StakeholderKind::User);
        let rh = Stakeholder::typical(2, StakeholderKind::RightsHolder);
        assert!(!user.conflicts_with(&rh).is_empty());
    }
}

//! Cross-thread determinism matrix: every experiment × 8 seeds must fold
//! to the same `RunDigest` regardless of worker-thread count, in both the
//! plain sweep and the chaos campaign.
//!
//! The byte-compare canaries (whole-report JSON equality) live in
//! `tests/experiments_all.rs` and the crate-level unit tests; this matrix
//! is the structural check over the full registry, and its failure message
//! names the exact experiment (and intensity) that diverged.

use tussle::experiments::{run_chaos, run_sweep, ChaosConfig, SweepConfig};

const SEEDS: u64 = 8;
const BASE_SEED: u64 = 2002;
const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn sweep_digests_agree_across_thread_counts_for_every_experiment() {
    // threads=1 is the reference schedule; the others must match it.
    let mut reference: Option<Vec<(String, String)>> = None;
    for threads in THREADS {
        let cfg =
            SweepConfig { seeds: SEEDS, base_seed: BASE_SEED, only: None, threads: Some(threads) };
        let report = run_sweep(&cfg).expect("sweep runs");
        assert_eq!(report.experiments.len(), 17);
        let digests: Vec<(String, String)> =
            report.experiments.iter().map(|e| (e.id.clone(), e.digest.clone())).collect();
        for (id, d) in &digests {
            assert_eq!(d.len(), 16, "{id}: digest '{d}' is not 16 hex chars");
            assert!(d.chars().all(|c| c.is_ascii_hexdigit()), "{id}: digest '{d}' is not hex");
        }
        match &reference {
            None => reference = Some(digests),
            Some(reference) => {
                for ((id, want), (_, got)) in reference.iter().zip(&digests) {
                    assert_eq!(
                        want,
                        got,
                        "{id}: sweep digest diverged between 1 and {threads} threads \
                         (seeds {BASE_SEED}..{})",
                        BASE_SEED + SEEDS
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_digests_agree_across_thread_counts_for_every_experiment() {
    // One nonzero intensity keeps the matrix inside the time budget while
    // still exercising the ambient-fault path; intensity coverage itself is
    // the chaos crate tests' job.
    let mut reference: Option<Vec<(String, f64, String)>> = None;
    for threads in THREADS {
        let cfg = ChaosConfig {
            intensities: vec![0.6],
            seeds: SEEDS,
            base_seed: BASE_SEED,
            only: None,
            threads: Some(threads),
        };
        let report = run_chaos(&cfg).expect("chaos campaign runs");
        assert_eq!(report.experiments.len(), 17);
        let digests: Vec<(String, f64, String)> = report
            .experiments
            .iter()
            .flat_map(|e| {
                e.intensities.iter().map(|s| (e.id.clone(), s.intensity, s.sweep.digest.clone()))
            })
            .collect();
        match &reference {
            None => reference = Some(digests),
            Some(reference) => {
                for ((id, intensity, want), (_, _, got)) in reference.iter().zip(&digests) {
                    assert_eq!(
                        want,
                        got,
                        "{id}@{intensity}: chaos digest diverged between 1 and {threads} \
                         threads (seeds {BASE_SEED}..{})",
                        BASE_SEED + SEEDS
                    );
                }
            }
        }
    }
}

//! Application design guidelines.
//!
//! §VI.A: "If application designers want to preserve choice and end user
//! empowerment, they should be given advice about how to design
//! applications to achieve this goal. This observation suggests that we
//! should generate 'application design guidelines' that would help
//! designers avoid pitfalls, and deal with the tussles of success."
//!
//! [`AppDesign`] describes an application's architecture choices;
//! [`AppDesign::review`] returns the guideline violations with the paper
//! section each one comes from. The guidelines are exactly the paper's:
//! let users pick servers and third parties, don't key semantics on
//! hideable fields, design the value flow, support encryption, make
//! in-network features user-controlled, and plan for failure reporting.

use serde::{Deserialize, Serialize};

/// An application's tussle-relevant design choices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppDesign {
    /// Application name.
    pub name: String,
    /// Can the user select which server/provider they use (§IV.B mail
    /// example)?
    pub user_selects_server: bool,
    /// Can the parties select the third parties that mediate (§V.B)?
    pub user_selects_mediators: bool,
    /// Does any network element infer semantics from well-known ports
    /// (§IV.A — the entanglement anti-pattern)?
    pub keys_on_well_known_ports: bool,
    /// Does the protocol work end-to-end encrypted (§VI.A)?
    pub works_encrypted: bool,
    /// If value must move between parties, is the payment/compensation
    /// protocol designed (§IV.C "if this value flow requires a protocol,
    /// design it")?
    pub value_flow_designed: bool,
    /// Whether the application needs inter-party compensation at all.
    pub needs_value_flow: bool,
    /// Are in-network "enhancements" invoked only under user control
    /// (§VI.A "the user can control what features 'in the network' are
    /// invoked")?
    pub network_features_user_controlled: bool,
    /// Does a failed interaction produce a report usable by a
    /// non-expert (§VI.A "report the problem to the right person in the
    /// right language")?
    pub reports_failures_usably: bool,
}

/// One guideline violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Paper section the guideline comes from.
    pub section: String,
    /// What is wrong.
    pub finding: String,
}

impl AppDesign {
    /// A design that follows every guideline (useful as a baseline in
    /// tests and for builder-style modification).
    pub fn exemplary(name: &str) -> Self {
        AppDesign {
            name: name.to_owned(),
            user_selects_server: true,
            user_selects_mediators: true,
            keys_on_well_known_ports: false,
            works_encrypted: true,
            value_flow_designed: true,
            needs_value_flow: false,
            network_features_user_controlled: true,
            reports_failures_usably: true,
        }
    }

    /// Review the design against the paper's guidelines.
    pub fn review(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        if !self.user_selects_server {
            v.push(Violation {
                section: "IV.B".to_owned(),
                finding: format!(
                    "{}: users cannot choose their server/provider; choice drives competition \
                     and disciplines the marketplace",
                    self.name
                ),
            });
        }
        if !self.user_selects_mediators {
            v.push(Violation {
                section: "V.B".to_owned(),
                finding: format!(
                    "{}: parties cannot select the third parties that mediate the interaction",
                    self.name
                ),
            });
        }
        if self.keys_on_well_known_ports {
            v.push(Violation {
                section: "IV.A".to_owned(),
                finding: format!(
                    "{}: network semantics keyed on well-known ports entangle unrelated \
                     tussles; use explicit header fields",
                    self.name
                ),
            });
        }
        if !self.works_encrypted {
            v.push(Violation {
                section: "VI.A".to_owned(),
                finding: format!(
                    "{}: the protocol breaks under end-to-end encryption, so users must choose \
                     between the application and their privacy",
                    self.name
                ),
            });
        }
        if self.needs_value_flow && !self.value_flow_designed {
            v.push(Violation {
                section: "IV.C".to_owned(),
                finding: format!(
                    "{}: compensation must flow between parties but no value-flow protocol is \
                     designed — expect the QoS/multicast deployment failure",
                    self.name
                ),
            });
        }
        if !self.network_features_user_controlled {
            v.push(Violation {
                section: "VI.A".to_owned(),
                finding: format!(
                    "{}: in-network enhancements are invoked without user control",
                    self.name
                ),
            });
        }
        if !self.reports_failures_usably {
            v.push(Violation {
                section: "VI.A".to_owned(),
                finding: format!(
                    "{}: failures of transparency are not reported in a form the affected \
                     person can act on",
                    self.name
                ),
            });
        }
        v
    }

    /// Guideline compliance in `[0, 1]`.
    pub fn score(&self) -> f64 {
        let checks = 7.0;
        1.0 - self.review().len() as f64 / checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplary_design_is_clean() {
        let d = AppDesign::exemplary("good-app");
        assert!(d.review().is_empty());
        assert_eq!(d.score(), 1.0);
    }

    #[test]
    fn the_2002_web_scores_poorly() {
        // HTTP circa 2002: port 80 semantics, no user mediator choice,
        // plenty of cleartext, cache insertion without consent.
        let web = AppDesign {
            name: "web-2002".into(),
            user_selects_server: true,
            user_selects_mediators: false,
            keys_on_well_known_ports: true,
            works_encrypted: false,
            value_flow_designed: false,
            needs_value_flow: false,
            network_features_user_controlled: false,
            reports_failures_usably: false,
        };
        let violations = web.review();
        assert_eq!(violations.len(), 5);
        assert!(web.score() < 0.4);
        let sections: Vec<_> = violations.iter().map(|v| v.section.as_str()).collect();
        assert!(sections.contains(&"IV.A"));
        assert!(sections.contains(&"VI.A"));
    }

    #[test]
    fn value_flow_only_checked_when_needed() {
        let mut d = AppDesign::exemplary("p2p");
        d.needs_value_flow = true;
        d.value_flow_designed = false;
        assert_eq!(d.review().len(), 1);
        assert_eq!(d.review()[0].section, "IV.C");
        d.value_flow_designed = true;
        assert!(d.review().is_empty());
    }

    #[test]
    fn email_the_papers_good_example_passes_choice() {
        // §IV.B: "the design of the mail system allows the user to select
        // his SMTP server and his POP server"
        let mut mail = AppDesign::exemplary("smtp+pop");
        mail.user_selects_server = true;
        assert!(mail.review().iter().all(|v| v.section != "IV.B"));
    }

    #[test]
    fn score_is_monotone_in_violations() {
        let good = AppDesign::exemplary("a");
        let mut worse = AppDesign::exemplary("b");
        worse.works_encrypted = false;
        let mut worst = worse.clone();
        worst.user_selects_server = false;
        assert!(good.score() > worse.score());
        assert!(worse.score() > worst.score());
    }
}

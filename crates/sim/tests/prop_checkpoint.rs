//! Property tests for the checkpoint/restore subsystem: the replay
//! frontier must be an exact, tamper-evident fixpoint of the run.

use proptest::prelude::*;
use tussle_sim::checkpoint::{self, CheckpointConfig, CheckpointPolicy, Snapshottable};
use tussle_sim::{Engine, Fnv1a, RunDigest, SimRng, SimTime, Snapshot};

/// Rolls accumulated by the property workload — a component whose digest
/// is exactly its contents.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Rolls(Vec<u64>);

impl Snapshottable for Rolls {
    fn component(&self) -> &'static str {
        "prop-rolls"
    }

    fn state_digest(&self) -> RunDigest {
        let mut h = Fnv1a::new();
        h.write_u64(self.0.len() as u64);
        for &v in &self.0 {
            h.write_u64(v);
        }
        RunDigest(h.finish())
    }
}

/// A self-rescheduling workload whose every event draws randomness,
/// traces, and bumps a metric — enough to exercise every frontier field.
fn workload(seed: u64, chains: usize) -> Engine<Rolls> {
    fn link(w: &mut Rolls, ctx: &mut tussle_sim::Ctx<Rolls>) {
        let roll = ctx.rng.range(1..64u64);
        w.0.push(roll);
        ctx.trace("prop.link", format!("roll {roll}"));
        ctx.metrics.incr("prop.links");
        if w.0.len() < 60 {
            ctx.schedule_in(SimTime::from_micros(roll), link);
        }
    }
    let mut eng = Engine::new(Rolls::default(), seed);
    for _ in 0..chains {
        eng.schedule_at(SimTime::ZERO, link);
    }
    eng
}

proptest! {
    /// Seeking the rng stream is exact: after arbitrary draws, recording
    /// `word_pos` and seeking a fresh stream there reproduces the exact
    /// upcoming draw sequence.
    #[test]
    fn rng_word_pos_seek_roundtrips(
        seed in any::<u64>(),
        burn in 0usize..200,
        probe in 1usize..32,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..burn {
            let _ = rng.range(0..1_000u64);
        }
        let pos = rng.word_pos();
        let expected: Vec<u64> = (0..probe).map(|_| rng.range(0..1_000_000u64)).collect();

        let mut seeked = SimRng::seed_from_u64(seed);
        seeked.set_word_pos(pos);
        prop_assert_eq!(seeked.word_pos(), pos);
        let replayed: Vec<u64> = (0..probe).map(|_| seeked.range(0..1_000_000u64)).collect();
        prop_assert_eq!(replayed, expected);
    }

    /// `every_n_events` fires exactly at multiples of the interval, for
    /// any interval and run length.
    #[test]
    fn policy_fires_exactly_at_interval_multiples(every in 1u64..40, events in 0u64..300) {
        let guard = checkpoint::begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(every)).meta("prop", 1),
        );
        let mut eng: Engine<Vec<u64>> = Engine::new(Vec::new(), 1);
        for i in 0..events {
            eng.schedule_at(SimTime::from_micros(i), |w: &mut Vec<u64>, _| w.push(0));
        }
        eng.run_to_completion();
        let rec = guard.finish();
        prop_assert_eq!(rec.cursor, events);
        let expected: Vec<u64> = (1..=events).filter(|c| c % every == 0).collect();
        let got: Vec<u64> = rec.snapshots.iter().map(|s| s.cursor).collect();
        prop_assert_eq!(got, expected);
    }

    /// The synthetic crash/resume oracle, swept over arbitrary seeds and
    /// kill events: kill a run anywhere, resume from the latest checkpoint
    /// (or genesis), and the stitched run's digest, world and core state
    /// all equal the uninterrupted golden's.
    #[test]
    fn crash_anywhere_resume_is_byte_identical(
        seed in any::<u64>(),
        kill in 1u64..200,
        every in 1u64..20,
    ) {
        let mut golden = workload(seed, 3);
        golden.run_to_completion();

        let guard = checkpoint::begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(every))
                .kill_at(kill)
                .meta("prop", seed),
        );
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut eng = workload(seed, 3);
            eng.run_to_completion();
        }));
        let crash_rec = guard.finish();
        if crashed.is_ok() {
            // A kill event past the run's total events simply never fires.
            prop_assert!(crash_rec.killed_at.is_none());
            prop_assert!(kill > crash_rec.cursor);
        } else {
            prop_assert_eq!(crash_rec.killed_at, Some(kill));
            let latest: Option<Snapshot> = crash_rec.snapshots.last().cloned();

            let verify_cfg = match &latest {
                Some(s) => CheckpointConfig::new(CheckpointPolicy::manual()).verify(s.clone()),
                None => CheckpointConfig::new(CheckpointPolicy::manual()),
            };
            let guard = checkpoint::begin(verify_cfg.meta("prop", seed));
            let mut resumed = workload(seed, 3);
            resumed.run_to_completion();
            let resume_rec = guard.finish();

            if let Some(s) = &latest {
                prop_assert_eq!(resume_rec.verified_at, Some(s.cursor));
                prop_assert!(resume_rec.divergence.is_none(), "{:?}", resume_rec.divergence);
            }
            prop_assert_eq!(resumed.digest(), golden.digest());
            prop_assert_eq!(&resumed.world, &golden.world);
            prop_assert_eq!(resumed.core_state(), golden.core_state());
        }
    }

    /// The queue-shape digest is order-insensitive in capture but
    /// sensitive to any scheduling difference: a run with one extra or
    /// differently-timed pending event has a different digest.
    #[test]
    fn queue_digest_sees_scheduling_differences(
        times in proptest::collection::vec(1u64..10_000, 1..40),
        tweak in 0usize..40,
    ) {
        let build = |times: &[u64]| {
            let mut eng: Engine<Vec<u64>> = Engine::new(Vec::new(), 9);
            for &t in times {
                eng.schedule_at(SimTime::from_micros(t), |w: &mut Vec<u64>, _| w.push(0));
            }
            eng
        };
        let a = build(&times);
        let b = build(&times);
        prop_assert_eq!(a.queue_digest(), b.queue_digest(), "same schedule, same digest");

        // Nudge one pending event's time: the digest must move.
        let mut nudged = times.clone();
        let i = tweak % nudged.len();
        nudged[i] += 10_000;
        let c = build(&nudged);
        prop_assert_ne!(a.queue_digest(), c.queue_digest(), "nudged schedule, same digest");

        // One extra pending event: the digest must move too.
        let mut extra = times.clone();
        extra.push(20_000);
        let d = build(&extra);
        prop_assert_ne!(a.queue_digest(), d.queue_digest(), "extra event, same digest");
    }

    /// An engine checkpoint taken mid-run restores onto a fresh replay at
    /// exactly that frontier, for any cut point.
    #[test]
    fn engine_checkpoint_restores_at_any_cut(seed in any::<u64>(), cut in 1u64..80) {
        let mut golden = workload(seed, 2);
        golden.run(cut);
        let snap = golden.checkpoint();
        golden.run_to_completion();

        let mut resumed = workload(seed, 2);
        resumed.run(cut);
        resumed.restore(&snap).expect("identical replay restores");
        resumed.run_to_completion();
        prop_assert_eq!(resumed.digest(), golden.digest());
        prop_assert_eq!(&resumed.world, &golden.world);
    }
}

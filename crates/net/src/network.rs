//! The network: nodes, links, forwarding state and middleboxes.
//!
//! [`Network::send`] performs hop-by-hop forwarding of one packet and
//! returns a [`DeliveryReport`] saying what happened and where — the
//! substrate for both the experiments and the diagnostics tools. The model
//! is flow-level and synchronous (one call = one packet's fate), with
//! latency accumulated from link delays and QoS treatment; event-driven
//! scenarios schedule calls on the `tussle-sim` engine.

use crate::addr::Address;
use crate::firewall::{Firewall, FirewallAction};
use crate::link::{Link, LinkId};
use crate::node::{Node, NodeId, NodeKind};
use crate::packet::Packet;
use crate::qos::QosPolicy;
use crate::table::Fib;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::OnceLock;
use tussle_sim::{FaultOutcome, Fnv1a, RunDigest, SimRng, SimTime, Snapshottable};

/// Why a packet did not arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// A firewall denied it.
    FirewallDenied,
    /// No forwarding entry matched.
    NoRoute,
    /// Hop budget exhausted.
    TtlExpired,
    /// The only link to the next hop is down.
    LinkDown,
    /// Random loss on a link.
    LinkLoss,
    /// A rate limiter discarded it.
    RateLimited,
    /// A router refused to honor the loose source route (§V.A.4: ISPs see
    /// no benefit in carrying source-routed traffic they are not paid for).
    SourceRouteRefused,
    /// Forwarding loop guard tripped.
    MaxHopsExceeded,
    /// A congested link's queue cap was exceeded.
    QueueOverflow,
}

impl DropReason {
    /// Is this the kind of loss a sender can reasonably retry through —
    /// transient infrastructure trouble rather than a standing policy or
    /// routing decision? Retry-with-backoff in [`crate::traffic`] only
    /// re-sends on transient drops.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            DropReason::LinkDown
                | DropReason::LinkLoss
                | DropReason::RateLimited
                | DropReason::QueueOverflow
        )
    }
}

/// The fate of one packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Did it arrive at a node holding the destination address?
    pub delivered: bool,
    /// Nodes visited, in order, starting with the source.
    pub path: Vec<NodeId>,
    /// Accumulated one-way latency.
    pub latency: SimTime,
    /// Where and why it died, if it did.
    pub drop: Option<(NodeId, DropReason)>,
    /// Whether a link corrupted it en route (delivered but damaged).
    pub corrupted: bool,
    /// The traceback stamp the packet carried on arrival (or at drop), if
    /// any marking router touched it (§II.B; see `crate::traceback`).
    pub mark: Option<crate::packet::Mark>,
}

impl DeliveryReport {
    /// Number of links traversed.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The fault-injector outcome this delivery corresponds to, if its
    /// fate was decided by fault injection: `Drop`/`RateLimited` for the
    /// matching loss reasons, `Corrupt` for a damaged delivery, `Pass`
    /// for a clean one, and `None` for non-fault drops (firewall, routing,
    /// TTL, congestion).
    pub fn fault_outcome(&self) -> Option<FaultOutcome> {
        match self.drop {
            Some((_, DropReason::LinkLoss)) => Some(FaultOutcome::Drop),
            Some((_, DropReason::RateLimited)) => Some(FaultOutcome::RateLimited),
            Some(_) => None,
            None if self.corrupted => Some(FaultOutcome::Corrupt),
            None => Some(FaultOutcome::Pass),
        }
    }
}

/// In BFS scratch, the marker for "not yet visited".
const UNVISITED: u32 = u32::MAX;

/// Multiply–xorshift hasher for the route memo's fixed-width `(u32, u32)`
/// keys. SipHash's DoS resistance buys nothing against our own node ids
/// and costs real time on every forwarded hop.
#[derive(Debug, Default, Clone)]
struct PairHasher(u64);

impl std::hash::Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type PairBuild = std::hash::BuildHasherDefault<PairHasher>;

/// Fast-path state for [`Network::next_hop_toward`]: a generation-stamped
/// memo of first hops plus reusable BFS buffers, so steady-state
/// source-routed forwarding allocates nothing and never repeats a search.
///
/// The memo is only ever read by exact `(from, target)` key and never
/// iterated, so its presence cannot perturb any deterministic order; see
/// DESIGN.md §7 for why that makes it digest-invisible.
#[derive(Debug, Default)]
struct RouteCache {
    /// Topology generation the memo was filled under. A mismatch with
    /// [`Network::generation`] invalidates every memoized hop at once.
    generation: u64,
    /// `(from, target)` → first hop (`None` = unreachable at that
    /// generation). A `HashMap` is safe here precisely because it is only
    /// probed by exact key, never iterated: hash order can't leak into
    /// behavior.
    next_hop: HashMap<(u32, u32), Option<NodeId>, PairBuild>,
    /// BFS predecessor scratch; `UNVISITED` marks untouched slots.
    prev: Vec<u32>,
    /// BFS frontier scratch.
    queue: VecDeque<NodeId>,
}

/// Ambient kill switch: `TUSSLE_ROUTE_CACHE=off|0|false` force-disables the
/// route cache process-wide, for digest-equivalence audits (ci.sh runs one).
fn ambient_route_cache_enabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    !*DISABLED.get_or_init(|| {
        std::env::var("TUSSLE_ROUTE_CACHE")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
            .unwrap_or(false)
    })
}

/// A complete simulated network.
#[derive(Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adj: Vec<Vec<LinkId>>,
    fibs: Vec<Fib>,
    firewalls: BTreeMap<NodeId, Firewall>,
    qos: BTreeMap<NodeId, QosPolicy>,
    max_hops: usize,
    /// Crashed nodes → the incident links this crash took down (only
    /// those that were up), so restore puts back exactly that state.
    crashed: BTreeMap<NodeId, Vec<LinkId>>,
    /// Monotone topology generation: bumped by every mutation that can
    /// change reachability or route selection (link state, new links,
    /// crashes/restores, FIB writes, and any `link_mut` borrow, since the
    /// caller may flip `up`). Stamps [`RouteCache`] entries.
    generation: u64,
    /// `(min endpoint, max endpoint)` → incident link ids in creation
    /// order; the index behind [`Network::link_between`].
    pair_links: BTreeMap<(NodeId, NodeId), Vec<LinkId>>,
    /// Next-hop memo + BFS scratch. Interior-mutable because lookups run
    /// behind `&self`; `Network` is not shared across threads (each sweep
    /// worker owns its world), so a `RefCell` suffices.
    route_cache: RefCell<RouteCache>,
    /// Per-instance switch for the route cache (see
    /// [`Network::set_route_caching`]). The ambient env kill switch wins.
    route_cache_enabled: bool,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network { max_hops: 64, route_cache_enabled: true, ..Default::default() }
    }

    /// The topology generation: a counter that advances on every mutation
    /// that can change routing decisions. Cached routing state stamped with
    /// an older generation is dead on arrival.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Enable or disable the next-hop route cache for this instance
    /// (default: enabled). Disabling makes every [`Network::next_hop_toward`]
    /// call run a fresh BFS — the oracle arm of the equivalence tests. The
    /// `TUSSLE_ROUTE_CACHE=off` environment variable disables it
    /// process-wide regardless of this setting.
    pub fn set_route_caching(&mut self, enabled: bool) {
        self.route_cache_enabled = enabled;
    }

    fn route_caching_active(&self) -> bool {
        self.route_cache_enabled && ambient_route_cache_enabled()
    }

    fn bump_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Drop all derived routing state: bump the topology generation and
    /// clear the next-hop memo. This is the checkpoint-restore boundary
    /// (see [`Snapshottable::post_restore`]): nothing memoized before a
    /// crash may be served after the resume, and the generation stamp
    /// makes that self-enforcing even for cached state held elsewhere.
    pub fn invalidate_routes(&mut self) {
        self.bump_generation();
        let mut cache = self.route_cache.borrow_mut();
        cache.next_hop.clear();
        cache.generation = self.generation;
    }

    /// Add a host in `asn`; returns its id.
    pub fn add_host(&mut self, asn: crate::addr::Asn) -> NodeId {
        self.push_node(|id| Node::host(id, asn))
    }

    /// Add a router in `asn`; returns its id.
    pub fn add_router(&mut self, asn: crate::addr::Asn) -> NodeId {
        self.push_node(|id| Node::router(id, asn))
    }

    fn push_node(&mut self, make: impl FnOnce(NodeId) -> Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(make(id));
        self.adj.push(Vec::new());
        self.fibs.push(Fib::new());
        id
    }

    /// Connect two nodes; returns the link id.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: SimTime,
        bandwidth_bps: u64,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, a, b, latency, bandwidth_bps));
        self.adj[a.index()].push(id);
        self.adj[b.index()].push(id);
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_links.entry(key).or_default().push(id);
        self.bump_generation();
        id
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Node accessor (mutable).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Link accessor (mutable) — used to fail links, add faults, set costs.
    ///
    /// Conservatively bumps the topology generation: the borrow may flip
    /// `up` or otherwise change what routing would decide.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        self.bump_generation();
        &mut self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link ids incident to a node.
    pub fn links_of(&self, id: NodeId) -> &[LinkId] {
        &self.adj[id.index()]
    }

    /// Set a link's administrative state. Forwarding honors it on the
    /// next packet: down links are invisible to [`Network::link_between`]
    /// and [`Network::neighbors`], so traffic drops with
    /// [`DropReason::LinkDown`] until the link comes back.
    ///
    /// The down→up transition clears the link's queue state: an outage
    /// empties the transmitter, so queueing delay accrued *before* the
    /// flap must not be charged to (or overflow-drop) post-restore
    /// packets.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        let link = &mut self.links[id.index()];
        if up && !link.up {
            link.reset_queue();
        }
        link.up = up;
        self.bump_generation();
    }

    /// Crash a node: every incident link that is currently up goes down.
    /// Crashing an already-crashed node is a no-op.
    pub fn crash_node(&mut self, id: NodeId) {
        if self.crashed.contains_key(&id) {
            return;
        }
        let downed: Vec<LinkId> =
            self.adj[id.index()].iter().copied().filter(|l| self.links[l.index()].up).collect();
        for l in &downed {
            self.links[l.index()].up = false;
        }
        self.crashed.insert(id, downed);
        self.bump_generation();
    }

    /// Restore a crashed node: the links its crash took down come back up,
    /// except those whose other endpoint is still crashed (those transfer
    /// to the surviving crash record and return when *it* restores).
    /// Restored links come back with empty queues, same as
    /// [`Network::set_link_up`].
    pub fn restore_node(&mut self, id: NodeId) {
        let Some(links) = self.crashed.remove(&id) else {
            return;
        };
        for l in links {
            let (a, b) = {
                let link = &self.links[l.index()];
                (link.a, link.b)
            };
            let other = if a == id { b } else { a };
            if let Some(list) = self.crashed.get_mut(&other) {
                if !list.contains(&l) {
                    list.push(l);
                }
            } else {
                let link = &mut self.links[l.index()];
                link.reset_queue();
                link.up = true;
            }
        }
        self.bump_generation();
    }

    /// Is the node currently up (not crashed)?
    pub fn node_is_up(&self, id: NodeId) -> bool {
        !self.crashed.contains_key(&id)
    }

    /// Neighbors of a node over up links, in adjacency (link-creation)
    /// order. Allocation-free: this is the forwarding hot loop's inner
    /// edge scan.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[id.index()].iter().filter_map(move |l| {
            let link = &self.links[l.index()];
            if link.up {
                link.other_end(id)
            } else {
                None
            }
        })
    }

    /// The up link between two nodes, if any — the lowest-id up link when
    /// parallel links exist, matching the old adjacency-scan order (links
    /// enter `adj` in increasing id order). Served from the incrementally
    /// maintained endpoint-pair index, not a scan.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_links.get(&key)?.iter().map(|l| &self.links[l.index()]).find(|l| l.up)
    }

    /// Forwarding table of a node.
    pub fn fib(&self, id: NodeId) -> &Fib {
        &self.fibs[id.index()]
    }

    /// Forwarding table of a node (mutable) — routing protocols write here.
    /// Bumps the topology generation: FIB contents are routing state.
    pub fn fib_mut(&mut self, id: NodeId) -> &mut Fib {
        self.bump_generation();
        &mut self.fibs[id.index()]
    }

    /// Install a firewall at a node (replacing any existing one).
    /// Bumps the topology generation: a firewall changes which packets a
    /// node forwards, so routing state cached before the install must not
    /// outlive it.
    pub fn set_firewall(&mut self, id: NodeId, fw: Firewall) {
        self.firewalls.insert(id, fw);
        self.bump_generation();
    }

    /// Remove the firewall at a node. Bumps the topology generation, same
    /// as [`Network::set_firewall`].
    pub fn clear_firewall(&mut self, id: NodeId) {
        self.firewalls.remove(&id);
        self.bump_generation();
    }

    /// The firewall at a node, if any.
    pub fn firewall(&self, id: NodeId) -> Option<&Firewall> {
        self.firewalls.get(&id)
    }

    /// Install a QoS policy at a node. Bumps the topology generation: the
    /// policy changes per-hop treatment, so anything memoized against the
    /// previous configuration is stale.
    pub fn set_qos(&mut self, id: NodeId, policy: QosPolicy) {
        self.qos.insert(id, policy);
        self.bump_generation();
    }

    /// The QoS policy at a node, if any.
    pub fn qos(&self, id: NodeId) -> Option<&QosPolicy> {
        self.qos.get(&id)
    }

    /// Find the node currently bound to an address.
    pub fn node_for_address(&self, addr: Address) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.has_address(addr)).map(|n| n.id)
    }

    /// Total FIB entries across all routers — the core-table-size metric
    /// of experiment E1.
    pub fn total_fib_entries(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Router)
            .map(|n| self.fibs[n.id.index()].len())
            .sum()
    }

    /// First hop on a shortest path from `from` to `target` over up links,
    /// by breadth-first search. Deterministic: ties break in adjacency
    /// (insertion) order. Used for loose-source-route segments, where the
    /// sender's chosen waypoint overrides provider path selection.
    ///
    /// Results are memoized per `(from, target)` pair, stamped with the
    /// topology generation; any mutation invalidates the whole memo. The
    /// cache is a pure lookup table over a deterministic function of the
    /// topology, so enabling it cannot change any answer — the
    /// `prop_fastpath` equivalence oracle holds it to that byte-for-byte.
    pub fn next_hop_toward(&self, from: NodeId, target: NodeId) -> Option<NodeId> {
        if from == target {
            return Some(target);
        }
        if !self.route_caching_active() {
            let mut prev = Vec::new();
            let mut queue = VecDeque::new();
            return self.bfs_first_hop(from, target, &mut prev, &mut queue);
        }
        let mut guard = self.route_cache.borrow_mut();
        let cache = &mut *guard;
        if cache.generation != self.generation {
            cache.next_hop.clear();
            cache.generation = self.generation;
        }
        if let Some(&hop) = cache.next_hop.get(&(from.0, target.0)) {
            return hop;
        }
        let hop = self.bfs_first_hop(from, target, &mut cache.prev, &mut cache.queue);
        cache.next_hop.insert((from.0, target.0), hop);
        hop
    }

    /// The BFS behind [`Network::next_hop_toward`], over caller-provided
    /// scratch so the steady state allocates nothing. `prev` doubles as the
    /// visited set (`UNVISITED` = untouched).
    fn bfs_first_hop(
        &self,
        from: NodeId,
        target: NodeId,
        prev: &mut Vec<u32>,
        queue: &mut VecDeque<NodeId>,
    ) -> Option<NodeId> {
        prev.clear();
        prev.resize(self.nodes.len(), UNVISITED);
        queue.clear();
        queue.push_back(from);
        prev[from.index()] = from.0;
        while let Some(n) = queue.pop_front() {
            for next in self.neighbors(n) {
                if prev[next.index()] == UNVISITED {
                    prev[next.index()] = n.0;
                    if next == target {
                        // walk back to find the first hop
                        let mut hop = target;
                        while prev[hop.index()] != from.0 {
                            hop = NodeId(prev[hop.index()]);
                        }
                        return Some(hop);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Forward one packet from `from` toward its destination address,
    /// treating all links as unloaded (absolute time 0). For
    /// congestion-aware forwarding use [`Network::send_at`].
    pub fn send(&mut self, from: NodeId, pkt: Packet, rng: &mut SimRng) -> DeliveryReport {
        self.send_at(from, pkt, SimTime::ZERO, rng)
    }

    /// Forward one packet starting at absolute time `now`; links with a
    /// queue cap serialize packets FIFO and drop on overflow.
    pub fn send_at(
        &mut self,
        from: NodeId,
        pkt: Packet,
        now: SimTime,
        rng: &mut SimRng,
    ) -> DeliveryReport {
        // Fast path: no observation scope, no span bookkeeping at all.
        if !tussle_sim::obs::active() {
            return self.send_at_inner(from, pkt, now, rng);
        }
        let src = from.index().to_string();
        let dst = pkt.dst.value.to_string();
        tussle_sim::obs::span_enter(now, "net.send", None, &[("src", &src), ("dst", &dst)]);
        let report = self.send_at_inner(from, pkt, now, rng);
        let hops = report.hops().to_string();
        let outcome = match (&report.drop, report.delivered) {
            (_, true) => "delivered".to_owned(),
            (Some((_, reason)), false) => format!("{reason:?}"),
            (None, false) => "undelivered".to_owned(),
        };
        tussle_sim::obs::span_exit(
            now.saturating_add(report.latency),
            &[("hops", &hops), ("outcome", &outcome)],
        );
        report
    }

    fn send_at_inner(
        &mut self,
        from: NodeId,
        mut pkt: Packet,
        now: SimTime,
        rng: &mut SimRng,
    ) -> DeliveryReport {
        let mut path = vec![from];
        let mut latency = SimTime::ZERO;
        let mut corrupted = false;
        // Cursor into the borrowed source route: waypoints are consumed by
        // advancing it, never by cloning or shifting the route itself.
        let mut route_at = 0usize;
        let mut current = from;
        let mut mark: Option<crate::packet::Mark> = None;
        const MARK_PROBABILITY: f64 = 0.04;

        loop {
            // Arrived?
            if self.nodes[current.index()].has_address(pkt.dst) {
                return DeliveryReport {
                    delivered: true,
                    path,
                    latency,
                    drop: None,
                    corrupted,
                    mark,
                };
            }

            // Middlebox checks at transit nodes (not at the original sender:
            // you cannot firewall yourself out of sending). The is_empty
            // guard keeps firewall-free topologies off the map probe.
            if current != from && !self.firewalls.is_empty() {
                if let Some(fw) = self.firewalls.get(&current) {
                    if fw.evaluate(&pkt) == FirewallAction::Deny {
                        return DeliveryReport {
                            delivered: false,
                            path,
                            latency,
                            drop: Some((current, DropReason::FirewallDenied)),
                            corrupted,
                            mark,
                        };
                    }
                }
            }

            // Probabilistic traceback marking (§II.B): a marking router
            // either stamps fresh or ages an existing stamp.
            if current != from && self.nodes[current.index()].marks_packets {
                if rng.chance(MARK_PROBABILITY) {
                    mark = Some(crate::packet::Mark { node: current, distance: 0 });
                } else if let Some(m) = &mut mark {
                    m.distance = m.distance.saturating_add(1);
                }
            } else if current != from {
                if let Some(m) = &mut mark {
                    m.distance = m.distance.saturating_add(1);
                }
            }

            // Hop budget.
            if pkt.ttl == 0 {
                return DeliveryReport {
                    delivered: false,
                    path,
                    latency,
                    drop: Some((current, DropReason::TtlExpired)),
                    corrupted,
                    mark,
                };
            }
            pkt.ttl -= 1;
            if path.len() > self.max_hops {
                return DeliveryReport {
                    delivered: false,
                    path,
                    latency,
                    drop: Some((current, DropReason::MaxHopsExceeded)),
                    corrupted,
                    mark,
                };
            }

            // A transit router that refuses loose source routes drops any
            // packet still carrying one — processing the option at all is
            // the service it declines to give away (§V.A.4).
            if route_at < pkt.source_route.len()
                && current != from
                && !self.nodes[current.index()].honors_source_routes
            {
                return DeliveryReport {
                    delivered: false,
                    path,
                    latency,
                    drop: Some((current, DropReason::SourceRouteRefused)),
                    corrupted,
                    mark,
                };
            }

            // Pop a waypoint we are standing on.
            while pkt.source_route.get(route_at) == Some(&current) {
                route_at += 1;
            }

            // Pick the next hop: loose source route first, then the FIB.
            let next = if let Some(&waypoint) = pkt.source_route.get(route_at) {
                // Route toward the waypoint over the underlying topology: a
                // loose source route asks the network to *get to* each
                // waypoint, overriding provider path selection in between.
                match self.next_hop_toward(current, waypoint) {
                    Some(n) => n,
                    None => {
                        return DeliveryReport {
                            delivered: false,
                            path,
                            latency,
                            drop: Some((current, DropReason::NoRoute)),
                            corrupted,
                            mark,
                        }
                    }
                }
            } else {
                match self.fibs[current.index()].lookup(pkt.dst.value) {
                    Some(e) => e.next_hop,
                    None => {
                        return DeliveryReport {
                            delivered: false,
                            path,
                            latency,
                            drop: Some((current, DropReason::NoRoute)),
                            corrupted,
                            mark,
                        }
                    }
                }
            };

            // Traverse the link.
            let Some(link_id) = self.link_between(current, next).map(|l| l.id) else {
                return DeliveryReport {
                    delivered: false,
                    path,
                    latency,
                    drop: Some((current, DropReason::LinkDown)),
                    corrupted,
                    mark,
                };
            };
            let size = pkt.size();
            let qos_factor = if self.qos.is_empty() {
                1.0
            } else {
                self.qos.get(&current).map(|q| q.delay_factor(&pkt)).unwrap_or(1.0)
            };
            let link = &mut self.links[link_id.index()];
            let fault_at = now.saturating_add(latency);
            let outcome = link.faults.apply(fault_at, rng);
            if outcome != FaultOutcome::Pass {
                tussle_sim::obs::on_fault(fault_at);
            }
            match outcome {
                FaultOutcome::Pass => {}
                FaultOutcome::Corrupt => corrupted = true,
                FaultOutcome::Drop => {
                    return DeliveryReport {
                        delivered: false,
                        path,
                        latency,
                        drop: Some((current, DropReason::LinkLoss)),
                        corrupted,
                        mark,
                    }
                }
                FaultOutcome::RateLimited => {
                    return DeliveryReport {
                        delivered: false,
                        path,
                        latency,
                        drop: Some((current, DropReason::RateLimited)),
                        corrupted,
                        mark,
                    }
                }
            }
            // Ambient chaos: a thread-local intensity the chaos campaign wraps
            // around whole experiment runs. The `> 0.0` gate guarantees zero
            // rng draws at intensity 0, keeping such runs byte-identical to
            // plain (non-chaos) runs.
            if tussle_sim::fault::ambient_intensity() > 0.0 {
                let ambient = tussle_sim::fault::ambient_apply(rng);
                if ambient != FaultOutcome::Pass {
                    tussle_sim::obs::on_fault(fault_at);
                }
                match ambient {
                    FaultOutcome::Pass => {}
                    FaultOutcome::Corrupt => corrupted = true,
                    FaultOutcome::Drop => {
                        return DeliveryReport {
                            delivered: false,
                            path,
                            latency,
                            drop: Some((current, DropReason::LinkLoss)),
                            corrupted,
                            mark,
                        }
                    }
                    FaultOutcome::RateLimited => {
                        return DeliveryReport {
                            delivered: false,
                            path,
                            latency,
                            drop: Some((current, DropReason::RateLimited)),
                            corrupted,
                            mark,
                        }
                    }
                }
            }
            let delay = match link.enqueue_at(now.saturating_add(latency), size) {
                crate::link::QueueOutcome::Sent { delay, .. } => delay,
                crate::link::QueueOutcome::Overflow => {
                    return DeliveryReport {
                        delivered: false,
                        path,
                        latency,
                        drop: Some((current, DropReason::QueueOverflow)),
                        corrupted,
                        mark,
                    }
                }
            };
            let scaled = SimTime::from_micros((delay.as_micros() as f64 * qos_factor) as u64);
            latency = latency.saturating_add(scaled);

            tussle_sim::obs::on_forward(now.saturating_add(latency));
            current = next;
            path.push(current);
        }
    }
}

impl Snapshottable for Network {
    fn component(&self) -> &'static str {
        "network"
    }

    /// Digest of the network's logical state: nodes, links (including
    /// accrued queue and fault-injector state), FIBs, middleboxes, crash
    /// records and the hop budget — everything forwarding consults. Three
    /// things are deliberately absent: the topology `generation` and the
    /// route memo are rebuilt at the restore boundary (see
    /// [`Snapshottable::post_restore`]), and the adjacency/endpoint-pair
    /// indexes are pure functions of the links. Including any of them
    /// would make cache warmth observable, breaking the DESIGN.md §7
    /// invariant the recovery oracle leans on.
    fn state_digest(&self) -> RunDigest {
        let mut h = Fnv1a::new();
        h.write_u8(0xD0);
        h.write_str(&serde_json::to_string(&self.nodes).expect("nodes serialize"));
        h.write_u8(0xD1);
        h.write_str(&serde_json::to_string(&self.links).expect("links serialize"));
        h.write_u8(0xD2);
        h.write_str(&serde_json::to_string(&self.fibs).expect("fibs serialize"));
        h.write_u8(0xD3);
        h.write_u64(self.firewalls.len() as u64);
        for (id, fw) in &self.firewalls {
            h.write_u64(u64::from(id.0));
            h.write_str(&serde_json::to_string(fw).expect("firewall serializes"));
        }
        h.write_u8(0xD4);
        h.write_u64(self.qos.len() as u64);
        for (id, q) in &self.qos {
            h.write_u64(u64::from(id.0));
            h.write_str(&serde_json::to_string(q).expect("qos policy serializes"));
        }
        h.write_u8(0xD5);
        h.write_u64(self.crashed.len() as u64);
        for (id, links) in &self.crashed {
            h.write_u64(u64::from(id.0));
            h.write_u64(links.len() as u64);
            for l in links {
                h.write_u64(u64::from(l.0));
            }
        }
        h.write_u64(self.max_hops as u64);
        RunDigest(h.finish())
    }

    fn post_restore(&mut self) {
        self.invalidate_routes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Asn, Prefix};
    use crate::packet::{ports, Protocol};
    use tussle_sim::FaultInjector;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    /// h0 -- r1 -- r2 -- h3, addresses 0x0a.., 0x0d.. on the hosts.
    fn line() -> (Network, NodeId, NodeId, NodeId, NodeId, Address, Address) {
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let r1 = net.add_router(Asn(1));
        let r2 = net.add_router(Asn(2));
        let h3 = net.add_host(Asn(2));
        net.connect(h0, r1, SimTime::from_millis(1), 1_000_000_000);
        net.connect(r1, r2, SimTime::from_millis(10), 1_000_000_000);
        net.connect(r2, h3, SimTime::from_millis(1), 1_000_000_000);
        let a0 = addr(0x0a010000);
        let a3 = addr(0x0d010000);
        net.node_mut(h0).bind(a0);
        net.node_mut(h3).bind(a3);
        // static routes
        net.fib_mut(h0).install(Prefix::DEFAULT, r1, 0);
        net.fib_mut(r1).install(Prefix::new(0x0d010000, 16), r2, 0);
        net.fib_mut(r2).install(Prefix::new(0x0d010000, 16), h3, 0);
        net.fib_mut(r2).install(Prefix::new(0x0a010000, 16), r1, 0);
        net.fib_mut(r1).install(Prefix::new(0x0a010000, 16), h0, 0);
        (net, h0, r1, r2, h3, a0, a3)
    }

    fn pkt(src: Address, dst: Address) -> Packet {
        Packet::new(src, dst, Protocol::Tcp, 1000, ports::HTTP)
    }

    #[test]
    fn delivery_along_static_routes() {
        let (mut net, h0, r1, r2, h3, a0, a3) = line();
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(rep.delivered);
        assert_eq!(rep.path, vec![h0, r1, r2, h3]);
        assert_eq!(rep.hops(), 3);
        assert!(rep.latency >= SimTime::from_millis(12));
        assert!(!rep.corrupted);
    }

    #[test]
    fn no_route_is_reported_at_the_right_node() {
        let (mut net, h0, _r1, r2, _h3, a0, _a3) = line();
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, addr(0x0e000000)), &mut rng);
        assert!(!rep.delivered);
        // h0's default route sends it to r1; r1 has no route for 0x0e.
        assert_eq!(rep.drop.unwrap().1, DropReason::NoRoute);
        let _ = r2;
    }

    #[test]
    fn ttl_expiry() {
        let (mut net, h0, _, _, _, a0, a3) = line();
        let mut rng = SimRng::seed_from_u64(1);
        let mut p = pkt(a0, a3);
        p.ttl = 1;
        let rep = net.send(h0, p, &mut rng);
        assert!(!rep.delivered);
        assert_eq!(rep.drop.unwrap().1, DropReason::TtlExpired);
    }

    #[test]
    fn forwarding_loop_is_caught() {
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        let dst = addr(0x0f000000);
        net.fib_mut(a).install(Prefix::DEFAULT, b, 0);
        net.fib_mut(b).install(Prefix::DEFAULT, a, 0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut p = pkt(addr(0x0a000000), dst);
        p.ttl = 255;
        let rep = net.send(a, p, &mut rng);
        assert!(!rep.delivered);
        // TTL (32 default overridden to 255) exceeds max_hops, so the loop
        // guard fires first.
        assert_eq!(rep.drop.unwrap().1, DropReason::MaxHopsExceeded);
    }

    #[test]
    fn firewall_on_path_drops() {
        let (mut net, h0, r1, _r2, _h3, a0, a3) = line();
        net.set_firewall(r1, Firewall::port_allowlist(vec![ports::SMTP], "isp"));
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(!rep.delivered);
        assert_eq!(rep.drop, Some((r1, DropReason::FirewallDenied)));
    }

    #[test]
    fn sender_own_firewall_does_not_block_egress() {
        let (mut net, h0, _, _, _, a0, a3) = line();
        net.set_firewall(h0, Firewall::port_allowlist(vec![], "self"));
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(rep.delivered);
    }

    #[test]
    fn link_down_blocks() {
        let (mut net, h0, _r1, _r2, _h3, a0, a3) = line();
        let lid = net.links()[1].id;
        net.link_mut(lid).up = false;
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(!rep.delivered);
        assert_eq!(rep.drop.unwrap().1, DropReason::LinkDown);
    }

    #[test]
    fn lossy_link_drops_sometimes() {
        let (mut net, h0, _, _, _, a0, a3) = line();
        let lid = net.links()[1].id;
        net.link_mut(lid).faults = FaultInjector::lossy(0.5, 0.0);
        let mut rng = SimRng::seed_from_u64(7);
        let outcomes: Vec<bool> =
            (0..100).map(|_| net.send(h0, pkt(a0, a3), &mut rng).delivered).collect();
        let delivered = outcomes.iter().filter(|d| **d).count();
        assert!(delivered > 20 && delivered < 80, "delivered={delivered}");
    }

    #[test]
    fn corruption_is_flagged_but_delivered() {
        let (mut net, h0, _, _, _, a0, a3) = line();
        let lid = net.links()[0].id;
        net.link_mut(lid).faults = FaultInjector::lossy(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(7);
        let rep = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(rep.delivered);
        assert!(rep.corrupted);
    }

    #[test]
    fn source_route_takes_the_scenic_path() {
        // diamond: h0 - r1 - r3 - h4 and h0 - r1 - r2 - r3 (waypoint r2)
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let r1 = net.add_router(Asn(1));
        let r2 = net.add_router(Asn(2));
        let r3 = net.add_router(Asn(3));
        let h4 = net.add_host(Asn(3));
        for (a, b) in [(h0, r1), (r1, r2), (r2, r3), (r1, r3), (r3, h4)] {
            net.connect(a, b, SimTime::from_millis(1), 1_000_000_000);
        }
        let a0 = addr(0x0a010000);
        let a4 = addr(0x0d010000);
        net.node_mut(h0).bind(a0);
        net.node_mut(h4).bind(a4);
        let dstp = Prefix::new(0x0d010000, 16);
        net.fib_mut(h0).install(Prefix::DEFAULT, r1, 0);
        net.fib_mut(r1).install(dstp, r3, 0);
        net.fib_mut(r2).install(dstp, r3, 0);
        net.fib_mut(r3).install(dstp, h4, 0);
        let mut rng = SimRng::seed_from_u64(1);

        let direct = net.send(h0, pkt(a0, a4), &mut rng);
        assert_eq!(direct.path, vec![h0, r1, r3, h4]);

        let via_r2 = net.send(h0, pkt(a0, a4).with_source_route(vec![r2]), &mut rng);
        assert!(via_r2.delivered);
        assert_eq!(via_r2.path, vec![h0, r1, r2, r3, h4]);
    }

    #[test]
    fn unpaid_source_routes_are_refused() {
        let (mut net, h0, r1, r2, _h3, a0, a3) = line();
        net.node_mut(r1).honors_source_routes = false;
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt(a0, a3).with_source_route(vec![r2]), &mut rng);
        assert!(!rep.delivered);
        assert_eq!(rep.drop, Some((r1, DropReason::SourceRouteRefused)));
        // plain traffic still flows
        let rep2 = net.send(h0, pkt(a0, a3), &mut rng);
        assert!(rep2.delivered);
    }

    #[test]
    fn qos_policy_scales_latency() {
        let (mut net, h0, r1, _r2, _h3, a0, a3) = line();
        net.set_qos(r1, QosPolicy::tos_based(4, 0.5));
        let mut rng = SimRng::seed_from_u64(1);
        let slow = net.send(h0, pkt(a0, a3), &mut rng).latency;
        let fast = net.send(h0, pkt(a0, a3).with_tos(5), &mut rng).latency;
        assert!(fast < slow, "premium {fast} should beat best-effort {slow}");
    }

    #[test]
    fn total_fib_entries_counts_routers_only() {
        let (net, _, _, _, _, _, _) = line();
        // r1 has 2 entries, r2 has 2; hosts don't count.
        assert_eq!(net.total_fib_entries(), 4);
    }

    #[test]
    fn node_for_address() {
        let (net, h0, _, _, _, a0, _) = line();
        assert_eq!(net.node_for_address(a0), Some(h0));
        assert_eq!(net.node_for_address(addr(0x77000000)), None);
    }

    #[test]
    fn every_topology_mutation_bumps_the_generation() {
        let mut net = Network::new();
        let g0 = net.generation();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        let lid = net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        let g1 = net.generation();
        assert_ne!(g0, g1, "connect must bump");
        net.set_link_up(lid, false);
        let g2 = net.generation();
        assert_ne!(g1, g2, "set_link_up must bump");
        net.crash_node(a);
        let g3 = net.generation();
        assert_ne!(g2, g3, "crash_node must bump");
        net.restore_node(a);
        let g4 = net.generation();
        assert_ne!(g3, g4, "restore_node must bump");
        net.link_mut(lid).up = true;
        let g5 = net.generation();
        assert_ne!(g4, g5, "link_mut must bump (caller may flip state)");
        net.fib_mut(a).install(Prefix::DEFAULT, b, 0);
        assert_ne!(g5, net.generation(), "fib_mut must bump");
    }

    #[test]
    fn middlebox_config_mutations_bump_the_generation() {
        // Firewall and QoS installs change what a node does to traffic, so
        // the next-hop cache's generation stamp must advance — a stale
        // cached route could otherwise thread packets through a box whose
        // policy changed underneath it.
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        let g0 = net.generation();
        net.set_firewall(a, Firewall::port_allowlist(vec![ports::HTTP], "op"));
        let g1 = net.generation();
        assert_ne!(g0, g1, "set_firewall must bump");
        net.clear_firewall(a);
        let g2 = net.generation();
        assert_ne!(g1, g2, "clear_firewall must bump");
        net.set_qos(b, QosPolicy::tos_based(4, 0.5));
        let g3 = net.generation();
        assert_ne!(g2, g3, "set_qos must bump");

        // NAT, tunnels and wiretaps are packet-level transforms that hold
        // no state on the Network, so plain packet operations through them
        // must NOT churn the generation (that would thrash the route memo).
        let before = net.generation();
        let mut nat = crate::nat::Nat::new(addr(0x0b000000));
        let inner =
            Packet::new(addr(0x0a010000), addr(0x0d010000), Protocol::Tcp, 40_000, ports::HTTP);
        let out = nat.outbound(inner.clone());
        let _ = nat.inbound(out.clone());
        let outer = crate::tunnel::encapsulate(&inner, addr(0x0a010000), addr(0x0c000000));
        let _ = crate::tunnel::decapsulate(&outer, &inner);
        let mut tap = crate::wiretap::Wiretap::new();
        tap.observe(&inner);
        assert_eq!(net.generation(), before, "packet-level ops must not bump");
    }

    #[test]
    fn cached_route_does_not_survive_a_link_flap() {
        // diamond: a-b-d and a-c-d; b has the lower id so BFS prefers it.
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        let c = net.add_router(Asn(1));
        let d = net.add_router(Asn(1));
        let ab = net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        net.connect(a, c, SimTime::from_millis(1), 1_000_000);
        net.connect(b, d, SimTime::from_millis(1), 1_000_000);
        net.connect(c, d, SimTime::from_millis(1), 1_000_000);
        assert_eq!(net.next_hop_toward(a, d), Some(b));
        // Warm cache points at b; the flap must invalidate it.
        net.set_link_up(ab, false);
        assert_eq!(net.next_hop_toward(a, d), Some(c));
        net.set_link_up(ab, true);
        assert_eq!(net.next_hop_toward(a, d), Some(b));
    }

    #[test]
    fn cached_and_uncached_next_hops_agree() {
        let (net, h0, r1, r2, h3, _, _) = line();
        let mut uncached = line().0;
        uncached.set_route_caching(false);
        for &from in &[h0, r1, r2, h3] {
            for &to in &[h0, r1, r2, h3] {
                // Query twice so the second cached answer is a memo hit.
                assert_eq!(net.next_hop_toward(from, to), uncached.next_hop_toward(from, to));
                assert_eq!(net.next_hop_toward(from, to), uncached.next_hop_toward(from, to));
            }
        }
    }

    #[test]
    fn link_between_prefers_the_first_up_parallel_link() {
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        let l0 = net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        let l1 = net.connect(a, b, SimTime::from_millis(2), 1_000_000);
        assert_eq!(net.link_between(a, b).unwrap().id, l0);
        assert_eq!(net.link_between(b, a).unwrap().id, l0);
        net.set_link_up(l0, false);
        assert_eq!(net.link_between(a, b).unwrap().id, l1);
        net.set_link_up(l1, false);
        assert!(net.link_between(a, b).is_none());
        assert!(net.link_between(a, a).is_none());
    }

    #[test]
    fn state_digest_ignores_cache_warmth_but_sees_topology() {
        let (mut net, h0, _r1, r2, h3, _, _) = line();
        let d0 = net.state_digest();
        // Warming the route memo and bumping the generation are invisible:
        // both are derived bookkeeping, not logical state.
        assert!(net.next_hop_toward(h0, h3).is_some());
        net.invalidate_routes();
        assert_eq!(net.state_digest(), d0);
        // A link flap is real state — and flapping back restores the
        // digest exactly (the queue was empty, so the reset is a no-op).
        let lid = net.links()[1].id;
        net.set_link_up(lid, false);
        assert_ne!(net.state_digest(), d0);
        net.set_link_up(lid, true);
        assert_eq!(net.state_digest(), d0);
        // Routing and middlebox state are real too.
        net.fib_mut(r2).install(Prefix::new(0x0c000000, 16), h3, 0);
        let d_fib = net.state_digest();
        assert_ne!(d_fib, d0);
        net.set_firewall(r2, Firewall::port_allowlist(vec![ports::SMTP], "mb"));
        assert_ne!(net.state_digest(), d_fib);
    }

    #[test]
    fn restore_mid_flap_invalidates_the_route_memo() {
        // diamond a-b-d / a-c-d with a scripted flap of a-b; the Network
        // itself is the engine world, checkpointed while the link is down.
        fn build() -> (tussle_sim::Engine<Network>, [NodeId; 4]) {
            let mut net = Network::new();
            let a = net.add_router(Asn(1));
            let b = net.add_router(Asn(1));
            let c = net.add_router(Asn(1));
            let d = net.add_router(Asn(1));
            let ab = net.connect(a, b, SimTime::from_millis(1), 1_000_000);
            net.connect(a, c, SimTime::from_millis(1), 1_000_000);
            net.connect(b, d, SimTime::from_millis(1), 1_000_000);
            net.connect(c, d, SimTime::from_millis(1), 1_000_000);
            let mut eng = tussle_sim::Engine::new(net, 9);
            eng.schedule_at(SimTime::from_millis(10), move |n: &mut Network, _| {
                n.set_link_up(ab, false);
            });
            eng.schedule_at(SimTime::from_millis(30), move |n: &mut Network, _| {
                n.set_link_up(ab, true);
            });
            (eng, [a, b, c, d])
        }

        let (mut golden, [a, b, c, d]) = build();
        golden.run(1); // the flap-down fires
        assert_eq!(golden.world.next_hop_toward(a, d), Some(c), "detour while down");
        let snap = golden.checkpoint();

        // Replay a fresh engine to the same frontier and restore into it —
        // with its own memo warmed, which a crashed process's successor
        // never would be, to prove the boundary invalidates regardless.
        let (mut resumed, _) = build();
        resumed.run(1);
        assert_eq!(resumed.world.next_hop_toward(a, d), Some(c));
        let gen = resumed.world.generation();
        resumed.restore(&snap).expect("replay reaches the same frontier");
        assert!(resumed.world.generation() > gen, "restore must bump the generation");
        assert_eq!(resumed.world.next_hop_toward(a, d), Some(c), "still mid-flap: no stale b");
        resumed.run(1); // the flap-up fires
        assert_eq!(resumed.world.next_hop_toward(a, d), Some(b), "route recovers with the link");
        golden.run(1);
        assert_eq!(resumed.world.state_digest(), golden.world.state_digest());
    }

    #[test]
    fn link_flap_clears_accrued_queue_state() {
        // 3200 bps link: a 40-byte packet serializes in 100ms. Four sends
        // at t=0 leave the transmitter busy until 400ms.
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let h1 = net.add_host(Asn(2));
        let lid = net.connect(h0, h1, SimTime::from_millis(1), 3_200);
        net.link_mut(lid).queue_delay_cap = Some(SimTime::from_millis(350));
        let a0 = addr(0x0a010000);
        let a1 = addr(0x0d010000);
        net.node_mut(h0).bind(a0);
        net.node_mut(h1).bind(a1);
        net.fib_mut(h0).install(Prefix::DEFAULT, h1, 0);
        let mut rng = SimRng::seed_from_u64(1);
        let big = Packet::new(a0, a1, Protocol::Tcp, 1000, ports::HTTP);
        for _ in 0..4 {
            assert!(net.send(h0, big.clone(), &mut rng).delivered);
        }
        // Flap the link. Without the queue reset the next packet would see
        // 400ms of pre-outage queueing and die on the 350ms cap.
        net.set_link_up(lid, false);
        net.set_link_up(lid, true);
        let rep = net.send(h0, big.clone(), &mut rng);
        assert!(rep.delivered, "post-restore packet hit stale queue state: {:?}", rep.drop);
        assert_eq!(rep.latency, SimTime::from_millis(101), "expected an empty queue after flap");
    }
}

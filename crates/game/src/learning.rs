//! Learning dynamics: fictitious play and best-response iteration.
//!
//! §II.B observes that real actors are "ill-informed ... myopic and act to
//! satisfy some poorly defined objective". Fictitious play is the classic
//! model of such actors: each round, play a best response to the opponent's
//! *empirical* action frequencies. In zero-sum and many coordination games
//! the empirical mix converges to equilibrium.

use crate::matrix::Game;

/// State of a fictitious-play process.
#[derive(Debug, Clone)]
pub struct FictitiousPlay {
    game: Game,
    row_counts: Vec<f64>,
    col_counts: Vec<f64>,
    rounds: u64,
}

impl FictitiousPlay {
    /// Start a process with one virtual observation of each action (Laplace
    /// prior keeps the first best response well-defined).
    pub fn new(game: Game) -> Self {
        let rows = game.rows();
        let cols = game.cols();
        FictitiousPlay { game, row_counts: vec![1.0; rows], col_counts: vec![1.0; cols], rounds: 0 }
    }

    /// Empirical mixed strategy of the row player so far.
    pub fn row_empirical(&self) -> Vec<f64> {
        normalize(&self.row_counts)
    }

    /// Empirical mixed strategy of the column player so far.
    pub fn col_empirical(&self) -> Vec<f64> {
        normalize(&self.col_counts)
    }

    /// Play one round: each side best-responds to the other's empirical
    /// mix. Returns the actions played.
    pub fn step(&mut self) -> (usize, usize) {
        let y = self.col_empirical();
        let x = self.row_empirical();
        let row_action = argmax(self.game.rows(), |i| self.game.row_payoff_against(i, &y));
        let col_action = argmax(self.game.cols(), |j| self.game.col_payoff_against(j, &x));
        self.row_counts[row_action] += 1.0;
        self.col_counts[col_action] += 1.0;
        self.rounds += 1;
        (row_action, col_action)
    }

    /// Run `n` rounds.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Rounds played.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The underlying game.
    pub fn game(&self) -> &Game {
        &self.game
    }
}

fn normalize(counts: &[f64]) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    counts.iter().map(|c| c / total).collect()
}

fn argmax(n: usize, f: impl Fn(usize) -> f64) -> usize {
    let mut best = 0;
    let mut best_v = f(0);
    for i in 1..n {
        let v = f(i);
        if v > best_v + 1e-12 {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Iterate pure best responses from a starting profile; returns the cycle
/// or fixed point reached as a sequence of profiles (the fixed point is
/// the last element when the sequence stabilizes).
pub fn best_response_path(
    game: &Game,
    start: (usize, usize),
    max_steps: usize,
) -> Vec<(usize, usize)> {
    let mut path = vec![start];
    let mut cur = start;
    for _ in 0..max_steps {
        let next = (
            *game.row_best_responses(cur.1).first().expect("nonempty"),
            *game.col_best_responses(cur.0).first().expect("nonempty"),
        );
        if next == cur {
            break;
        }
        cur = next;
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::is_nash;

    #[test]
    fn fictitious_play_finds_matching_pennies_mix() {
        let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let mut fp = FictitiousPlay::new(g.clone());
        fp.run(20_000);
        let x = fp.row_empirical();
        let y = fp.col_empirical();
        assert!((x[0] - 0.5).abs() < 0.02, "row mix {x:?}");
        assert!((y[0] - 0.5).abs() < 0.02, "col mix {y:?}");
        assert!(is_nash(&g, &x, &y, 0.05));
    }

    #[test]
    fn fictitious_play_locks_into_dominant_strategies() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        let mut fp = FictitiousPlay::new(g);
        fp.run(1_000);
        let x = fp.row_empirical();
        assert!(x[1] > 0.99, "defection should dominate the empirical mix: {x:?}");
    }

    #[test]
    fn fictitious_play_coordinates() {
        let g = Game::coordination(vec![1.0, 3.0]);
        let mut fp = FictitiousPlay::new(g.clone());
        fp.run(5_000);
        let x = fp.row_empirical();
        let y = fp.col_empirical();
        // mass should concentrate on the payoff-dominant action 1
        assert!(x[1] > 0.9 && y[1] > 0.9, "x={x:?} y={y:?}");
    }

    #[test]
    fn best_response_path_reaches_pd_equilibrium() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        let path = best_response_path(&g, (0, 0), 10);
        assert_eq!(*path.last().unwrap(), (1, 1));
        assert!(path.len() <= 3);
    }

    #[test]
    fn best_response_path_fixed_point_is_immediate_at_nash() {
        let g = Game::coordination(vec![1.0, 3.0]);
        let path = best_response_path(&g, (1, 1), 10);
        assert_eq!(path, vec![(1, 1)]);
    }

    #[test]
    fn rounds_counted() {
        let g = Game::coordination(vec![1.0]);
        let mut fp = FictitiousPlay::new(g);
        fp.run(7);
        assert_eq!(fp.rounds(), 7);
    }
}

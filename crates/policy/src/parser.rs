//! Recursive-descent parser for policy expressions.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! expr    := or
//! or      := and ("||" and)*
//! and     := unary ("&&" unary)*
//! unary   := "!" unary | relation
//! relation:= primary (("=="|"!="|"<"|"<="|">"|">="|"in") primary)?
//! primary := "(" expr ")" | "[" (primary ("," primary)*)? "]"
//!          | INT | STRING | "true" | "false" | IDENT
//! ```

use crate::ast::{CmpOp, Expr};
use crate::lexer::{lex, LexError, Token};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (index into the token stream).
    Unexpected {
        /// Token index.
        at: usize,
        /// What was found, if anything.
        found: Option<Token>,
        /// What was expected.
        expected: String,
    },
    /// Input ended with tokens left over.
    TrailingTokens {
        /// Index of the first leftover token.
        at: usize,
    },
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse an expression from source text.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::TrailingTokens { at: p.pos });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == *tok => Ok(()),
            found => Err(ParseError::Unexpected {
                at: self.pos.saturating_sub(1),
                found,
                expected: what.to_owned(),
            }),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let right = self.unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Bang) {
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.relation()
    }

    fn relation(&mut self) -> Result<Expr, ParseError> {
        let left = self.primary()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(CmpOp::Eq),
            Some(Token::NotEq) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            Some(Token::In) => None, // handled below
            _ => return Ok(left),
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.primary()?;
                Ok(Expr::Cmp(Box::new(left), op, Box::new(right)))
            }
            None => {
                self.bump(); // the `in`
                let right = self.primary()?;
                Ok(Expr::In(Box::new(left), Box::new(right)))
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::LParen) => {
                let e = self.or_expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        let item = self.primary()?;
                        match item {
                            Expr::Lit(v) => items.push(v),
                            _ => {
                                return Err(ParseError::Unexpected {
                                    at: self.pos.saturating_sub(1),
                                    found: self.tokens.get(self.pos - 1).cloned(),
                                    expected: "literal list element".into(),
                                })
                            }
                        }
                        if self.peek() == Some(&Token::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket, "']'")?;
                Ok(Expr::Lit(Value::List(items)))
            }
            Some(Token::Int(n)) => Ok(Expr::Lit(Value::Int(n))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::True) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Token::Ident(name)) => Ok(Expr::Attr(name)),
            found => Err(ParseError::Unexpected {
                at: self.pos.saturating_sub(1),
                found,
                expected: "expression".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Ontology;
    use crate::value::Request;

    fn eval(src: &str, req: &Request) -> bool {
        parse_expr(src).unwrap().matches(req, &Ontology::network()).unwrap()
    }

    #[test]
    fn parses_firewall_style_conditions() {
        let r = Request::new()
            .with("action", "connect")
            .with("dst_port", 443i64)
            .with("encrypted", true)
            .with("anonymous", false);
        assert!(eval(r#"action == "connect" && dst_port in [80, 443]"#, &r));
        assert!(eval(r#"encrypted || dst_port == 25"#, &r));
        assert!(eval(r#"!anonymous"#, &r));
        assert!(!eval(r#"dst_port < 100"#, &r));
        assert!(eval(r#"(dst_port >= 400 && dst_port <= 500) || action != "connect""#, &r));
    }

    #[test]
    fn precedence_and_over_or() {
        // a || b && c parses as a || (b && c)
        let e = parse_expr("anonymous || encrypted && anonymous").unwrap();
        match e {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn double_negation() {
        let r = Request::new().with("anonymous", true);
        assert!(eval("!!anonymous", &r));
    }

    #[test]
    fn empty_list() {
        let r = Request::new().with("dst_port", 80i64);
        assert!(!eval("dst_port in []", &r));
    }

    #[test]
    fn string_lists() {
        let r = Request::new().with("proto", "tcp");
        assert!(eval(r#"proto in ["tcp", "udp"]"#, &r));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse_expr("a &&"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse_expr("a b"), Err(ParseError::TrailingTokens { .. })));
        assert!(matches!(parse_expr("(a"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse_expr("a @ b"), Err(ParseError::Lex(_))));
        assert!(matches!(parse_expr("[a]"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse_expr(""), Err(ParseError::Unexpected { .. })));
    }

    #[test]
    fn roundtrip_through_display() {
        let sources = [
            r#"(action == "connect")"#,
            r#"((dst_port in [80, 443]) && !(anonymous))"#,
            r#"((encrypted || (tos >= 4)) && (bytes < 1000000))"#,
        ];
        for src in sources {
            let e1 = parse_expr(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e1, e2, "roundtrip failed for {src}: printed as {printed}");
        }
    }
}

//! Information exposure: what a routing design forces you to reveal.
//!
//! §IV.C: "A link-state routing protocol requires that everyone export his
//! link costs, while a path vector protocol makes it harder to see what the
//! internal choices are. In the context of tussle, it matters if choices
//! and the consequence of choices are visible." This module turns that
//! observation into a number: for each design, how many facts about *my*
//! network does every other participant learn?

use crate::pathvector::AsGraph;
use serde::{Deserialize, Serialize};
use tussle_net::{Asn, Network, Prefix};

/// What one participant learns about others under a routing design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoExposure {
    /// Internal link costs revealed to each participant.
    pub link_costs_visible: usize,
    /// AS-level path entries revealed to each participant.
    pub path_entries_visible: usize,
    /// Can an outsider reconstruct my internal topology?
    pub internal_topology_visible: bool,
}

impl InfoExposure {
    /// A scalar for comparisons: total facts revealed.
    pub fn total(&self) -> usize {
        self.link_costs_visible + self.path_entries_visible
    }
}

/// Exposure under link-state: every participant sees every link and its
/// cost — the full map, including everyone's internal topology.
pub fn link_state_exposure(net: &Network) -> InfoExposure {
    InfoExposure {
        link_costs_visible: net.links().len(),
        path_entries_visible: 0,
        internal_topology_visible: true,
    }
}

/// Exposure under path-vector, from the perspective of one AS: it sees
/// only the AS paths in its own RIB — no link costs, no internal topology.
pub fn path_vector_exposure(graph: &AsGraph, observer: Asn, prefixes: &[Prefix]) -> InfoExposure {
    let path_entries =
        prefixes.iter().filter_map(|p| graph.as_path(observer, *p)).map(|path| path.len()).sum();
    InfoExposure {
        link_costs_visible: 0,
        path_entries_visible: path_entries,
        internal_topology_visible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tussle_net::Asn;
    use tussle_sim::SimTime;

    #[test]
    fn link_state_reveals_everything() {
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(2));
        let c = net.add_router(Asn(2));
        net.connect(a, b, SimTime::from_millis(1), 1_000_000);
        net.connect(b, c, SimTime::from_millis(1), 1_000_000);
        let e = link_state_exposure(&net);
        assert_eq!(e.link_costs_visible, 2);
        assert!(e.internal_topology_visible);
        assert_eq!(e.total(), 2);
    }

    #[test]
    fn path_vector_reveals_only_paths() {
        let mut g = AsGraph::new();
        g.customer_of(Asn(2), Asn(1));
        g.customer_of(Asn(3), Asn(2));
        let p = Prefix::new(0x0a000000, 16);
        g.originate(Asn(3), p);
        g.converge(20);
        let e = path_vector_exposure(&g, Asn(1), &[p]);
        assert!(!e.internal_topology_visible);
        assert_eq!(e.link_costs_visible, 0);
        // AS1 sees path [2, 3]
        assert_eq!(e.path_entries_visible, 2);
    }

    #[test]
    fn competitors_learn_less_under_path_vector() {
        // The §IV.C claim, quantified: same connectivity, less exposure.
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(2));
        net.connect(a, b, SimTime::from_millis(1), 1_000_000);

        let mut g = AsGraph::new();
        g.peers(Asn(1), Asn(2));
        let p = Prefix::new(0x0a000000, 16);
        g.originate(Asn(2), p);
        g.converge(10);

        let ls = link_state_exposure(&net);
        let pv = path_vector_exposure(&g, Asn(1), &[p]);
        assert!(pv.total() <= ls.total());
        assert!(ls.internal_topology_visible && !pv.internal_topology_visible);
    }
}

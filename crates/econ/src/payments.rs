//! Payment instruments: the micro-payments case study.
//!
//! §IV.C: "(There is an interesting case study in the rise and fall of
//! micro-payments, the success of the traditional credit card companies
//! for Internet payments, and the emergence of PayPal and similar
//! schemes.)" The case study reduces to cost structure and trust:
//!
//! * **micropayment schemes** have tiny marginal fees but a *mental/
//!   protocol transaction cost* per payment and no fraud protection;
//! * **credit cards** carry a fixed fee plus a percentage — hopeless for
//!   cent-sized payments, dominant for mid-sized ones, with a liability
//!   cap (the §V.B mediation tie-in);
//! * **account aggregation** (PayPal-like, or a monthly subscription)
//!   amortizes the fixed cost over many payments.
//!
//! [`best_instrument`] computes who wins at a given payment size —
//! experiment E15 sweeps it and finds the crossovers.

use crate::money::Money;
use serde::{Deserialize, Serialize};

/// A way to move small sums across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instrument {
    /// A per-payment digital-cash token scheme.
    Micropayment,
    /// A traditional card network.
    CreditCard,
    /// An account-based aggregator settling in batches.
    Aggregator,
}

/// Cost parameters for one instrument.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrumentCosts {
    /// Fixed fee per payment.
    pub fixed_fee: Money,
    /// Proportional fee (e.g. 0.03 = 3%).
    pub percent_fee: f64,
    /// Per-payment friction borne by the *user* (decision cost, protocol
    /// round-trips) — the quiet killer of micropayments.
    pub user_friction: Money,
    /// Is the buyer protected (liability cap / chargeback)?
    pub buyer_protected: bool,
}

impl Instrument {
    /// Stylized 2002-era cost structures.
    pub fn costs(self) -> InstrumentCosts {
        match self {
            Instrument::Micropayment => InstrumentCosts {
                fixed_fee: Money(2_000), // $0.002 per token
                percent_fee: 0.0,
                user_friction: Money(50_000), // $0.05 of decision cost each time
                buyer_protected: false,
            },
            Instrument::CreditCard => InstrumentCosts {
                fixed_fee: Money(300_000),    // $0.30
                percent_fee: 0.029,           // 2.9%
                user_friction: Money(10_000), // $0.01 — habitual
                buyer_protected: true,
            },
            Instrument::Aggregator => InstrumentCosts {
                fixed_fee: Money(10_000), // $0.01 amortized batch share
                percent_fee: 0.02,
                user_friction: Money(5_000), // one account, no per-item decision
                buyer_protected: true,
            },
        }
    }

    /// Total overhead of paying `amount` once with this instrument.
    pub fn overhead(self, amount: Money) -> Money {
        let c = self.costs();
        c.fixed_fee + amount.scale(c.percent_fee) + c.user_friction
    }

    /// Overhead as a fraction of the payment.
    pub fn overhead_ratio(self, amount: Money) -> f64 {
        if amount.micros() <= 0 {
            return f64::INFINITY;
        }
        self.overhead(amount).micros() as f64 / amount.micros() as f64
    }

    /// All instruments.
    pub fn all() -> [Instrument; 3] {
        [Instrument::Micropayment, Instrument::CreditCard, Instrument::Aggregator]
    }
}

/// The instrument with the lowest overhead for a payment of `amount`,
/// requiring buyer protection if `need_protection` (paying a stranger —
/// the §V.B trust condition).
pub fn best_instrument(amount: Money, need_protection: bool) -> Instrument {
    Instrument::all()
        .into_iter()
        .filter(|i| !need_protection || i.costs().buyer_protected)
        .min_by_key(|i| i.overhead(amount))
        .expect("protected instruments exist")
}

/// An instrument is economically *viable* at a payment size when its
/// overhead is under `max_ratio` of the amount (e.g. 0.5 = overhead may
/// eat at most half the payment).
pub fn viable(instrument: Instrument, amount: Money, max_ratio: f64) -> bool {
    instrument.overhead_ratio(amount) <= max_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_scale_correctly() {
        let cc = Instrument::CreditCard;
        // $10 purchase: 0.30 + 0.29 + 0.01 = $0.60
        assert_eq!(cc.overhead(Money::from_dollars(10)), Money(600_000));
        let mp = Instrument::Micropayment;
        // overhead independent of size
        assert_eq!(mp.overhead(Money(10_000)), mp.overhead(Money::from_dollars(100)));
    }

    #[test]
    fn nothing_is_viable_for_sub_cent_content() {
        // the fall of micropayments: even the cheap token scheme's
        // *friction* swamps a $0.001 article
        let tiny = Money(1_000);
        for i in Instrument::all() {
            assert!(!viable(i, tiny, 0.5), "{i:?} should be hopeless at $0.001");
        }
    }

    #[test]
    fn aggregation_wins_small_payments() {
        // $0.25 song-snippet: the aggregator's amortized fee wins among
        // protected instruments, and overall
        let small = Money(250_000);
        assert_eq!(best_instrument(small, true), Instrument::Aggregator);
        assert_eq!(best_instrument(small, false), Instrument::Aggregator);
    }

    #[test]
    fn cards_vs_aggregators_at_scale() {
        // at $100, the percentage dominates: card 2.9% vs aggregator 2.0%,
        // aggregator still cheaper; the card's niche in this model is
        // trust + ubiquity, which the paper files under mediation
        let large = Money::from_dollars(100);
        let card = Instrument::CreditCard.overhead(large);
        let agg = Instrument::Aggregator.overhead(large);
        assert!(agg < card);
        // but unprotected micropayments are cheapest of all at scale —
        // and nobody uses them, because need_protection filters them out
        assert_eq!(best_instrument(large, true), Instrument::Aggregator);
        let unprotected = best_instrument(large, false);
        assert_eq!(unprotected, Instrument::Micropayment);
    }

    #[test]
    fn protection_requirement_excludes_micropayments() {
        for dollars in [1, 10, 1000] {
            let amt = Money::from_dollars(dollars);
            assert_ne!(best_instrument(amt, true), Instrument::Micropayment);
        }
    }

    #[test]
    fn zero_amount_is_never_viable() {
        assert!(!viable(Instrument::Aggregator, Money::ZERO, 10.0));
    }
}

//! Addresses, prefixes and autonomous-system numbers.
//!
//! The paper's §V.A.1 tussle is entirely about what an address *is*: if it
//! reflects topology (provider-assigned, PA) routing stays small but the
//! customer is locked to the provider; if it reflects identity
//! (provider-independent, PI) the customer can switch freely but every PI
//! prefix lands in everyone's core forwarding table. Both modes are modeled
//! here; the paper's recommendation — "addresses should reflect
//! connectivity, not identity" plus mechanisms that make renumbering cheap —
//! is exercised by experiment E1.

use core::fmt;
use serde::{Deserialize, Serialize};

/// An autonomous-system number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A routing prefix: the top `len` bits of `bits` are significant.
///
/// Semantically an IPv4-style 32-bit prefix; we never parse dotted-quad
/// text, only operate on the numeric form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default (match-everything) prefix.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// A prefix from raw bits and length. Bits below the prefix length are
    /// masked off so equal prefixes compare equal.
    pub fn new(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Prefix { bits: bits & Self::mask(len), len }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_default(&self) -> bool {
        self.is_empty()
    }

    /// The masked prefix bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Does this prefix contain the 32-bit address value?
    pub fn contains(&self, value: u32) -> bool {
        (value & Self::mask(self.len)) == self.bits
    }

    /// Does this prefix contain (or equal) another prefix?
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.bits)
    }

    /// Carve the `index`-th sub-prefix of length `new_len` out of this one.
    ///
    /// Used by providers to allocate customer blocks out of their
    /// aggregate. Panics if `new_len` is not longer than `len` or the index
    /// does not fit.
    pub fn subprefix(&self, new_len: u8, index: u32) -> Prefix {
        assert!(new_len > self.len && new_len <= 32, "bad subprefix length");
        let extra = new_len - self.len;
        assert!(extra == 32 || index < (1u32 << extra), "subprefix index out of range");
        let bits = self.bits | (index << (32 - new_len as u32));
        Prefix::new(bits, new_len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}/{}", self.bits, self.len)
    }
}

/// How an address block was obtained — the crux of the lock-in tussle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AddressOrigin {
    /// Provider-assigned: carved from the provider's aggregate. Aggregable
    /// (one core route per provider) but must be returned on switching.
    ProviderAssigned(Asn),
    /// Provider-independent: owned by the customer. Portable across
    /// providers but contributes its own core routing entry.
    ProviderIndependent,
}

/// A host address: a 32-bit value plus the origin of its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address {
    /// The 32-bit address value.
    pub value: u32,
    /// Where the enclosing block came from.
    pub origin: AddressOrigin,
}

impl Address {
    /// An address inside `prefix` with the given host part.
    pub fn in_prefix(prefix: Prefix, host: u32, origin: AddressOrigin) -> Self {
        let host_bits = 32 - prefix.len() as u32;
        let host_mask = if host_bits == 32 { u32::MAX } else { (1u32 << host_bits) - 1 };
        Address { value: prefix.bits() | (host & host_mask), origin }
    }

    /// Is this address provider-assigned by `asn`?
    pub fn assigned_by(&self, asn: Asn) -> bool {
        self.origin == AddressOrigin::ProviderAssigned(asn)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_masks_low_bits() {
        let p = Prefix::new(0xdead_beef, 16);
        assert_eq!(p.bits(), 0xdead_0000);
        assert_eq!(p, Prefix::new(0xdead_0000, 16));
    }

    #[test]
    fn contains_and_covers() {
        let p16 = Prefix::new(0x0a00_0000, 8);
        let p24 = Prefix::new(0x0a01_0200, 24);
        assert!(p16.contains(0x0a01_0203));
        assert!(!p16.contains(0x0b00_0000));
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p24.covers(&p24));
        assert!(Prefix::DEFAULT.contains(0xffff_ffff));
        assert!(Prefix::DEFAULT.covers(&p24));
    }

    #[test]
    fn subprefix_allocation() {
        let agg = Prefix::new(0x0a00_0000, 8);
        let c0 = agg.subprefix(16, 0);
        let c1 = agg.subprefix(16, 1);
        assert_eq!(c0, Prefix::new(0x0a00_0000, 16));
        assert_eq!(c1, Prefix::new(0x0a01_0000, 16));
        assert!(agg.covers(&c0) && agg.covers(&c1));
        assert_ne!(c0, c1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subprefix_index_bounds() {
        Prefix::new(0, 8).subprefix(9, 2);
    }

    #[test]
    fn address_in_prefix() {
        let p = Prefix::new(0x0a01_0000, 16);
        let a = Address::in_prefix(p, 0x0000_0005, AddressOrigin::ProviderAssigned(Asn(7)));
        assert_eq!(a.value, 0x0a01_0005);
        assert!(p.contains(a.value));
        assert!(a.assigned_by(Asn(7)));
        assert!(!a.assigned_by(Asn(8)));
    }

    #[test]
    fn host_part_is_masked() {
        let p = Prefix::new(0x0a01_0000, 16);
        let a = Address::in_prefix(p, 0xffff_0001, AddressOrigin::ProviderIndependent);
        assert_eq!(a.value, 0x0a01_0001);
    }

    #[test]
    fn zero_len_prefix_hosts() {
        let a =
            Address::in_prefix(Prefix::DEFAULT, 0x1234_5678, AddressOrigin::ProviderIndependent);
        assert_eq!(a.value, 0x1234_5678);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Asn(42).to_string(), "AS42");
        assert_eq!(Prefix::new(0x0a000000, 8).to_string(), "0a000000/8");
    }
}

//! # tussle-net — packet-level network substrate
//!
//! A deterministic model of the data plane the paper's tussles play out on:
//! addresses and prefixes (provider-assigned vs. provider-independent,
//! §V.A.1), self-describing datagrams with ToS bits, ports and optional
//! source routes (§V.A.4, §IV.A), links with latency/bandwidth/loss, a
//! longest-prefix-match forwarding table, and the middleboxes the paper
//! names as tussle mechanisms: firewalls (§V.B), NAT (§I), tunnels
//! (§V.A.2), and QoS classifiers keyed either by ToS bits or — the design
//! the paper criticises — by port numbers (§IV.A, E13).
//!
//! The substrate also implements the paper's "failures of transparency will
//! occur — design what happens then" principle: [`diagnostics`] provides a
//! traceroute that middleboxes may or may not reveal themselves to, and a
//! blame report that maps a delivery failure to a responsible party when
//! the responsible device chose to be visible.
//!
//! ## Example
//!
//! ```
//! use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
//! use tussle_net::packet::{ports, Packet, Protocol};
//! use tussle_net::Network;
//! use tussle_sim::{SimRng, SimTime};
//!
//! let mut net = Network::new();
//! let alice = net.add_host(Asn(1));
//! let bob = net.add_host(Asn(2));
//! net.connect(alice, bob, SimTime::from_millis(10), 1_000_000_000);
//! let a = Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
//! let b = Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
//! net.node_mut(alice).bind(a);
//! net.node_mut(bob).bind(b);
//! net.fib_mut(alice).install(Prefix::DEFAULT, bob, 0);
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let report = net.send(alice, Packet::new(a, b, Protocol::Tcp, 1, ports::HTTP), &mut rng);
//! assert!(report.delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod chaos;
pub mod diagnostics;
pub mod firewall;
pub mod link;
pub mod nat;
pub mod network;
pub mod node;
pub mod packet;
pub mod qos;
pub mod table;
pub mod topo;
pub mod traceback;
pub mod traffic;
pub mod tunnel;
pub mod wiretap;

pub use addr::{Address, Asn, Prefix};
pub use chaos::{apply_action, schedule_plan};
pub use diagnostics::{BlameReport, HopReport, HopVisibility};
pub use firewall::{Firewall, FirewallAction, FirewallRule, MatchOn};
pub use link::{Link, LinkId};
pub use nat::Nat;
pub use network::{DeliveryReport, DropReason, Network};
pub use node::{Node, NodeId, NodeKind};
pub use packet::{Packet, Protocol};
pub use qos::{QosKey, QosPolicy, ServiceClass};
pub use table::Fib;
pub use topo::ScaleTopology;
pub use traceback::{RouterEvidence, TracebackCollector};
pub use traffic::{build_engine, Flow, RetryPolicy, TrafficWorld};
pub use wiretap::{Cache, CaptureRecord, Wiretap};

//! Escalation ladders: tussle played to quiescence.
//!
//! §I: "Different parties adapt a mix of mechanisms to try to achieve their
//! conflicting goals, and others respond by adapting the mechanisms to
//! push back. ... There is no 'final outcome' of these interactions, no
//! stable point." Within one mechanism family, though, each ladder runs
//! until someone has no counter left; what the paper calls the outcome
//! "different in different places" is which rung a given market or polity
//! stops on (deployment of a counter is a *choice*, driven by cost and by
//! whether competition permits it).

use crate::mechanism::Mechanism;
use serde::{Deserialize, Serialize};

/// One move in a ladder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LadderStep {
    /// Which rung (0 = the opening move).
    pub rung: usize,
    /// The mechanism deployed.
    pub mechanism: Mechanism,
}

/// An escalation ladder from an opening mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationLadder {
    /// The moves, in order.
    pub steps: Vec<LadderStep>,
}

impl EscalationLadder {
    /// Play a ladder from `opening`, letting `choose` pick among available
    /// counters at each rung (return `None` to decline to escalate — the
    /// "stop here" outcome). `max_rungs` bounds runaway ladders.
    pub fn play(
        opening: Mechanism,
        max_rungs: usize,
        mut choose: impl FnMut(usize, &[Mechanism]) -> Option<Mechanism>,
    ) -> EscalationLadder {
        let mut steps = vec![LadderStep { rung: 0, mechanism: opening }];
        let mut current = opening;
        for rung in 1..=max_rungs {
            let counters = current.countered_by();
            if counters.is_empty() {
                break;
            }
            match choose(rung, &counters) {
                Some(next) if counters.contains(&next) => {
                    steps.push(LadderStep { rung, mechanism: next });
                    current = next;
                }
                _ => break,
            }
        }
        EscalationLadder { steps }
    }

    /// Play greedily: always escalate with the first available counter.
    pub fn play_to_the_end(opening: Mechanism, max_rungs: usize) -> EscalationLadder {
        Self::play(opening, max_rungs, |_, counters| counters.first().copied())
    }

    /// The mechanism left standing.
    pub fn final_mechanism(&self) -> Mechanism {
        self.steps.last().expect("ladders have an opening move").mechanism
    }

    /// Number of counter-moves made after the opening.
    pub fn escalations(&self) -> usize {
        self.steps.len() - 1
    }

    /// Did the ladder end because no counter exists (vs. someone declining)?
    pub fn ended_terminal(&self) -> bool {
        self.final_mechanism().is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Mechanism::*;

    #[test]
    fn greedy_ladder_from_port_qos_reaches_terminal() {
        let ladder = EscalationLadder::play_to_the_end(QosPortBased, 10);
        assert!(ladder.ended_terminal());
        assert_eq!(ladder.steps[0].mechanism, QosPortBased);
        // QosPortBased -> Encryption -> EncryptionBlocking -> Steganography
        let mechanisms: Vec<_> = ladder.steps.iter().map(|s| s.mechanism).collect();
        assert_eq!(mechanisms, vec![QosPortBased, Encryption, EncryptionBlocking, Steganography]);
        assert_eq!(ladder.escalations(), 3);
    }

    #[test]
    fn declining_to_escalate_stops_the_ladder() {
        // a user who will not buy steganography tools stops at blocking
        let ladder = EscalationLadder::play(Encryption, 10, |rung, counters| {
            if rung >= 2 {
                None
            } else {
                counters.first().copied()
            }
        });
        assert_eq!(ladder.final_mechanism(), EncryptionBlocking);
        assert!(!ladder.ended_terminal());
    }

    #[test]
    fn choosers_pick_among_counters() {
        // at the EncryptionBlocking rung, choose Regulation over Steganography
        let ladder = EscalationLadder::play(Encryption, 10, |_, counters| {
            counters.iter().copied().find(|m| *m == Regulation).or(counters.first().copied())
        });
        let mechanisms: Vec<_> = ladder.steps.iter().map(|s| s.mechanism).collect();
        assert_eq!(mechanisms, vec![Encryption, EncryptionBlocking, Regulation]);
        assert!(ladder.ended_terminal());
    }

    #[test]
    fn invalid_choices_end_the_ladder() {
        let ladder = EscalationLadder::play(Encryption, 10, |_, _| Some(Nat));
        assert_eq!(ladder.escalations(), 0);
    }

    #[test]
    fn terminal_openings_never_escalate() {
        let ladder = EscalationLadder::play_to_the_end(QosTosBits, 10);
        assert_eq!(ladder.escalations(), 0);
        assert!(ladder.ended_terminal());
    }

    #[test]
    fn max_rungs_bounds_the_ladder() {
        let ladder = EscalationLadder::play_to_the_end(QosPortBased, 1);
        assert_eq!(ladder.escalations(), 1);
    }
}

//! Microbenchmarks for every substrate the experiments run on: the event
//! engine, forwarding, routing protocols, the policy language, the game
//! solvers, the market and the ledger.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench substrates
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use tussle_core::{EscalationLadder, Mechanism};
use tussle_econ::{Consumer, Ledger, Market, Money, Provider};
use tussle_game::{FictitiousPlay, Game};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Fib, Network, NodeId};
use tussle_policy::{parse_expr, Ontology, Request};
use tussle_routing::{AsGraph, LinkStateProtocol};
use tussle_sim::{Engine, SimRng, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("sim/engine 10k events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new(0, 1);
            fn tick(w: &mut u64, ctx: &mut tussle_sim::Ctx<u64>) {
                *w += 1;
                if *w < 10_000 {
                    ctx.schedule_in(SimTime::from_micros(10), tick);
                }
            }
            eng.schedule_at(SimTime::ZERO, tick);
            eng.run_to_completion();
            black_box(eng.world)
        })
    });
}

fn bench_fib(c: &mut Criterion) {
    let mut fib = Fib::new();
    for i in 0..1_000u32 {
        fib.install(Prefix::new(i << 12, 24), NodeId(i % 16), i);
    }
    c.bench_function("net/fib lookup in 1k routes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1_000u32 {
                if fib.lookup(black_box((i << 12) | 7)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn line_network(n: usize) -> (Network, NodeId, Address, Address) {
    let mut net = Network::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| net.add_router(Asn(i as u32))).collect();
    for w in nodes.windows(2) {
        net.connect(w[0], w[1], SimTime::from_millis(1), 1_000_000_000);
    }
    let src =
        Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
    let dst =
        Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
    net.node_mut(nodes[0]).bind(src);
    net.node_mut(nodes[n - 1]).bind(dst);
    let dp = Prefix::new(0x0b000000, 16);
    for w in nodes.windows(2) {
        net.fib_mut(w[0]).install(dp, w[1], 0);
    }
    (net, nodes[0], src, dst)
}

fn bench_forwarding(c: &mut Criterion) {
    let (mut net, first, src, dst) = line_network(32);
    let mut rng = SimRng::seed_from_u64(1);
    c.bench_function("net/forward across 32 hops", |b| {
        b.iter(|| {
            let pkt = Packet::new(src, dst, Protocol::Tcp, 1, ports::HTTP);
            black_box(net.send(first, pkt, &mut rng).delivered)
        })
    });
}

fn bench_spf(c: &mut Criterion) {
    // a 2x50 grid
    let mut net = Network::new();
    let mut grid = Vec::new();
    for i in 0..100 {
        grid.push(net.add_router(Asn(i)));
    }
    for i in 0..50 {
        if i + 1 < 50 {
            net.connect(grid[i], grid[i + 1], SimTime::from_millis(1), 1_000_000_000);
            net.connect(grid[50 + i], grid[51 + i], SimTime::from_millis(1), 1_000_000_000);
        }
        net.connect(grid[i], grid[50 + i], SimTime::from_millis(2), 1_000_000_000);
    }
    let ls = LinkStateProtocol::spanning(&net);
    c.bench_function("routing/spf over 100 nodes", |b| {
        b.iter(|| black_box(ls.path(&net, grid[0], grid[99])))
    });
}

fn bench_path_vector(c: &mut Criterion) {
    c.bench_function("routing/path-vector 50-AS convergence", |b| {
        b.iter(|| {
            let mut g = AsGraph::new();
            // two tier-1s, ten mid-tier, stubs below
            g.peers(Asn(1), Asn(2));
            for m in 0..10u32 {
                g.customer_of(Asn(100 + m), Asn(1 + (m % 2)));
                for s in 0..4u32 {
                    g.customer_of(Asn(1000 + m * 10 + s), Asn(100 + m));
                }
            }
            g.originate(Asn(1000), Prefix::new(0x0a000000, 16));
            black_box(g.converge(100))
        })
    });
}

fn bench_policy(c: &mut Criterion) {
    let ont = Ontology::network();
    let expr = parse_expr(
        r#"(action == "connect" && dst_port in [80, 443, 8080]) || (encrypted && !anonymous && tos >= 4)"#,
    )
    .unwrap();
    let req = Request::new()
        .with("action", "connect")
        .with("dst_port", 443i64)
        .with("encrypted", true)
        .with("anonymous", false)
        .with("tos", 5i64);
    c.bench_function("policy/eval compound condition", |b| {
        b.iter(|| black_box(expr.matches(&req, &ont).unwrap()))
    });
    c.bench_function("policy/parse compound condition", |b| {
        b.iter(|| {
            black_box(
                parse_expr(r#"(a == 1 && b in [2, 3]) || !(c != "x")"#)
                    .map(|e| e.attributes().len()),
            )
        })
    });
}

fn bench_games(c: &mut Criterion) {
    c.bench_function("game/fictitious play 1k rounds", |b| {
        b.iter(|| {
            let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
            let mut fp = FictitiousPlay::new(g);
            fp.run(1_000);
            black_box(fp.row_empirical())
        })
    });
}

fn bench_market(c: &mut Criterion) {
    c.bench_function("econ/market 20 consumers x 20 months", |b| {
        b.iter(|| {
            let consumers: Vec<Consumer> = (0..20)
                .map(|id| Consumer {
                    id,
                    value: Money::from_dollars(100),
                    usage_mb: 1000,
                    runs_server: false,
                    tunnels: false,
                    switching_cost: Money::from_dollars(100),
                    provider: None,
                })
                .collect();
            let providers = vec![
                Provider::flat("a", Money::from_dollars(60), Money::from_dollars(20)),
                Provider::flat("b", Money::from_dollars(60), Money::from_dollars(20)),
            ];
            black_box(Market::new(consumers, providers).run(20).avg_markup)
        })
    });
}

fn bench_ledger(c: &mut Criterion) {
    c.bench_function("econ/ledger 1k transfers", |b| {
        b.iter(|| {
            let mut l = Ledger::new();
            let accounts: Vec<_> = (0..16).map(tussle_econ::AccountId).collect();
            for a in &accounts {
                l.open(*a);
                l.mint(*a, Money::from_dollars(1_000));
            }
            for i in 0..1_000u64 {
                let from = accounts[(i % 16) as usize];
                let to = accounts[((i + 1) % 16) as usize];
                l.transfer(from, to, Money(100), "bench").unwrap();
            }
            assert!(l.is_conserving());
            black_box(l.total_minted())
        })
    });
}

fn bench_escalation(c: &mut Criterion) {
    c.bench_function("core/escalation ladder", |b| {
        b.iter(|| black_box(EscalationLadder::play_to_the_end(Mechanism::QosPortBased, 10)))
    });
}

fn bench_sourceroute(c: &mut Criterion) {
    let mut g = AsGraph::new();
    for m in 0..6u32 {
        g.customer_of(Asn(1), Asn(10 + m));
        g.customer_of(Asn(2), Asn(10 + m));
        if m > 0 {
            g.peers(Asn(10 + m), Asn(10 + m - 1));
        }
    }
    let prices: BTreeMap<Asn, u64> = (0..6u32).map(|m| (Asn(10 + m), 100 + m as u64)).collect();
    c.bench_function("routing/enumerate paths (6 transits)", |b| {
        b.iter(|| {
            black_box(
                tussle_routing::sourceroute::enumerate_paths(&g, Asn(1), Asn(2), 5, &prices).len(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_fib,
    bench_forwarding,
    bench_spf,
    bench_path_vector,
    bench_policy,
    bench_games,
    bench_market,
    bench_ledger,
    bench_escalation,
    bench_sourceroute,
);
criterion_main!(benches);

//! E17 — Routing in an uncooperative network (§II.B).
//!
//! Paper claim: "A second response is to preserve the notion there is 'one
//! right answer,' but build technical systems that are more resistant to
//! those that perceive the answer differently. ... Perlman considers
//! network routing in the presence of byzantine failures. ... Savage
//! applies the same strategy to ... IP traceback. ... current solutions
//! ... are dependent on a model of cooperation that no longer exists
//! universally in the network."
//!
//! Measured, on one link-state domain:
//! 1. **cooperative baseline** — everyone honest, full delivery;
//! 2. **blackhole attack** — a byzantine router advertises irresistibly
//!    cheap adjacencies (modeled as real control-plane links) and silently
//!    drops everything it attracts: delivery collapses *because* shortest-
//!    path routing trusts advertisements;
//! 3. **resistant response** — the operators aggregate blame reports,
//!    identify the common drop point, exclude it from the routing domain
//!    and recompute: delivery restored (Perlman's move);
//! 4. **traceback** — in parallel, a source-spoofed flood against a victim
//!    is traced to its ingress router via probabilistic marking (Savage's
//!    move), even though the source addresses are lies.

use std::collections::BTreeMap;
use tussle_core::{ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::firewall::Firewall;
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::traceback::TracebackCollector;
use tussle_net::{Network, NodeId};
use tussle_routing::LinkStateProtocol;
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// Outcome of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOutcome {
    /// Fraction of probe traffic delivered.
    pub delivery: f64,
    /// The node blame reports most often accuse, if any failures occurred.
    pub prime_suspect: Option<NodeId>,
}

struct Domain {
    net: Network,
    routers: Vec<NodeId>,
    src_host: NodeId,
    dst_host: NodeId,
    src_addr: Address,
    dst_addr: Address,
    dst_prefix: Prefix,
    liar: NodeId,
}

/// A ring of 6 routers with hosts hanging off opposite sides; the liar
/// sits well off the honest shortest path.
fn domain() -> Domain {
    let mut net = Network::new();
    let routers: Vec<NodeId> = (0..6).map(|i| net.add_router(Asn(i))).collect();
    for i in 0..6 {
        let a = routers[i];
        let b = routers[(i + 1) % 6];
        net.connect(a, b, SimTime::from_millis(5), 1_000_000_000);
    }
    let src_host = net.add_host(Asn(0));
    let dst_host = net.add_host(Asn(3));
    net.connect(src_host, routers[0], SimTime::from_millis(1), 1_000_000_000);
    net.connect(dst_host, routers[3], SimTime::from_millis(1), 1_000_000_000);
    let src_addr =
        Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderAssigned(Asn(0)));
    let dst_addr =
        Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderAssigned(Asn(3)));
    net.node_mut(src_host).bind(src_addr);
    net.node_mut(dst_host).bind(dst_addr);
    // traceback marking is on everywhere (it is cheap and unilateral)
    for r in &routers {
        net.node_mut(*r).marks_packets = true;
    }
    Domain {
        net,
        liar: routers[4],
        routers,
        src_host,
        dst_host,
        src_addr,
        dst_addr,
        dst_prefix: Prefix::new(0x0b000000, 16),
    }
}

fn install_routes(d: &mut Domain, members: Vec<NodeId>) {
    for r in &d.routers {
        d.net.fib_mut(*r).clear();
    }
    d.net.fib_mut(d.src_host).clear();
    let mut all = members;
    all.push(d.src_host);
    all.push(d.dst_host);
    let ls = LinkStateProtocol::new(all);
    ls.install_routes(&mut d.net, &[(d.dst_prefix, d.dst_host)]);
}

fn probe(d: &mut Domain, n: usize, rng: &mut SimRng) -> (f64, BTreeMap<NodeId, usize>) {
    let mut delivered = 0usize;
    let mut blames: BTreeMap<NodeId, usize> = BTreeMap::new();
    for _ in 0..n {
        let pkt = Packet::new(d.src_addr, d.dst_addr, Protocol::Tcp, 1, ports::HTTP);
        let rep = d.net.send(d.src_host, pkt, rng);
        if rep.delivered {
            delivered += 1;
        } else if let Some(b) = tussle_net::diagnostics::blame(&d.net, &rep) {
            if let Some(node) = b.responsible_node {
                *blames.entry(node).or_insert(0) += 1;
            }
        }
    }
    (delivered as f64 / n as f64, blames)
}

/// Phase 1: the cooperative baseline.
pub fn phase_baseline(seed: u64) -> PhaseOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e17");
    let mut d = domain();
    let members = d.routers.clone();
    install_routes(&mut d, members);
    let (delivery, blames) = probe(&mut d, 100, &mut rng);
    PhaseOutcome { delivery, prime_suspect: top_suspect(&blames) }
}

/// Phase 2: the blackhole attack.
pub fn phase_attack(seed: u64) -> PhaseOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e17");
    let mut d = domain();
    inject_blackhole(&mut d);
    let members = d.routers.clone();
    install_routes(&mut d, members);
    let (delivery, blames) = probe(&mut d, 100, &mut rng);
    PhaseOutcome { delivery, prime_suspect: top_suspect(&blames) }
}

/// Phase 3: detect from blame reports, exclude, recompute.
pub fn phase_resistant(seed: u64) -> PhaseOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e17");
    let mut d = domain();
    inject_blackhole(&mut d);
    let members = d.routers.clone();
    install_routes(&mut d, members);
    let (_, blames) = probe(&mut d, 100, &mut rng);
    let suspect = top_suspect(&blames).expect("the attack produces failures");
    // Perlman's move: stop believing the suspect; route without it.
    let survivors: Vec<NodeId> = d.routers.iter().copied().filter(|r| *r != suspect).collect();
    install_routes(&mut d, survivors);
    let (delivery, blames) = probe(&mut d, 100, &mut rng);
    PhaseOutcome { delivery, prime_suspect: top_suspect(&blames).or(Some(suspect)) }
}

/// The byzantine move: the liar grows fake "1µs" adjacencies to every
/// router (what a poisoned link-state advertisement claims), and a
/// deny-all forwarding plane.
fn inject_blackhole(d: &mut Domain) {
    for r in d.routers.clone() {
        if r != d.liar && d.net.link_between(d.liar, r).is_none() {
            d.net.connect(d.liar, r, SimTime::from_micros(1), 1_000_000_000);
        }
    }
    // even its real links become irresistibly cheap
    for lid in d.net.links_of(d.liar).to_vec() {
        d.net.link_mut(lid).latency = SimTime::from_micros(1);
    }
    let mut fw = Firewall::port_allowlist(vec![], "byzantine router");
    fw.reveals_presence = true; // drops are attributable (the worst case for the liar)
    d.net.set_firewall(d.liar, fw);
}

fn top_suspect(blames: &BTreeMap<NodeId, usize>) -> Option<NodeId> {
    blames.iter().max_by_key(|(_, n)| **n).map(|(node, _)| *node)
}

/// Phase 4: trace a spoofed flood back to its ingress.
pub fn phase_traceback(seed: u64) -> (Option<NodeId>, NodeId) {
    let mut rng = SimRng::seed_from_u64(seed).fork("e17-flood");
    let mut d = domain();
    let members = d.routers.clone();
    install_routes(&mut d, members);
    // the attacker floods from src_host with spoofed sources
    let spoofed =
        Address::in_prefix(Prefix::new(0xdead0000, 16), 7, AddressOrigin::ProviderIndependent);
    let mut collector = TracebackCollector::new();
    for _ in 0..3_000 {
        let pkt = Packet::new(spoofed, d.dst_addr, Protocol::Udp, 666, ports::HTTP);
        let rep = d.net.send(d.src_host, pkt, &mut rng);
        if rep.delivered {
            collector.observe(&rep.mark);
        }
    }
    // ground truth: the attacker's ingress router is routers[0]
    (collector.nearest_to_attacker(30), d.routers[0])
}

/// World for the engine-driven replay: the four phases' results.
#[derive(Default)]
struct ByzantineWorld {
    base: Option<PhaseOutcome>,
    attack: Option<PhaseOutcome>,
    resist: Option<PhaseOutcome>,
    traceback: Option<(Option<NodeId>, NodeId)>,
}

/// One phase of the byzantine story as an engine event, chaining to the
/// next phase after a seeded operational lag. The phases are genuinely
/// causal: the attack answers the baseline, exclusion answers the attack,
/// and the traceback hunts the flood the attacker launches in retreat.
fn run_phase(w: &mut ByzantineWorld, ctx: &mut Ctx<ByzantineWorld>, phase: usize, seed: u64) {
    let (topic, actor) = match phase {
        0 => ("e17.baseline", "isp"),
        1 => ("e17.attack", "attacker"),
        2 => ("e17.exclude", "isp"),
        _ => ("e17.traceback", "isp"),
    };
    ctx.span_enter(topic, Some(actor), &[("phase", &phase.to_string())]);
    match phase {
        0 => w.base = Some(phase_baseline(seed)),
        1 => w.attack = Some(phase_attack(seed)),
        2 => w.resist = Some(phase_resistant(seed)),
        _ => w.traceback = Some(phase_traceback(seed)),
    }
    ctx.span_exit(&[]);
    if phase + 1 < 4 {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            topic,
            Some(actor),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("phase {phase} concludes; the response follows"),
        );
        ctx.schedule_in(lag, move |w2: &mut ByzantineWorld, ctx2| {
            run_phase(w2, ctx2, phase + 1, seed);
        });
    } else {
        ctx.trace("e17.settled", "the uncooperative-network story concludes");
    }
}

/// Run E17 and produce the report. The four phases run as one sequential
/// causal chain of engine events on the shared clock.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(ByzantineWorld::default(), seed);
    // The cooperative baseline opens the chain as its root injection.
    eng.schedule_at(SimTime::ZERO, move |w: &mut ByzantineWorld, ctx| {
        run_phase(w, ctx, 0, seed);
    });
    eng.run_to_completion();

    let base = eng.world.base.expect("the baseline settles");
    let attack = eng.world.attack.expect("the attack settles");
    let resist = eng.world.resist.expect("the exclusion settles");
    let (traced, ingress) = eng.world.traceback.expect("the traceback settles");

    let mut table = Table::new(
        "One link-state domain, one byzantine router (100 probes per phase)",
        &["delivery", "prime suspect"],
    );
    for (label, o) in [
        ("cooperative baseline", &base),
        ("blackhole attack", &attack),
        ("after exclusion (Perlman)", &resist),
    ] {
        table.push_row(
            label,
            &[
                format!("{:.2}", o.delivery),
                o.prime_suspect.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            ],
        );
    }
    table.push_row(
        "spoofed flood traceback (Savage)",
        &[
            "n/a".into(),
            traced.map(|n| format!("{n} (ingress: {ingress})")).unwrap_or_else(|| "failed".into()),
        ],
    );

    let shape_holds = base.delivery > 0.99
        && attack.delivery < 0.01
        && attack.prime_suspect.is_some()
        && resist.delivery > 0.99
        && traced == Some(ingress);

    ExperimentReport {
        id: "E17".into(),
        section: "II.B".into(),
        paper_claim: "Shortest-path routing collapses when one byzantine router lies about its \
                      adjacencies and blackholes what it attracts; the 'more resistant' designs \
                      the paper cites work: fault attribution + exclusion restores delivery \
                      (Perlman), and probabilistic marking traces a source-spoofed flood to its \
                      ingress despite the lies (Savage)."
            .into(),
        summary: format!(
            "delivery {:.0}% → {:.0}% under attack (suspect {}) → {:.0}% after exclusion; \
             flood traced to {} (true ingress {}).",
            base.delivery * 100.0,
            attack.delivery * 100.0,
            attack.prime_suspect.map(|n| n.to_string()).unwrap_or_default(),
            resist.delivery * 100.0,
            traced.map(|n| n.to_string()).unwrap_or_else(|| "nothing".into()),
            ingress,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_healthy() {
        let o = phase_baseline(1);
        assert_eq!(o.delivery, 1.0);
        assert_eq!(o.prime_suspect, None);
    }

    #[test]
    fn the_blackhole_attracts_and_drops_everything() {
        let o = phase_attack(1);
        assert_eq!(o.delivery, 0.0);
        assert!(o.prime_suspect.is_some(), "blame converges on the liar");
    }

    #[test]
    fn exclusion_restores_delivery() {
        let o = phase_resistant(1);
        assert_eq!(o.delivery, 1.0);
    }

    #[test]
    fn traceback_finds_the_ingress_despite_spoofing() {
        let (traced, ingress) = phase_traceback(1);
        assert_eq!(traced, Some(ingress));
    }

    #[test]
    fn report_shape_holds_across_seeds() {
        for seed in [1, 9, 77] {
            let r = run(seed);
            assert!(r.shape_holds, "seed {seed}: {}", r.summary);
        }
    }
}

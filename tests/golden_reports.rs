//! Golden-report lockdown: the rendered markdown of all 17 experiments at
//! the default seed is snapshotted under `tests/golden/`. Any change to a
//! table, summary, claim or cost appendix — intended or not — shows up as
//! a diff here.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! git diff tests/golden/   # review what actually changed
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use tussle::experiments::run_all;

const GOLDEN_SEED: u64 = 2002;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1")
}

/// A line-by-line diff that shows every mismatch with its line number —
/// enough to act on without an external diff tool.
fn diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                let _ = writeln!(out, "  line {}:", i + 1);
                let _ = writeln!(out, "    golden: {}", e.copied().unwrap_or("<missing>"));
                let _ = writeln!(out, "    actual: {}", a.copied().unwrap_or("<missing>"));
            }
        }
    }
    out
}

#[test]
fn golden_reports_match_all_17_experiments() {
    let dir = golden_dir();
    let reports = run_all(GOLDEN_SEED);
    assert_eq!(reports.len(), 17);

    if updating() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    for r in &reports {
        let path = dir.join(format!("{}.md", r.id));
        let actual = r.to_markdown();
        if updating() {
            std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => failures.push(format!(
                "{} diverged from {}:\n{}",
                r.id,
                path.display(),
                diff(&expected, &actual)
            )),
            Err(e) => failures.push(format!(
                "{}: cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
                r.id,
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden report(s) diverged at seed {GOLDEN_SEED}. If the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the git diff.\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn no_stale_golden_files() {
    // A renamed or removed experiment must not leave a silently-passing
    // orphan snapshot behind.
    let dir = golden_dir();
    if updating() || !dir.exists() {
        return;
    }
    let mut live: Vec<String> =
        run_all(GOLDEN_SEED).iter().map(|r| format!("{}.md", r.id)).collect();
    // Non-report snapshots locked by their own tests.
    live.push("E10.collapsed".to_owned());
    live.push("E14.collapsed".to_owned());
    live.push("E9.chrome.json".to_owned());
    for entry in std::fs::read_dir(&dir).expect("read tests/golden") {
        let name = entry.expect("dir entry").file_name().to_string_lossy().into_owned();
        assert!(
            live.contains(&name),
            "stale golden file tests/golden/{name}: no experiment produces it"
        );
    }
}

#[test]
fn golden_collapsed_stack_matches_e10() {
    // The flamegraph export is deterministic because frames are attributed
    // by *virtual* time, so the collapsed-stack rendering of E10 at the
    // golden seed can be locked byte-for-byte like the reports.
    let path = golden_dir().join("E10.collapsed");
    let actual =
        tussle::experiments::profile::collapsed(GOLDEN_SEED, &["E10".into()]).expect("E10 exists");
    assert!(!actual.is_empty(), "E10 opens observation spans");
    if updating() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) if expected == actual => {}
        Ok(expected) => panic!(
            "E10 collapsed stacks diverged from {}:\n{}",
            path.display(),
            diff(&expected, &actual)
        ),
        Err(e) => panic!(
            "cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        ),
    }
}

#[test]
fn golden_collapsed_stack_matches_e14() {
    // E14's game phases run as one sequential engine-event chain with
    // spans held open across events, so its flamegraph has real
    // virtual-time widths and locks byte-for-byte like E10's.
    let path = golden_dir().join("E14.collapsed");
    let actual =
        tussle::experiments::profile::collapsed(GOLDEN_SEED, &["E14".into()]).expect("E14 exists");
    assert!(!actual.is_empty(), "E14 opens observation spans");
    for line in actual.lines() {
        assert!(line.starts_with("E14;"), "frame outside the E14 root: {line}");
    }
    if updating() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) if expected == actual => {}
        Ok(expected) => panic!(
            "E14 collapsed stacks diverged from {}:\n{}",
            path.display(),
            diff(&expected, &actual)
        ),
        Err(e) => panic!(
            "cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        ),
    }
}

#[test]
fn golden_chrome_export_matches_e9() {
    // The Chrome trace export renders only virtual-time fields, so E9's
    // trace at the golden seed is locked byte-for-byte — the same file
    // `tussle-cli export --only E9 --format chrome` must reproduce, which
    // ci.sh cross-checks against this snapshot across thread counts.
    let path = golden_dir().join("E9.chrome.json");
    let records =
        tussle::experiments::profile::export_records(GOLDEN_SEED, &["E9".into()], Some(1))
            .expect("E9 exists");
    assert_eq!(records.len(), 1);
    let actual = tussle::sim::to_chrome(&records[0].1);
    assert!(actual.contains("\"traceEvents\""), "well-formed wrapper");
    if updating() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) if expected == actual => {}
        Ok(expected) => panic!(
            "E9 chrome export diverged from {}:\n{}",
            path.display(),
            diff(&expected, &actual)
        ),
        Err(e) => panic!(
            "cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        ),
    }
}

#[test]
fn golden_reports_carry_the_cost_appendix() {
    // The observability contract: every locked snapshot includes the run's
    // deterministic cost line, so a digest change is a golden diff too.
    for r in run_all(GOLDEN_SEED) {
        let cost = r.cost.as_ref().unwrap_or_else(|| panic!("{} has no cost appendix", r.id));
        let md = r.to_markdown();
        assert!(
            md.contains("*Cost:") && md.contains(&cost.digest),
            "{}: markdown is missing its cost appendix",
            r.id
        );
        // The engine-migration contract: every experiment schedules real
        // engine events — none silently falls back to plain loops.
        assert!(cost.events > 0, "{}: RunCost reports zero engine events", r.id);
    }
}

//! Chaos campaign: robustness margins for every paper claim.
//!
//! The seed sweep (see [`crate::sweep`]) asks "does the claim hold across
//! seeds?"; the chaos campaign asks the robustness question on top: *how
//! much infrastructure misbehaviour does each claim survive?* It fans the
//! registry over an `experiments × intensities × seeds` grid. Each run is
//! wrapped in a thread-local *ambient fault intensity*
//! ([`tussle_sim::fault::set_ambient_intensity`]) that the network substrate
//! consults per hop, so experiments need no chaos-specific plumbing — and
//! experiments that never touch the network show zero fault activity, which
//! the report surfaces as a *vacuous* margin rather than hiding it.
//!
//! ## Determinism
//!
//! Same execution model as the sweep: workers steal `(experiment,
//! intensity, seed)` jobs from a shared atomic index, results land in fixed
//! slots, and the reduction walks the grid in a fixed order. Ambient
//! intensity and fault tallies are thread-local and scoped to one job by
//! [`tussle_sim::fault::AmbientGuard`], so job placement cannot leak state
//! between runs. The rendered [`ChaosReport`] is byte-identical across
//! thread counts. At intensity 0 the ambient hook draws no randomness at
//! all, so that column of the grid is byte-identical to a plain sweep.
//!
//! ## Panic isolation
//!
//! Every run goes through [`crate::run_captured`]: a panicking experiment
//! becomes a synthetic failing report (counted in
//! [`IntensityStats::panics`]) and the campaign completes regardless.

use crate::sweep::reduce_experiment;
use crate::{registry, ExperimentEntry};
use std::sync::atomic::{AtomicUsize, Ordering};
use tussle_core::report::{ChaosReport, IntensityStats, MarginStats};
use tussle_core::ExperimentReport;
use tussle_sim::fault;
use tussle_sim::FaultStats;

/// What to subject to chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Fault intensities to scan, each in `[0, 1]`. Sorted ascending and
    /// deduplicated before running; must be nonempty. Include `0.0` to
    /// anchor the grid at the fault-free baseline.
    pub intensities: Vec<f64>,
    /// Seeds per intensity (`base_seed..base_seed + seeds`). Must be
    /// nonzero.
    pub seeds: u64,
    /// First seed of the contiguous range.
    pub base_seed: u64,
    /// Restrict to these experiment ids; `None` runs the whole registry.
    pub only: Option<Vec<String>>,
    /// Worker-thread cap; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            intensities: vec![0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            seeds: 8,
            base_seed: 1,
            only: None,
            threads: None,
        }
    }
}

/// Why a chaos campaign could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// `seeds` was zero.
    NoSeeds,
    /// `intensities` was empty.
    NoIntensities,
    /// An intensity was NaN or outside `[0, 1]`.
    BadIntensity(f64),
    /// An id in `only` names no experiment in the registry.
    UnknownExperiment(String),
}

impl core::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChaosError::NoSeeds => f.write_str("chaos campaign needs at least one seed"),
            ChaosError::NoIntensities => f.write_str("chaos campaign needs at least one intensity"),
            ChaosError::BadIntensity(i) => {
                write!(f, "intensity {i} is not a number in [0, 1]")
            }
            ChaosError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (the registry has E1..=E17)")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// Run the chaos campaign over the experiment registry (or the `only`
/// subset). See the module docs for the execution model.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, ChaosError> {
    let full = registry();
    let selected: Vec<ExperimentEntry> = match &config.only {
        None => full,
        Some(ids) => {
            let mut picked = Vec::with_capacity(ids.len());
            for id in ids {
                let entry = full
                    .iter()
                    .find(|(name, _)| name.eq_ignore_ascii_case(id))
                    .ok_or_else(|| ChaosError::UnknownExperiment(id.clone()))?;
                picked.push(*entry);
            }
            picked
        }
    };
    run_chaos_entries(&selected, config)
}

/// Run the campaign over an explicit entry list, ignoring `config.only`.
/// Public so tests can inject synthetic experiments (e.g. one that always
/// panics) alongside or instead of the registry.
pub fn run_chaos_entries(
    entries: &[ExperimentEntry],
    config: &ChaosConfig,
) -> Result<ChaosReport, ChaosError> {
    if config.seeds == 0 {
        return Err(ChaosError::NoSeeds);
    }
    if config.intensities.is_empty() {
        return Err(ChaosError::NoIntensities);
    }
    for &i in &config.intensities {
        if !i.is_finite() || !(0.0..=1.0).contains(&i) {
            return Err(ChaosError::BadIntensity(i));
        }
    }
    let mut intensities = config.intensities.clone();
    intensities.sort_by(f64::total_cmp);
    intensities.dedup();

    let seeds: Vec<u64> = (0..config.seeds).map(|i| config.base_seed.wrapping_add(i)).collect();
    let grid = run_grid(entries, &intensities, &seeds, config.threads);

    // Sequential reduction in fixed (experiment, intensity, seed) order;
    // nothing past this point depends on parallel scheduling.
    let experiments = entries
        .iter()
        .enumerate()
        .map(|(row, (name, _))| {
            let per_intensity: Vec<IntensityStats> = intensities
                .iter()
                .enumerate()
                .map(|(col, &intensity)| {
                    let cell = &grid[row][col];
                    let reports: Vec<ExperimentReport> =
                        cell.iter().map(|(r, _, _)| r.clone()).collect();
                    let panics = cell.iter().filter(|(_, panicked, _)| *panicked).count() as u64;
                    let mut faults = FaultStats::default();
                    for (_, _, f) in cell {
                        faults.merge(f);
                    }
                    IntensityStats {
                        intensity,
                        panics,
                        faults,
                        sweep: reduce_experiment(name, &seeds, &reports),
                    }
                })
                .collect();
            MarginStats {
                id: (*name).to_owned(),
                section: per_intensity
                    .first()
                    .map_or_else(String::new, |s| s.sweep.section.clone()),
                margin: MarginStats::margin_of(&per_intensity),
                intensities: per_intensity,
            }
        })
        .collect();

    Ok(ChaosReport { base_seed: config.base_seed, seeds: config.seeds, intensities, experiments })
}

type ChaosCell = (ExperimentReport, bool, FaultStats);

/// Run `experiments × intensities × seeds` jobs on scoped worker threads.
/// Returns cells as `[experiment][intensity][seed]`.
fn run_grid(
    entries: &[ExperimentEntry],
    intensities: &[f64],
    seeds: &[u64],
    threads: Option<usize>,
) -> Vec<Vec<Vec<ChaosCell>>> {
    let per_exp = intensities.len() * seeds.len();
    let jobs = entries.len() * per_exp;
    let workers = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1));

    let next = AtomicUsize::new(0);
    let mut harvested: Vec<(usize, ChaosCell)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= jobs {
                            break;
                        }
                        let (name, run) = entries[job / per_exp];
                        let intensity = intensities[(job % per_exp) / seeds.len()];
                        let seed = seeds[job % seeds.len()];
                        // Scope the ambient intensity to exactly this run and
                        // start its fault tally from zero; the guard restores
                        // the thread's previous (fault-free) state either way.
                        let guard = fault::set_ambient_intensity(intensity);
                        let _ = fault::take_ambient_stats();
                        let (report, panicked) = crate::run_isolated(name, run, seed);
                        let faults = fault::take_ambient_stats();
                        drop(guard);
                        local.push((job, (report, panicked, faults)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker threads do not panic")).collect()
    });

    harvested.sort_by_key(|(job, _)| *job);
    debug_assert_eq!(harvested.len(), jobs, "every job produced one cell");
    let mut it = harvested.into_iter().map(|(_, c)| c);
    (0..entries.len())
        .map(|_| (0..intensities.len()).map(|_| it.by_ref().take(seeds.len()).collect()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seeds: u64, intensities: &[f64], only: &[&str]) -> ChaosConfig {
        ChaosConfig {
            intensities: intensities.to_vec(),
            seeds,
            base_seed: 1,
            only: Some(only.iter().map(|s| (*s).to_owned()).collect()),
            threads: None,
        }
    }

    #[test]
    fn config_validation() {
        let cfg = ChaosConfig { seeds: 0, ..ChaosConfig::default() };
        assert_eq!(run_chaos(&cfg), Err(ChaosError::NoSeeds));
        let cfg = ChaosConfig { intensities: vec![], ..ChaosConfig::default() };
        assert_eq!(run_chaos(&cfg), Err(ChaosError::NoIntensities));
        let cfg = ChaosConfig { intensities: vec![0.0, 1.5], ..ChaosConfig::default() };
        assert_eq!(run_chaos(&cfg), Err(ChaosError::BadIntensity(1.5)));
        let cfg = ChaosConfig { intensities: vec![f64::NAN], ..ChaosConfig::default() };
        assert!(matches!(run_chaos(&cfg), Err(ChaosError::BadIntensity(_))));
        let err = run_chaos(&quick(1, &[0.0], &["E99"])).unwrap_err();
        assert_eq!(err, ChaosError::UnknownExperiment("E99".into()));
    }

    #[test]
    fn intensities_are_sorted_and_deduped() {
        let report = run_chaos(&quick(1, &[0.4, 0.0, 0.4], &["E1"])).unwrap();
        assert_eq!(report.intensities, vec![0.0, 0.4]);
        assert_eq!(report.experiments[0].intensities.len(), 2);
    }

    #[test]
    fn networked_experiment_sees_faults_and_isolated_one_does_not() {
        // E4 drives packets through the network substrate; E14 is a pure
        // game-theory experiment that never touches it.
        let report = run_chaos(&quick(2, &[0.0, 0.8], &["E4", "E14"])).unwrap();
        let e4 = report.experiment("E4").unwrap();
        let e14 = report.experiment("E14").unwrap();
        assert_eq!(e4.intensities[0].faults, FaultStats::default(), "no faults at intensity 0");
        assert!(e4.intensities[1].faults.total() > 0, "ambient chaos reached E4's packets");
        assert_eq!(e14.total_faults(), 0, "E14 never touches the network");
        assert!(report.to_markdown().contains("(vacuous)"));
    }

    #[test]
    fn output_and_digests_are_identical_across_thread_counts() {
        // Every (experiment, intensity) cell reduces through the sweep's
        // `reduce_experiment`, so each carries a digest folded from its
        // per-seed RunDigests. Compare those structurally across thread
        // counts, and keep the whole-report byte compare as the canary.
        let mut jsons = Vec::new();
        let mut digests = Vec::new();
        for threads in [1, 3] {
            let cfg = ChaosConfig {
                threads: Some(threads),
                ..quick(2, &[0.0, 0.6], &["E4", "E17", "E14"])
            };
            let report = run_chaos(&cfg).unwrap();
            digests.push(
                report
                    .experiments
                    .iter()
                    .flat_map(|e| {
                        e.intensities
                            .iter()
                            .map(|s| (e.id.clone(), s.intensity, s.sweep.digest.clone()))
                    })
                    .collect::<Vec<_>>(),
            );
            jsons.push(report.to_json());
        }
        assert_eq!(digests[0], digests[1]);
        for (id, intensity, d) in &digests[0] {
            assert_eq!(d.len(), 16, "{id}@{intensity} digest is 16 hex chars, got '{d}'");
        }
        assert_eq!(jsons[0], jsons[1]);
    }
}

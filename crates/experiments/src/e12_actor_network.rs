//! E12 — Actor-network churn and freezing (§II.C).
//!
//! Paper claim: "When new applications and user groups cease to come to the
//! Internet, and the set of actors in the actor network becomes fixed, then
//! we can assume that the tensions and tussles in the network will begin to
//! be resolved, and this will imply a freezing of the actor network, and a
//! freezing of the Internet. So we should look for a time when innovation
//! slows, not just as a signal but also as a pre-condition of a durably
//! formed and unchangeable Internet."
//!
//! Measured: a seeded actor network run under a sweep of entrant arrival
//! rates; we record whether (and when) the network freezes, final tussle
//! energy, and durability.

use tussle_actors::{ActorKind, ActorNetwork, ChurnProcess, FreezeDetector};
use tussle_core::{ExperimentReport, Table};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// Outcome for one arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// Entrants admitted over the run.
    pub entrants: u64,
    /// Step at which the network froze, if it did.
    pub frozen_at: Option<usize>,
    /// Final tussle energy.
    pub final_energy: f64,
    /// Final durability.
    pub final_durability: f64,
}

/// One rate's evolving network, threaded through its event chain.
struct RateTally {
    net: ActorNetwork,
    churn: ChurnProcess,
    det: FreezeDetector,
    done: usize,
}

impl RateTally {
    fn new(rate: f64) -> Self {
        let mut net = ActorNetwork::new(3);
        // the founding population: users, an ISP, the protocol suite, a law
        let users = net.add_actor(ActorKind::Human, "users", vec![0.9, -0.4, 0.1]);
        let isp = net.add_actor(ActorKind::Institution, "isp", vec![-0.8, 0.6, 0.0]);
        let ip = net.add_actor(ActorKind::Technology, "ip", vec![0.0, 0.0, 0.0]);
        let law = net.add_actor(ActorKind::Institution, "telecom-law", vec![-0.2, 0.8, -0.5]);
        net.align(users, ip, 0.7);
        net.align(isp, ip, 0.7);
        net.align(isp, law, 0.5);
        net.align(users, isp, 0.4);
        RateTally {
            net,
            churn: ChurnProcess::new(rate),
            det: FreezeDetector::new(0.05, 25),
            done: 0,
        }
    }
}

/// Advance the network `n` churn steps, feeding the freeze detector.
fn churn_batch(t: &mut RateTally, n: usize, rng: &mut SimRng) {
    for _ in 0..n {
        let admitted = t.churn.step(&mut t.net, rng);
        t.det.observe(admitted, t.net.tussle_energy());
    }
    t.done += n;
}

fn outcome_of(t: &RateTally) -> ChurnOutcome {
    ChurnOutcome {
        entrants: t.churn.entrants(),
        frozen_at: t.det.frozen_at(),
        final_energy: t.net.tussle_energy(),
        final_durability: t.net.durability(),
    }
}

/// Run one arrival rate for `steps` (the pure loop the unit tests drive;
/// [`run`] replays it as paced engine-event epochs).
pub fn run_rate(rate: f64, steps: usize, seed: u64) -> ChurnOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e12");
    let mut t = RateTally::new(rate);
    churn_batch(&mut t, steps, &mut rng);
    outcome_of(&t)
}

/// World for the engine-driven replay: settled outcomes per rate. Rates
/// are keyed by their table label to avoid float comparisons.
#[derive(Default)]
struct ChurnWorld {
    outcomes: Vec<(String, ChurnOutcome)>,
}

/// Churn steps per epoch event in the engine replay.
const EPOCH: usize = 150;
/// Total churn steps per rate.
const STEPS: usize = 600;

/// One churn epoch as an engine event, chaining to the next epoch.
fn run_epoch(w: &mut ChurnWorld, ctx: &mut Ctx<ChurnWorld>, rate: f64, mut t: RateTally) {
    let label = format!("rate={rate}");
    ctx.span_enter(
        "e12.epoch",
        Some("society"),
        &[("rate", &rate.to_string()), ("done", &t.done.to_string())],
    );
    let n = EPOCH.min(STEPS - t.done);
    churn_batch(&mut t, n, ctx.rng);
    if t.done < STEPS {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e12.pacing",
            Some("society"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} steps churned; next epoch follows", t.done),
        );
        ctx.span_exit(&[("entrants", &t.churn.entrants().to_string())]);
        ctx.schedule_in(lag, move |w2: &mut ChurnWorld, ctx2| {
            run_epoch(w2, ctx2, rate, t);
        });
    } else {
        let o = outcome_of(&t);
        ctx.trace_fields(
            "e12.settled",
            Some("society"),
            &[("frozen", &o.frozen_at.is_some().to_string())],
            format!("{label} evolution settles"),
        );
        ctx.span_exit(&[("entrants", &o.entrants.to_string())]);
        w.outcomes.push((label, o));
    }
}

/// Run E12 and produce the report. Each arrival rate's 600 churn steps run
/// as a causal chain of epoch events on the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let rates = [0.0, 0.05, 0.5, 2.0];
    let mut eng = Engine::new(ChurnWorld::default(), seed);
    for (i, rate) in rates.into_iter().enumerate() {
        // Each arrival rate is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut ChurnWorld, ctx| {
            run_epoch(w, ctx, rate, RateTally::new(rate));
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Actor-network evolution vs. entrant arrival rate (600 steps)",
        &["entrants", "frozen at step", "final tussle energy", "final durability"],
    );
    let mut outcomes = Vec::new();
    for rate in rates {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(l, _)| *l == format!("rate={rate}"))
            .map(|(_, o)| o.clone())
            .expect("every rate settles");
        table.push_row(
            &format!("rate={rate}"),
            &[
                o.entrants.to_string(),
                o.frozen_at.map(|s| s.to_string()).unwrap_or_else(|| "never".into()),
                format!("{:.3}", o.final_energy),
                format!("{:.2}", o.final_durability),
            ],
        );
        outcomes.push(o);
    }
    let closed = &outcomes[0];
    let busy = &outcomes[2];
    let packed = &outcomes[3];
    let shape_holds = closed.frozen_at.is_some()
        && busy.frozen_at.is_none()
        && packed.frozen_at.is_none()
        && packed.final_energy > closed.final_energy
        && closed.final_durability > 0.5; // the frozen network is durable

    ExperimentReport {
        id: "E12".into(),
        section: "II.C".into(),
        paper_claim: "Continuous entry of new actors keeps the actor network (and hence the \
                      Internet) changeable; when entrants stop, tussles resolve, the network \
                      hardens, and the architecture freezes."
            .into(),
        summary: format!(
            "rate 0 freezes at step {} with durability {:.2}; rate 0.5 and 2.0 never freeze \
             (final tussle energy {:.2} and {:.2}).",
            closed.frozen_at.unwrap_or(0),
            closed.final_durability,
            busy.final_energy,
            packed.final_energy,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_networks_freeze_hard() {
        let o = run_rate(0.0, 600, 1);
        assert!(o.frozen_at.is_some());
        assert!(o.final_energy < 0.05);
        assert!(o.final_durability > 0.5);
        assert_eq!(o.entrants, 0);
    }

    #[test]
    fn open_networks_stay_fluid() {
        let o = run_rate(1.0, 600, 1);
        assert!(o.frozen_at.is_none());
        assert!(o.final_energy > 0.05);
        assert!(o.entrants > 300);
    }

    #[test]
    fn more_churn_more_tussle() {
        let slow = run_rate(0.1, 400, 2);
        let fast = run_rate(2.0, 400, 2);
        assert!(fast.final_energy > slow.final_energy);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

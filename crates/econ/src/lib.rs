//! # tussle-econ — the economics of tussle
//!
//! §V.A: "One of the tussles that defines the current Internet is the
//! tussle of economics. ... A standard business saying is that the drivers
//! of investment are fear and greed." This crate supplies the machinery
//! those sentences imply:
//!
//! * [`money`] — a currency newtype; all amounts are integer micro-units.
//! * [`ledger`] — a conserving transfer ledger. §IV.C: "Whatever the
//!   compensation, recognize that it must flow, just as much as data must
//!   flow. ... If this 'value flow' requires a protocol, design it." The
//!   ledger *is* that protocol's settlement layer.
//! * [`pricing`] — flat, usage, two-part and **value pricing** (the
//!   §V.A.2 "Saturday-night-stay" mechanism: segment customers by
//!   willingness to pay, e.g. the residential server prohibition).
//! * [`contracts`] — transit and peering agreements between providers.
//! * [`market`] — consumers with willingness-to-pay and *switching costs*
//!   choosing among providers that set prices by greedy best response;
//!   the §V.A.1 lock-in markup emerges from the switching cost.
//! * [`investment`] — the fear-and-greed investment rule behind the
//!   §VII QoS post-mortem.
//!
//! ## Example
//!
//! ```
//! use tussle_econ::{AccountId, Ledger, Money};
//!
//! let mut ledger = Ledger::new();
//! let user = AccountId(1);
//! let isp = AccountId(2);
//! ledger.open(user);
//! ledger.open(isp);
//! ledger.mint(user, Money::from_dollars(100));
//! ledger.transfer(user, isp, Money::from_dollars(40), "monthly service").unwrap();
//! assert_eq!(ledger.balance(isp), Money::from_dollars(40));
//! assert!(ledger.is_conserving());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
mod errors;
pub mod investment;
pub mod ledger;
pub mod market;
pub mod money;
pub mod payments;
pub mod pricing;

pub use contracts::{PeeringContract, TransitContract};
pub use investment::{InvestmentCase, InvestmentDecision};
pub use ledger::{AccountId, Ledger, LedgerError, Transfer};
pub use market::{Consumer, Market, MarketReport, Provider};
pub use money::Money;
pub use payments::{best_instrument, viable, Instrument};
pub use pricing::{PricingScheme, Usage};

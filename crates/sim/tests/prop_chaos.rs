//! Property tests for the chaos facilities: fault plans, the scaled
//! injector, the token bucket, and the run budget watchdog.

use proptest::prelude::*;
use tussle_sim::{
    Engine, FaultAction, FaultInjector, FaultOutcome, FaultPlan, RunBudget, SimRng, SimTime,
};

proptest! {
    /// The same `(intensity, links, horizon, seed)` quadruple always
    /// generates the same plan, and any input change that matters changes
    /// deterministically — no hidden global state.
    #[test]
    fn scaled_plans_are_deterministic(
        intensity in 0.0f64..=1.0,
        links in 1u32..32,
        horizon_ms in 1u64..5_000,
        seed in 0u64..u64::MAX,
    ) {
        let horizon = SimTime::from_millis(horizon_ms);
        let a = FaultPlan::scaled(intensity, links, horizon, seed);
        let b = FaultPlan::scaled(intensity, links, horizon, seed);
        prop_assert_eq!(&a, &b);
        // serde round-trip preserves the plan exactly
        let json = serde_json::to_string(&a).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, a);
    }

    /// Every event of a scaled plan is inside `[0, horizon]`, its events
    /// are time-sorted, and all indices refer to real links.
    #[test]
    fn scaled_plans_are_well_formed(
        intensity in 0.01f64..=1.0,
        links in 1u32..32,
        horizon_ms in 1u64..5_000,
        seed in 0u64..1_000,
    ) {
        let horizon = SimTime::from_millis(horizon_ms);
        let plan = FaultPlan::scaled(intensity, links, horizon, seed);
        let mut prev = SimTime::ZERO;
        for e in plan.events() {
            prop_assert!(e.at <= horizon, "event past horizon: {:?}", e);
            prop_assert!(prev <= e.at, "events out of order");
            prev = e.at;
            let index_ok = match e.action {
                FaultAction::LinkDown(l)
                | FaultAction::LinkUp(l)
                | FaultAction::SetLinkFaults { link: l, .. } => l < links,
                FaultAction::CrashNode(_) | FaultAction::RestoreNode(_) => true,
            };
            prop_assert!(index_ok, "action names a link outside the topology");
        }
    }

    /// The token bucket never lets more than `capacity` transmissions
    /// through (as non-rate-limited outcomes) within one refill window.
    #[test]
    fn token_bucket_never_exceeds_capacity(
        capacity in 1u32..64,
        refill_ms in 1u64..200,
        offered in 1usize..300,
        seed in 0u64..1_000,
    ) {
        let refill = SimTime::from_millis(refill_ms);
        let mut inj = FaultInjector::none().with_rate_limit(capacity, refill);
        let mut rng = SimRng::seed_from_u64(seed);
        // hammer the bucket at a single instant: one refill window
        let now = SimTime::from_millis(1);
        let passed = (0..offered)
            .filter(|_| inj.apply(now, &mut rng) != FaultOutcome::RateLimited)
            .count();
        prop_assert!(passed as u32 <= capacity, "{passed} > {capacity}");
        if (offered as u32) > capacity {
            prop_assert_eq!(passed as u32, capacity, "the full budget is usable");
        }
    }

    /// The bucket's guarantee holds across refill windows too: within any
    /// single window, at most `capacity` transmissions pass.
    #[test]
    fn token_bucket_bounds_every_window(
        capacity in 1u32..32,
        spacing_us in 1u64..2_000,
        n in 1usize..400,
        seed in 0u64..1_000,
    ) {
        let refill = SimTime::from_millis(10);
        let mut inj = FaultInjector::none().with_rate_limit(capacity, refill);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut window_start = SimTime::ZERO;
        let mut in_window = 0u32;
        for k in 0..n {
            let now = SimTime::from_micros(k as u64 * spacing_us);
            // mirror the injector's refill rule to delimit windows
            if now.since(window_start) >= refill {
                window_start = now;
                in_window = 0;
            }
            if inj.apply(now, &mut rng) != FaultOutcome::RateLimited {
                in_window += 1;
            }
            prop_assert!(in_window <= capacity, "window exceeded: {in_window} > {capacity}");
        }
    }

    /// A run budget always halts a self-perpetuating event storm, and the
    /// report respects both caps.
    #[test]
    fn run_budget_always_halts_runaways(
        max_events in 1u64..2_000,
        max_time_ms in 1u64..1_000,
        period_us in 1u64..10_000,
    ) {
        let mut eng: Engine<u64> = Engine::new(0, 1);
        fn storm(period: SimTime) -> impl Fn(&mut u64, &mut tussle_sim::Ctx<u64>) {
            move |w, ctx| {
                *w += 1;
                let p = period;
                ctx.schedule_in(p, move |w2: &mut u64, ctx2| storm(p)(w2, ctx2));
            }
        }
        let period = SimTime::from_micros(period_us);
        eng.schedule_at(SimTime::ZERO, move |w: &mut u64, ctx| storm(period)(w, ctx));
        let budget = RunBudget::new(max_events, SimTime::from_millis(max_time_ms));
        let report = eng.run_budgeted(&budget);
        prop_assert!(!report.outcome.completed(), "a storm never drains");
        prop_assert!(report.events <= max_events);
        prop_assert!(report.ended_at <= SimTime::from_millis(max_time_ms));
    }
}

//! Multi-unit VCG: Vickrey's mechanism beyond one item.
//!
//! §II.B credits Vickrey with "a theory to generatively design and
//! prescribe actor networks that exhibit a desirable apriori set of
//! properties" for asymmetric-information games. The single-item
//! second-price auction lives in [`crate::auction`]; this module is the
//! `k`-unit generalization with unit demand, where VCG reduces to the
//! (k+1)-price rule: the `k` highest bidders win and each pays the highest
//! losing bid. Truth-telling remains weakly dominant — the same
//! "tussle-free information sub-game" property, at allocation scale
//! (think: auctioning `k` premium-transit slots among ISP customers).

use serde::{Deserialize, Serialize};

/// Result of a k-unit VCG auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcgOutcome {
    /// Indices of winning bidders (at most `k`).
    pub winners: Vec<usize>,
    /// The uniform price each winner pays (the highest losing bid, or 0
    /// when supply exceeds demand).
    pub price: f64,
}

/// Run a k-unit uniform-price VCG auction over `bids`. Ties at the cutoff
/// break toward lower bidder indices (deterministic).
pub fn run_vcg(k: usize, bids: &[f64]) -> VcgOutcome {
    if k == 0 || bids.is_empty() {
        return VcgOutcome { winners: Vec::new(), price: 0.0 };
    }
    let mut order: Vec<usize> = (0..bids.len()).collect();
    // sort by bid descending, index ascending on ties
    order.sort_by(|&a, &b| bids[b].partial_cmp(&bids[a]).expect("NaN bid").then(a.cmp(&b)));
    let winners: Vec<usize> = order.iter().copied().take(k).collect();
    let price = if bids.len() > k { bids[order[k]] } else { 0.0 };
    VcgOutcome { winners, price }
}

/// Utility of bidder `i` with private `value` under an outcome.
pub fn vcg_utility(outcome: &VcgOutcome, bidder: usize, value: f64) -> f64 {
    if outcome.winners.contains(&bidder) {
        value - outcome.price
    } else {
        0.0
    }
}

/// Compare truthful bidding against a deviation for one bidder, holding
/// the others fixed. Returns `(truthful utility, deviant utility)`.
pub fn vcg_truthful_vs_deviation(k: usize, others: &[f64], value: f64, alt_bid: f64) -> (f64, f64) {
    let me = others.len();
    let mut truthful = others.to_vec();
    truthful.push(value);
    let t = vcg_utility(&run_vcg(k, &truthful), me, value);
    let mut deviant = others.to_vec();
    deviant.push(alt_bid);
    let d = vcg_utility(&run_vcg(k, &deviant), me, value);
    (t, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_highest_win_at_the_k_plus_first_price() {
        let o = run_vcg(2, &[10.0, 40.0, 30.0, 20.0]);
        assert_eq!(o.winners, vec![1, 2]);
        assert_eq!(o.price, 20.0);
    }

    #[test]
    fn excess_supply_is_free() {
        let o = run_vcg(5, &[10.0, 20.0]);
        assert_eq!(o.winners, vec![1, 0]);
        assert_eq!(o.price, 0.0);
    }

    #[test]
    fn k_one_matches_second_price() {
        use crate::auction::{run_auction, AuctionRule};
        let bids = [10.0, 30.0, 20.0];
        let vcg = run_vcg(1, &bids);
        let sp = run_auction(AuctionRule::SecondPrice, &bids).unwrap();
        assert_eq!(vcg.winners, vec![sp.winner]);
        assert_eq!(vcg.price, sp.price);
    }

    #[test]
    fn ties_break_deterministically() {
        let o = run_vcg(1, &[5.0, 5.0, 5.0]);
        assert_eq!(o.winners, vec![0]);
        assert_eq!(o.price, 5.0);
    }

    #[test]
    fn zero_units_or_bidders() {
        assert_eq!(run_vcg(0, &[1.0]).winners.len(), 0);
        assert_eq!(run_vcg(3, &[]).winners.len(), 0);
    }

    #[test]
    fn truthfulness_spot_checks() {
        // overbid to win: pays above value, negative utility
        let (t, d) = vcg_truthful_vs_deviation(2, &[50.0, 40.0], 30.0, 60.0);
        assert_eq!(t, 0.0, "truthfully losing is free");
        assert!(d < 0.0, "winning above value costs: {d}");
        // underbid out of the winner set: forfeits surplus
        let (t, d) = vcg_truthful_vs_deviation(2, &[50.0, 10.0], 30.0, 5.0);
        assert_eq!(t, 20.0);
        assert_eq!(d, 0.0);
        // deviations that don't change the allocation don't change the price
        let (t, d) = vcg_truthful_vs_deviation(2, &[50.0, 10.0], 30.0, 29.0);
        assert_eq!(t, d);
    }

    #[test]
    fn truthfulness_sweep() {
        use tussle_sim::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        for _ in 0..2_000 {
            let n = rng.range(1..6usize);
            let k = rng.range(1..4usize);
            let others: Vec<f64> = (0..n).map(|_| rng.range(0.0..100.0)).collect();
            let value = rng.range(0.0..100.0);
            let alt = rng.range(0.0..150.0);
            let (t, d) = vcg_truthful_vs_deviation(k, &others, value, alt);
            assert!(
                t >= d - 1e-9,
                "profitable deviation: k={k} others={others:?} v={value} alt={alt}"
            );
        }
    }
}

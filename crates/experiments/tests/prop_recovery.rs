//! Property sweep over the recovery oracle: randomized
//! (experiment, seed, kill-point) cells must always recover.
//!
//! Each case draws an experiment from a fast, step-rich subset, a fresh
//! base seed, and a kill-point count, then runs the full
//! golden/crash/resume cell grid for it. 32 cases at 1-3 kill points
//! each sweeps well over the 32-cell floor the oracle promises.

use proptest::prelude::*;
use tussle_experiments::{registry, run_recovery_entries, RecoveryConfig};

/// Experiments with distinct event surfaces that run fast enough for a
/// property sweep: natively engine-driven (E9), forward-heavy burst
/// chains (E4, E5), and rng-draw-heavy game phases (E14).
const SUBJECTS: [&str; 4] = ["E4", "E5", "E9", "E14"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn randomized_cells_always_recover(
        pick in 0usize..SUBJECTS.len(),
        base_seed in 1u64..100_000,
        kill_points in 1u64..4,
        every in prop_oneof![Just(50u64), Just(200), Just(500)],
    ) {
        let name = SUBJECTS[pick];
        let entry = registry()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("subject experiment is registered");
        let cfg = RecoveryConfig {
            seeds: 1,
            base_seed,
            kill_points,
            every,
            only: None,
            threads: Some(1),
        };
        let report = run_recovery_entries(&[entry], &cfg).expect("valid config");
        prop_assert_eq!(report.cells.len() as u64, kill_points);
        prop_assert!(
            report.all_recovered(),
            "unrecovered cells: {:#?}",
            report.failures().collect::<Vec<_>>()
        );
        // Every subject schedules engine events, so injection must bite.
        for cell in &report.cells {
            prop_assert!(cell.crashed, "{} seed {} never crashed", cell.id, cell.seed);
            prop_assert!(cell.kill_at.is_some());
            prop_assert!(cell.golden_events > 0);
        }
    }
}

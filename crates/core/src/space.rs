//! Tussle spaces and their boundaries.
//!
//! §V organizes the paper's analysis into spaces — economics, trust,
//! openness — and §IV.A's modularity principle is *about* the boundaries
//! between them: "Functions that are within a tussle space should be
//! logically separated from functions outside of that space, even if there
//! is no compelling technical reason to do so."

use crate::stakeholder::{Interest, Stakeholder};
use serde::{Deserialize, Serialize};

/// The canonical spaces of §V (plus naming, the §IV.A worked example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TussleSpaceKind {
    /// §V.A: pricing, lock-in, investment, competition.
    Economics,
    /// §V.B: who talks to whom, identity, mediation.
    Trust,
    /// §V.C: openness vs. vertical integration.
    Openness,
    /// §IV.A: the DNS/trademark entanglement.
    Naming,
    /// §IV.A: service quality selection.
    QualityOfService,
    /// §VI.A: observation vs. concealment of traffic.
    Privacy,
}

/// A tussle space: a set of adverse interest pairs and the functions
/// (labels) that live inside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TussleSpace {
    /// Which canonical space.
    pub kind: TussleSpaceKind,
    /// Interest pairs contested here.
    pub contested: Vec<(Interest, Interest)>,
    /// System functions assigned to this space (e.g. "qos-classification",
    /// "machine-naming"). The modularity principle says a function should
    /// appear in exactly one space.
    pub functions: Vec<String>,
}

impl TussleSpace {
    /// Construct a space.
    pub fn new(kind: TussleSpaceKind, contested: Vec<(Interest, Interest)>) -> Self {
        TussleSpace { kind, contested, functions: Vec::new() }
    }

    /// Assign a function to this space.
    pub fn assign(&mut self, function: &str) {
        if !self.functions.iter().any(|f| f == function) {
            self.functions.push(function.to_owned());
        }
    }

    /// Is a stakeholder a party to this space (holds a contested interest)?
    pub fn involves(&self, s: &Stakeholder) -> bool {
        self.contested.iter().any(|(a, b)| s.interests.contains(a) || s.interests.contains(b))
    }

    /// The canonical §V spaces with their contested interests.
    pub fn canonical() -> Vec<TussleSpace> {
        use Interest::*;
        vec![
            TussleSpace::new(TussleSpaceKind::Economics, vec![(Revenue, LowPrice)]),
            TussleSpace::new(
                TussleSpaceKind::Trust,
                vec![(Security, Transparency), (Anonymity, Accountability)],
            ),
            TussleSpace::new(TussleSpaceKind::Openness, vec![(Innovation, Control)]),
            TussleSpace::new(TussleSpaceKind::Naming, vec![(Control, Innovation)]),
            TussleSpace::new(TussleSpaceKind::QualityOfService, vec![(Revenue, LowPrice)]),
            TussleSpace::new(TussleSpaceKind::Privacy, vec![(Privacy, Observation)]),
        ]
    }
}

/// Check the §IV.A modularity rule over an assignment of functions to
/// spaces: a function entangled in two spaces couples their tussles.
/// Returns the entangled function names.
pub fn entangled_functions(spaces: &[TussleSpace]) -> Vec<String> {
    let mut seen: Vec<(&str, TussleSpaceKind)> = Vec::new();
    let mut entangled = Vec::new();
    for space in spaces {
        for f in &space.functions {
            if let Some((name, other)) = seen.iter().find(|(name, k)| name == f && *k != space.kind)
            {
                let _ = other;
                if !entangled.contains(&name.to_string()) {
                    entangled.push(name.to_string());
                }
            } else {
                seen.push((f, space.kind));
            }
        }
    }
    entangled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stakeholder::{Stakeholder, StakeholderKind};

    #[test]
    fn canonical_spaces_cover_the_paper() {
        let spaces = TussleSpace::canonical();
        let kinds: Vec<_> = spaces.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&TussleSpaceKind::Economics));
        assert!(kinds.contains(&TussleSpaceKind::Trust));
        assert!(kinds.contains(&TussleSpaceKind::Openness));
    }

    #[test]
    fn involvement() {
        let spaces = TussleSpace::canonical();
        let user = Stakeholder::typical(1, StakeholderKind::User);
        let econ = spaces.iter().find(|s| s.kind == TussleSpaceKind::Economics).unwrap();
        assert!(econ.involves(&user), "users hold LowPrice");
        let gov = Stakeholder::typical(2, StakeholderKind::Government);
        let privacy = spaces.iter().find(|s| s.kind == TussleSpaceKind::Privacy).unwrap();
        assert!(privacy.involves(&gov));
    }

    #[test]
    fn assign_is_idempotent() {
        let mut s = TussleSpace::new(TussleSpaceKind::Naming, vec![]);
        s.assign("machine-naming");
        s.assign("machine-naming");
        assert_eq!(s.functions.len(), 1);
    }

    #[test]
    fn dns_entanglement_is_detected() {
        // The paper's own example: DNS names serve machine naming AND
        // trademark expression.
        let mut naming = TussleSpace::new(TussleSpaceKind::Naming, vec![]);
        naming.assign("dns-names");
        let mut openness = TussleSpace::new(TussleSpaceKind::Openness, vec![]);
        openness.assign("dns-names"); // trademark expression lives elsewhere
        let entangled = entangled_functions(&[naming, openness]);
        assert_eq!(entangled, vec!["dns-names".to_string()]);
    }

    #[test]
    fn separated_functions_are_clean() {
        let mut naming = TussleSpace::new(TussleSpaceKind::Naming, vec![]);
        naming.assign("machine-ids");
        let mut openness = TussleSpace::new(TussleSpaceKind::Openness, vec![]);
        openness.assign("trademark-directory");
        assert!(entangled_functions(&[naming, openness]).is_empty());
    }

    #[test]
    fn same_function_same_space_twice_is_fine() {
        let mut a = TussleSpace::new(TussleSpaceKind::Trust, vec![]);
        a.assign("firewalling");
        let mut b = TussleSpace::new(TussleSpaceKind::Trust, vec![]);
        b.assign("firewalling");
        assert!(entangled_functions(&[a, b]).is_empty());
    }
}

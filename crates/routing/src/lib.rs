//! # tussle-routing — routing protocols as tussle interfaces
//!
//! §IV.C of the paper reads routing protocols as *interfaces designed for
//! tussle*: "BGP has a different character than a protocol such as OSPF
//! that is designed to be used within a given domain (hopefully a more
//! tussle-free context). ... A link-state routing protocol requires that
//! everyone export his link costs, while a path vector protocol makes it
//! harder to see what the internal choices are."
//!
//! This crate implements both sides of that comparison plus the two
//! §V.A.4 alternatives for who controls wide-area paths:
//!
//! * [`linkstate`] — an OSPF-flavoured shortest-path-first protocol that
//!   floods (exposes) every link cost;
//! * [`pathvector`] — a BGP-flavoured path-vector protocol with
//!   customer/peer/provider relationships and Gao–Rexford export rules,
//!   which hides internal costs and reveals only AS paths;
//! * [`sourceroute`] — user-controlled provider-level source routing with
//!   explicit payment (the design the paper argues was never built because
//!   nobody had the incentive to build it);
//! * [`overlay`] — RON-style resilient overlays, "a tool in the tussle"
//!   that routes around provider policy at the application layer;
//! * [`exposure`] — the information-exposure metric that makes the
//!   OSPF/BGP visibility contrast quantitative.
//!
//! ## Example
//!
//! ```
//! use tussle_net::{Asn, Prefix};
//! use tussle_routing::AsGraph;
//!
//! let mut graph = AsGraph::new();
//! graph.customer_of(Asn(2), Asn(1)); // AS2 buys transit from AS1
//! graph.customer_of(Asn(3), Asn(1));
//! let prefix = Prefix::new(0x0a000000, 16);
//! graph.originate(Asn(3), prefix);
//! graph.converge(20);
//! assert_eq!(graph.as_path(Asn(2), prefix).unwrap(), &[Asn(1), Asn(3)]);
//! assert!(graph.is_valley_free(graph.as_path(Asn(2), prefix).unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposure;
pub mod linkstate;
pub mod overlay;
pub mod pathvector;
pub mod policyroute;
pub mod sourceroute;

pub use exposure::InfoExposure;
pub use linkstate::LinkStateProtocol;
pub use overlay::{Overlay, OverlayDelivery};
pub use pathvector::{AsGraph, Relationship, Route};
pub use policyroute::{ControlLocus, PathConstraint, RoutePolicy};
pub use sourceroute::{authorize_route, enumerate_paths, RouteOffer, SourceRouteError};

//! Forwarding information base with longest-prefix match.
//!
//! The FIB is where the PA-vs-PI addressing tussle becomes measurable:
//! every provider-independent customer block is one more entry in *every*
//! core FIB ("adds to the size of the forwarding tables in the core",
//! §V.A.1). Experiment E1 reports `Fib::len` across addressing modes.
//!
//! Entries are kept sorted by `(prefix length desc, metric asc, install
//! order)`, so [`Fib::lookup`] is a forward scan whose *first* match is the
//! winner. Sorted storage is what makes the selection rule stable: among
//! equal-length, equal-metric candidates the earliest-installed entry wins,
//! and it keeps winning until it is itself withdrawn — re-adding a
//! competitor never steals the slot (see [`Fib::install`]).

use crate::addr::Prefix;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;

/// One forwarding entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next hop node.
    pub next_hop: NodeId,
    /// Tie-break metric; lower wins among equal-length prefixes.
    pub metric: u32,
}

impl FibEntry {
    /// Sort key: longer prefixes first, then lower metrics. Insertion
    /// position among equal keys preserves install order.
    fn sort_key(&self) -> (Reverse<u8>, u32) {
        (Reverse(self.prefix.len()), self.metric)
    }
}

/// A forwarding table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fib {
    entries: Vec<FibEntry>,
}

impl Fib {
    /// Empty table.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Install a route, replacing an existing entry for exactly the same
    /// prefix only when the new metric is *strictly* better.
    ///
    /// Selection rule (documented contract): **first-installed-wins**. An
    /// equal-cost reinstall keeps the incumbent untouched — the entry that
    /// got there first holds the slot until it is withdrawn, so which route
    /// forwards traffic never depends on a later remove/re-add of some
    /// *other* equal-cost route.
    pub fn install(&mut self, prefix: Prefix, next_hop: NodeId, metric: u32) {
        if let Some(i) = self.entries.iter().position(|e| e.prefix == prefix) {
            if metric >= self.entries[i].metric {
                return; // incumbent wins ties and beats worse routes
            }
            self.entries.remove(i);
        }
        let entry = FibEntry { prefix, next_hop, metric };
        // Insert after all entries with the same key: first-installed stays
        // first in its equivalence class.
        let pos = self.entries.partition_point(|e| e.sort_key() <= entry.sort_key());
        self.entries.insert(pos, entry);
    }

    /// Remove all routes for a prefix. Returns how many entries were removed.
    pub fn withdraw(&mut self, prefix: Prefix) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.prefix != prefix);
        before - self.entries.len()
    }

    /// Remove every route via a next hop (e.g. a failed neighbor).
    pub fn withdraw_via(&mut self, next_hop: NodeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.next_hop != next_hop);
        before - self.entries.len()
    }

    /// Longest-prefix-match lookup.
    ///
    /// Entries are sorted (prefix-len desc, metric asc, install order), so
    /// the first containing entry *is* the longest match with the best
    /// metric, and among full ties the first-installed route — no scan of
    /// the remainder, no order instability.
    pub fn lookup(&self, dst: u32) -> Option<&FibEntry> {
        self.entries.iter().find(|e| e.prefix.contains(dst))
    }

    /// Number of entries — the table-size pressure metric.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries.
    pub fn entries(&self) -> impl Iterator<Item = &FibEntry> {
        self.entries.iter()
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix {
        Prefix::new(bits, len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 10);
        fib.install(p(0x0a010000, 16), NodeId(2), 10);
        fib.install(Prefix::DEFAULT, NodeId(9), 10);
        assert_eq!(fib.lookup(0x0a010203).unwrap().next_hop, NodeId(2));
        assert_eq!(fib.lookup(0x0a990203).unwrap().next_hop, NodeId(1));
        assert_eq!(fib.lookup(0x42000000).unwrap().next_hop, NodeId(9));
    }

    #[test]
    fn no_default_no_match() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 0);
        assert!(fib.lookup(0x0b000000).is_none());
    }

    #[test]
    fn equal_length_prefers_lower_metric() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 20);
        // strictly better metric replaces
        fib.install(p(0x0a000000, 8), NodeId(2), 5);
        assert_eq!(fib.lookup(0x0a000001).unwrap().next_hop, NodeId(2));
        // worse metric does not
        fib.install(p(0x0a000000, 8), NodeId(3), 50);
        assert_eq!(fib.lookup(0x0a000001).unwrap().next_hop, NodeId(2));
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn equal_cost_tie_break_is_first_installed() {
        // Regression: the old lookup used `max_by`, which returns the *last*
        // maximal entry, and the old install rewrote the next hop on an
        // equal-metric reinstall — so the winner flipped with install order
        // churn. The rule is now first-installed-wins, in both orders.
        let pre = p(0x0a000000, 8);
        let mut ab = Fib::new();
        ab.install(pre, NodeId(1), 7);
        ab.install(pre, NodeId(2), 7);
        assert_eq!(ab.lookup(0x0a000001).unwrap().next_hop, NodeId(1));

        let mut ba = Fib::new();
        ba.install(pre, NodeId(2), 7);
        ba.install(pre, NodeId(1), 7);
        assert_eq!(ba.lookup(0x0a000001).unwrap().next_hop, NodeId(2));

        // The incumbent only loses the slot when it is itself withdrawn.
        assert_eq!(ab.withdraw(pre), 1);
        ab.install(pre, NodeId(2), 7);
        ab.install(pre, NodeId(1), 7);
        assert_eq!(ab.lookup(0x0a000001).unwrap().next_hop, NodeId(2));
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn entries_stay_sorted_for_first_match_lookup() {
        // Install shortest-first and worst-metric-first: the scan order must
        // still be (len desc, metric asc, install order).
        let mut fib = Fib::new();
        fib.install(Prefix::DEFAULT, NodeId(9), 10);
        fib.install(p(0x0a000000, 8), NodeId(1), 20);
        fib.install(p(0x0b000000, 8), NodeId(2), 5);
        fib.install(p(0x0a010000, 16), NodeId(3), 10);
        let keys: Vec<(Reverse<u8>, u32)> = fib.entries().map(|e| e.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "entries must stay sorted after installs");
        // Replacement re-sorts too.
        fib.install(p(0x0a000000, 8), NodeId(4), 1);
        let keys: Vec<(Reverse<u8>, u32)> = fib.entries().map(|e| e.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(fib.lookup(0x0a990203).unwrap().next_hop, NodeId(4));
    }

    #[test]
    fn withdraw_prefix_and_via() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 0);
        fib.install(p(0x0b000000, 8), NodeId(1), 0);
        fib.install(p(0x0c000000, 8), NodeId(2), 0);
        assert_eq!(fib.withdraw(p(0x0a000000, 8)), 1);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.withdraw_via(NodeId(1)), 1);
        assert_eq!(fib.len(), 1);
        assert!(fib.lookup(0x0c000001).is_some());
    }

    #[test]
    fn clear_empties() {
        let mut fib = Fib::new();
        fib.install(Prefix::DEFAULT, NodeId(1), 0);
        assert!(!fib.is_empty());
        fib.clear();
        assert!(fib.is_empty());
    }
}

//! Actors, alignment, durability, tussle energy.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of an actor in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Usable as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

// Lets `ActorId` (and pairs of them) key serialized relation maps.
impl serde::StringKey for ActorId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        key.parse()
            .map(ActorId)
            .map_err(|_| serde::DeError(format!("invalid ActorId map key `{key}`")))
    }
}

/// What kind of actor this is. The actor-network view "gives equal
/// attention" to humans and nonhumans; durability, though, is anchored by
/// technology (§II.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActorKind {
    /// People and groups of people.
    Human,
    /// Protocols, devices, deployed code — the durable anchors.
    Technology,
    /// Firms, regulators, standards bodies.
    Institution,
}

/// An actor with stances on a fixed set of issues (-1.0 .. 1.0 per issue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Actor {
    /// Identifier.
    pub id: ActorId,
    /// Kind.
    pub kind: ActorKind,
    /// Display name.
    pub name: String,
    /// Stances on the network's issue axes.
    pub stances: Vec<f64>,
    /// Whether the actor is still present.
    pub active: bool,
}

/// The actor network: actors plus pairwise alignment in `[0, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActorNetwork {
    actors: Vec<Actor>,
    /// alignment keyed by (low id, high id)
    alignment: BTreeMap<(ActorId, ActorId), f64>,
    /// Number of issue axes every actor has a stance on.
    pub issue_count: usize,
}

impl ActorNetwork {
    /// A network with the given number of issue axes.
    pub fn new(issue_count: usize) -> Self {
        ActorNetwork { actors: Vec::new(), alignment: BTreeMap::new(), issue_count }
    }

    /// Add an actor; stances are clamped to `[-1, 1]` and padded/truncated
    /// to the issue count.
    pub fn add_actor(&mut self, kind: ActorKind, name: &str, stances: Vec<f64>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        let mut s: Vec<f64> = stances.into_iter().map(|v| v.clamp(-1.0, 1.0)).collect();
        s.resize(self.issue_count, 0.0);
        self.actors.push(Actor { id, kind, name: name.to_owned(), stances: s, active: true });
        id
    }

    /// Remove (deactivate) an actor and its alignments.
    pub fn remove_actor(&mut self, id: ActorId) {
        if let Some(a) = self.actors.get_mut(id.index()) {
            a.active = false;
        }
        self.alignment.retain(|(x, y), _| *x != id && *y != id);
    }

    /// Actor accessor.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.index()]
    }

    /// Active actors.
    pub fn active_actors(&self) -> impl Iterator<Item = &Actor> {
        self.actors.iter().filter(|a| a.active)
    }

    /// Number of active actors.
    pub fn active_count(&self) -> usize {
        self.active_actors().count()
    }

    fn key(a: ActorId, b: ActorId) -> (ActorId, ActorId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Set the alignment strength between two actors.
    pub fn align(&mut self, a: ActorId, b: ActorId, strength: f64) {
        if a == b {
            return;
        }
        self.alignment.insert(Self::key(a, b), strength.clamp(0.0, 1.0));
    }

    /// Current alignment between two actors (0 when none recorded).
    pub fn alignment(&self, a: ActorId, b: ActorId) -> f64 {
        self.alignment.get(&Self::key(a, b)).copied().unwrap_or(0.0)
    }

    /// Interest conflict between two actors: half the mean absolute stance
    /// gap, in `[0, 1]`.
    pub fn conflict(&self, a: ActorId, b: ActorId) -> f64 {
        let sa = &self.actors[a.index()].stances;
        let sb = &self.actors[b.index()].stances;
        if sa.is_empty() {
            return 0.0;
        }
        let total: f64 = sa.iter().zip(sb).map(|(x, y)| (x - y).abs()).sum();
        (total / sa.len() as f64) / 2.0
    }

    /// Durability (Latour): mean alignment over aligned pairs, weighted ×2
    /// when either endpoint is Technology — technology anchors the network.
    /// Zero when nothing is aligned.
    pub fn durability(&self) -> f64 {
        let mut weight_sum = 0.0;
        let mut value_sum = 0.0;
        for ((a, b), s) in &self.alignment {
            let aa = &self.actors[a.index()];
            let bb = &self.actors[b.index()];
            if !aa.active || !bb.active {
                continue;
            }
            let w = if aa.kind == ActorKind::Technology || bb.kind == ActorKind::Technology {
                2.0
            } else {
                1.0
            };
            weight_sum += w;
            value_sum += w * s;
        }
        if weight_sum == 0.0 {
            0.0
        } else {
            value_sum / weight_sum
        }
    }

    /// Tussle energy: total unresolved conflict over *aligned* pairs —
    /// actors who must work together but want different things.
    pub fn tussle_energy(&self) -> f64 {
        self.alignment
            .iter()
            .filter(|((a, b), _)| self.actors[a.index()].active && self.actors[b.index()].active)
            .map(|((a, b), s)| s * self.conflict(*a, *b))
            .sum()
    }

    /// One relaxation step: aligned actors pull each other's stances
    /// together at `rate` (tussles get resolved; the network hardens).
    pub fn relax(&mut self, rate: f64) {
        let pairs: Vec<(ActorId, ActorId, f64)> =
            self.alignment.iter().map(|((a, b), s)| (*a, *b, *s)).collect();
        for (a, b, s) in pairs {
            if !self.actors[a.index()].active || !self.actors[b.index()].active {
                continue;
            }
            for i in 0..self.issue_count {
                let xa = self.actors[a.index()].stances[i];
                let xb = self.actors[b.index()].stances[i];
                let pull = rate * s * (xb - xa) / 2.0;
                self.actors[a.index()].stances[i] = (xa + pull).clamp(-1.0, 1.0);
                self.actors[b.index()].stances[i] = (xb - pull).clamp(-1.0, 1.0);
            }
            // working together also strengthens the tie
            let e = self.alignment.get_mut(&Self::key(a, b)).expect("pair existed");
            *e = (*e + rate * 0.1).min(1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (ActorNetwork, ActorId, ActorId, ActorId) {
        let mut n = ActorNetwork::new(2);
        let user = n.add_actor(ActorKind::Human, "users", vec![1.0, 0.0]);
        let isp = n.add_actor(ActorKind::Institution, "isp", vec![-1.0, 0.0]);
        let ip = n.add_actor(ActorKind::Technology, "ip-protocol", vec![0.0, 0.0]);
        (n, user, isp, ip)
    }

    #[test]
    fn stances_clamped_and_padded() {
        let mut n = ActorNetwork::new(3);
        let a = n.add_actor(ActorKind::Human, "a", vec![5.0]);
        assert_eq!(n.actor(a).stances, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn conflict_measures_stance_gap() {
        let (n, user, isp, ip) = net();
        assert!((n.conflict(user, isp) - 0.5).abs() < 1e-12);
        assert!((n.conflict(user, ip) - 0.25).abs() < 1e-12);
        assert_eq!(n.conflict(user, user), 0.0);
    }

    #[test]
    fn durability_weights_technology_anchors() {
        let (mut n, user, isp, ip) = net();
        n.align(user, isp, 0.2);
        n.align(user, ip, 0.8);
        // weighted mean: (1*0.2 + 2*0.8) / 3 = 0.6
        assert!((n.durability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_network_has_zero_metrics() {
        let n = ActorNetwork::new(2);
        assert_eq!(n.durability(), 0.0);
        assert_eq!(n.tussle_energy(), 0.0);
    }

    #[test]
    fn tussle_energy_counts_aligned_conflicts() {
        let (mut n, user, isp, _) = net();
        assert_eq!(n.tussle_energy(), 0.0, "no alignment, no tussle");
        n.align(user, isp, 1.0);
        assert!((n.tussle_energy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relaxation_resolves_tussles_and_hardens_ties() {
        let (mut n, user, isp, _) = net();
        n.align(user, isp, 0.5);
        let e0 = n.tussle_energy();
        let d0 = n.durability();
        for _ in 0..200 {
            n.relax(0.1);
        }
        assert!(n.tussle_energy() < e0 * 0.1, "tussle should drain");
        assert!(n.durability() > d0, "alignment should strengthen");
    }

    #[test]
    fn removed_actors_drop_out() {
        let (mut n, user, isp, ip) = net();
        n.align(user, isp, 0.5);
        n.align(user, ip, 0.5);
        n.remove_actor(isp);
        assert_eq!(n.active_count(), 2);
        assert_eq!(n.alignment(user, isp), 0.0);
        assert!(n.durability() > 0.0, "the tech tie survives");
    }

    #[test]
    fn self_alignment_is_ignored() {
        let (mut n, user, ..) = net();
        n.align(user, user, 1.0);
        assert_eq!(n.alignment(user, user), 0.0);
    }
}

//! The design principles as analyzers.
//!
//! §IV states the principles; this module measures whether a design
//! follows them:
//!
//! * **Design for choice** (§IV.B) → [`choice_index`]: across the decision
//!   points a party faces, how many offer a real alternative?
//! * **Visibility of choices** (§IV.C: "it matters if choices and the
//!   consequence of choices are visible") → [`visibility_index`].
//! * **Modularize along tussle boundaries** (§IV.A) → [`spillover`]: how
//!   much did a fight in one space perturb an outcome in another? A
//!   well-isolated design scores near zero.
//! * **Value flow** (§IV.C: "recognize that it must flow") →
//!   [`value_flow_completeness`] over the econ ledger.

use tussle_econ::{AccountId, Ledger, Money};

/// Fraction of decision points offering at least two options, in `[0,1]`.
/// `points` is a list of option counts, one per decision a party faces.
/// Empty input scores zero: a party with no decisions has no choice.
pub fn choice_index(points: &[usize]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let free = points.iter().filter(|n| **n >= 2).count();
    free as f64 / points.len() as f64
}

/// Fraction of consequential decisions that were visible to the affected
/// party, in `[0,1]`. Empty input scores 1.0: nothing was hidden.
pub fn visibility_index(decisions_visible: &[bool]) -> f64 {
    if decisions_visible.is_empty() {
        return 1.0;
    }
    let visible = decisions_visible.iter().filter(|v| **v).count();
    visible as f64 / decisions_visible.len() as f64
}

/// Relative perturbation of a metric in a *different* tussle space when a
/// tussle is fought in this one: `|with - baseline| / max(|baseline|, eps)`.
///
/// Zero means perfect isolation (the §IV.A goal); large values are the
/// collateral damage the paper warns about.
pub fn spillover(baseline: f64, with_tussle: f64) -> f64 {
    let eps = 1e-9;
    (with_tussle - baseline).abs() / baseline.abs().max(eps)
}

/// Of the compensations a design *requires* to flow (payee, minimum
/// amount), what fraction actually flowed in the ledger? §VII's QoS
/// post-mortem is a value-flow completeness of zero.
pub fn value_flow_completeness(ledger: &Ledger, required: &[(AccountId, Money)]) -> f64 {
    if required.is_empty() {
        return 1.0;
    }
    let satisfied =
        required.iter().filter(|(who, amount)| ledger.total_received(*who) >= *amount).count();
    satisfied as f64 / required.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_index_counts_real_alternatives() {
        assert_eq!(choice_index(&[]), 0.0);
        assert_eq!(choice_index(&[1, 1, 1]), 0.0); // monopoly everywhere
        assert_eq!(choice_index(&[2, 3, 1, 5]), 0.75);
        assert_eq!(choice_index(&[2, 2]), 1.0);
        assert_eq!(choice_index(&[0]), 0.0); // no option at all
    }

    #[test]
    fn visibility_index_basics() {
        assert_eq!(visibility_index(&[]), 1.0);
        assert_eq!(visibility_index(&[true, true]), 1.0);
        assert_eq!(visibility_index(&[true, false, false, false]), 0.25);
    }

    #[test]
    fn spillover_zero_when_isolated() {
        assert_eq!(spillover(10.0, 10.0), 0.0);
        assert!((spillover(10.0, 15.0) - 0.5).abs() < 1e-12);
        assert!((spillover(10.0, 5.0) - 0.5).abs() < 1e-12);
        // zero baseline uses epsilon, not a division by zero
        assert!(spillover(0.0, 1.0) > 1.0);
    }

    #[test]
    fn value_flow_completeness_over_ledger() {
        let mut l = Ledger::new();
        let user = AccountId(1);
        let isp_a = AccountId(2);
        let isp_b = AccountId(3);
        l.open(user);
        l.open(isp_a);
        l.open(isp_b);
        l.mint(user, Money::from_dollars(100));
        l.transfer(user, isp_a, Money::from_dollars(10), "transit").unwrap();

        let required = [(isp_a, Money::from_dollars(10)), (isp_b, Money::from_dollars(10))];
        assert_eq!(value_flow_completeness(&l, &required), 0.5);
        l.transfer(user, isp_b, Money::from_dollars(10), "transit").unwrap();
        assert_eq!(value_flow_completeness(&l, &required), 1.0);
        assert_eq!(value_flow_completeness(&l, &[]), 1.0);
    }

    #[test]
    fn underpayment_does_not_count() {
        let mut l = Ledger::new();
        let user = AccountId(1);
        let isp = AccountId(2);
        l.open(user);
        l.open(isp);
        l.mint(user, Money::from_dollars(100));
        l.transfer(user, isp, Money::from_dollars(3), "partial").unwrap();
        assert_eq!(value_flow_completeness(&l, &[(isp, Money::from_dollars(10))]), 0.0);
    }
}

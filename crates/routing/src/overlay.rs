//! Resilient overlay networks — "a tool in the tussle".
//!
//! §V.A.4: "Since source routes do not work effectively today, researchers
//! propose even more indirect ways of getting around provider-selected
//! routing, such as exploiting hosts as intermediate forwarding agents.
//! (This kind of overlay network is a tool in the tussle, certainly.)"
//!
//! The overlay relays traffic host-to-host at the application layer: when
//! the direct path fails (link failure, firewall, policy refusal), the
//! sender forwards the payload to an overlay member that *can* reach the
//! destination. Because each leg is an ordinary packet to an ordinary
//! address, no provider cooperation is needed — and no provider is
//! compensated, which is the **economic distortion** experiment E5
//! measures: transit an AS never agreed to carry.

use serde::{Deserialize, Serialize};
use tussle_net::{Address, DeliveryReport, Network, NodeId, Packet};
use tussle_sim::{SimRng, SimTime};

/// How a delivery ultimately happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OverlayDelivery {
    /// The direct path worked; no overlay involvement.
    Direct(DeliveryReport),
    /// Relayed via an overlay member; both legs' reports included.
    Relayed {
        /// The member that relayed.
        via: NodeId,
        /// Sender → relay leg.
        first_leg: DeliveryReport,
        /// Relay → destination leg.
        second_leg: DeliveryReport,
    },
    /// Every option failed; the direct attempt's report is returned.
    Failed(DeliveryReport),
}

impl OverlayDelivery {
    /// Did the payload arrive, by any means?
    pub fn delivered(&self) -> bool {
        match self {
            OverlayDelivery::Direct(r) => r.delivered,
            OverlayDelivery::Relayed { second_leg, .. } => second_leg.delivered,
            OverlayDelivery::Failed(_) => false,
        }
    }

    /// End-to-end latency (sum of legs).
    pub fn latency(&self) -> SimTime {
        match self {
            OverlayDelivery::Direct(r) | OverlayDelivery::Failed(r) => r.latency,
            OverlayDelivery::Relayed { first_leg, second_leg, .. } => {
                first_leg.latency.saturating_add(second_leg.latency)
            }
        }
    }

    /// Total router hops consumed — the resource footprint providers carry.
    pub fn hops(&self) -> usize {
        match self {
            OverlayDelivery::Direct(r) | OverlayDelivery::Failed(r) => r.hops(),
            OverlayDelivery::Relayed { first_leg, second_leg, .. } => {
                first_leg.hops() + second_leg.hops()
            }
        }
    }
}

/// A RON-style overlay: a set of member hosts willing to relay for each
/// other ("mutual aid", §IV.C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overlay {
    /// Member hosts, with their overlay addresses.
    pub members: Vec<(NodeId, Address)>,
}

impl Overlay {
    /// An overlay over the given member hosts.
    pub fn new(members: Vec<(NodeId, Address)>) -> Self {
        Overlay { members }
    }

    /// Send `pkt` from `from`, falling back to one-hop relay through each
    /// member in order until something works.
    ///
    /// Each relay leg is an ordinary packet: the first leg re-addresses the
    /// payload to the relay, the second restores the true destination —
    /// exactly how application-layer overlays evade network-layer policy.
    pub fn send(
        &self,
        net: &mut Network,
        from: NodeId,
        pkt: Packet,
        rng: &mut SimRng,
    ) -> OverlayDelivery {
        let direct = net.send(from, pkt.clone(), rng);
        if direct.delivered {
            return OverlayDelivery::Direct(direct);
        }
        for &(member, member_addr) in &self.members {
            if member == from {
                continue;
            }
            // Leg 1: to the relay, disguised as ordinary member traffic.
            let mut leg1 = pkt.clone();
            leg1.dst = member_addr;
            leg1.ttl = Packet::DEFAULT_TTL;
            let first = net.send(from, leg1, rng);
            if !first.delivered {
                continue;
            }
            // Leg 2: relay forwards to the true destination with its own
            // source address (it is, after all, the one sending now).
            let mut leg2 = pkt.clone();
            leg2.src = member_addr;
            leg2.ttl = Packet::DEFAULT_TTL;
            let second = net.send(member, leg2, rng);
            if second.delivered {
                return OverlayDelivery::Relayed {
                    via: member,
                    first_leg: first,
                    second_leg: second,
                };
            }
        }
        OverlayDelivery::Failed(direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
    use tussle_net::firewall::Firewall;
    use tussle_net::packet::{ports, Protocol};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    /// Triangle of ASes: src -- rA -- dst, src -- rB -- relay -- rA.
    /// rA's firewall blocks src's traffic; the relay's traffic is fine.
    fn world() -> (Network, NodeId, NodeId, Overlay, Packet) {
        let mut net = Network::new();
        let src = net.add_host(Asn(1));
        let ra = net.add_router(Asn(2));
        let dst = net.add_host(Asn(2));
        let rb = net.add_router(Asn(3));
        let relay = net.add_host(Asn(3));
        net.connect(src, ra, SimTime::from_millis(5), 1_000_000_000);
        net.connect(ra, dst, SimTime::from_millis(5), 1_000_000_000);
        net.connect(src, rb, SimTime::from_millis(5), 1_000_000_000);
        net.connect(rb, relay, SimTime::from_millis(5), 1_000_000_000);
        net.connect(relay, ra, SimTime::from_millis(5), 1_000_000_000);

        let a_src = addr(0x0a010000);
        let a_dst = addr(0x0b010000);
        let a_rel = addr(0x0c010000);
        net.node_mut(src).bind(a_src);
        net.node_mut(dst).bind(a_dst);
        net.node_mut(relay).bind(a_rel);

        // routes
        let pd = Prefix::new(0x0b010000, 16);
        let pr = Prefix::new(0x0c010000, 16);
        net.fib_mut(src).install(pd, ra, 0);
        net.fib_mut(src).install(pr, rb, 0);
        net.fib_mut(ra).install(pd, dst, 0);
        net.fib_mut(rb).install(pr, relay, 0);
        net.fib_mut(relay).install(pd, ra, 0);

        let overlay = Overlay::new(vec![(relay, a_rel)]);
        let pkt = Packet::new(a_src, a_dst, Protocol::Tcp, 1, ports::NOVEL);
        (net, src, relay, overlay, pkt)
    }

    #[test]
    fn direct_when_path_is_clean() {
        let (mut net, src, _, overlay, pkt) = world();
        let mut rng = SimRng::seed_from_u64(1);
        let d = overlay.send(&mut net, src, pkt, &mut rng);
        assert!(matches!(d, OverlayDelivery::Direct(_)));
        assert!(d.delivered());
    }

    #[test]
    fn relays_around_a_firewall() {
        let (mut net, src, relay, overlay, pkt) = world();
        // AS2's border blocklists src's prefix (a country-level block, a
        // de-peering grudge — any source-keyed policy). The overlay's
        // second leg originates from the relay's address, so the policy
        // never sees the blocked prefix.
        let mut fw = Firewall::transparent();
        fw.push(tussle_net::FirewallRule {
            matcher: tussle_net::MatchOn::SrcInPrefix(Prefix::new(0x0a010000, 16)),
            action: tussle_net::FirewallAction::Deny,
            installed_by: "AS2 border".into(),
        });
        let ra = net.nodes()[1].id;
        net.set_firewall(ra, fw);
        let mut rng = SimRng::seed_from_u64(1);
        let d = overlay.send(&mut net, src, pkt, &mut rng);
        match &d {
            OverlayDelivery::Relayed { via, .. } => assert_eq!(*via, relay),
            other => panic!("expected relay, got {other:?}"),
        }
        assert!(d.delivered());
    }

    #[test]
    fn relays_around_link_failure() {
        let (mut net, src, relay, overlay, pkt) = world();
        // fail src--ra
        let l = net.links()[0].id;
        net.link_mut(l).up = false;
        let mut rng = SimRng::seed_from_u64(1);
        let d = overlay.send(&mut net, src, pkt, &mut rng);
        assert!(d.delivered());
        match &d {
            OverlayDelivery::Relayed { via, first_leg, second_leg } => {
                assert_eq!(*via, relay);
                assert!(first_leg.delivered && second_leg.delivered);
            }
            other => panic!("expected relay, got {other:?}"),
        }
    }

    #[test]
    fn relayed_latency_and_hops_are_summed() {
        let (mut net, src, _, overlay, pkt) = world();
        let l = net.links()[0].id;
        net.link_mut(l).up = false;
        let mut rng = SimRng::seed_from_u64(1);
        let direct_hops = 2; // src-ra-dst when healthy
        let d = overlay.send(&mut net, src, pkt, &mut rng);
        assert!(d.hops() > direct_hops, "overlay consumes extra transit: {}", d.hops());
        assert!(d.latency() > SimTime::from_millis(10));
    }

    #[test]
    fn total_failure_reports_direct_attempt() {
        let (mut net, src, _, overlay, pkt) = world();
        // kill both exits
        for i in [0usize, 2] {
            let l = net.links()[i].id;
            net.link_mut(l).up = false;
        }
        let mut rng = SimRng::seed_from_u64(1);
        let d = overlay.send(&mut net, src, pkt, &mut rng);
        assert!(!d.delivered());
        assert!(matches!(d, OverlayDelivery::Failed(_)));
    }
}

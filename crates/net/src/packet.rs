//! The self-describing datagram.
//!
//! The header carries exactly the fields the paper's tussles hinge on:
//! ToS bits (explicit QoS selection, decoupled from the application —
//! §IV.A), ports (what middleboxes *peek* at), an optional loose source
//! route (user-controlled provider selection, §V.A.4), and an encryption
//! envelope ("peeking is irresistible... the ultimate defense of the
//! end-to-end mode is end-to-end encryption", §VI.A). Encrypting a packet
//! hides its ports and payload from intermediaries but leaves the
//! *fact* of encryption visible — unless steganography is used, the next
//! rung of the escalation ladder (§VI.A footnote 17).

use crate::addr::Address;
use crate::node::NodeId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Transport protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Reliable stream (port-addressed).
    Tcp,
    /// Datagram (port-addressed).
    Udp,
    /// Control/diagnostic traffic.
    Icmp,
    /// An encapsulating tunnel; the inner packet rides in the payload.
    Tunnel,
}

/// A well-known port table, as small as the experiments need.
pub mod ports {
    /// SMTP mail submission.
    pub const SMTP: u16 = 25;
    /// HTTP web traffic.
    pub const HTTP: u16 = 80;
    /// HTTPS web traffic.
    pub const HTTPS: u16 = 443;
    /// VoIP media (the application ISPs want to vertically integrate).
    pub const VOIP: u16 = 5060;
    /// Peer-to-peer file exchange (the application rights-holders fight).
    pub const P2P: u16 = 6881;
    /// A "novel application" port — something a firewall has never seen.
    pub const NOVEL: u16 = 49152;
}

/// A traceback stamp: which router marked last, and how many hops ago.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mark {
    /// The stamping router.
    pub node: crate::node::NodeId,
    /// Hops traversed since the stamp.
    pub distance: u8,
}

/// A datagram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Source address.
    pub src: Address,
    /// Destination address.
    pub dst: Address,
    /// Source port.
    pub src_port: u16,
    /// Destination port (the service selector middleboxes key on).
    pub dst_port: u16,
    /// Type-of-service bits: explicit QoS request, independent of ports.
    pub tos: u8,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Transport protocol.
    pub proto: Protocol,
    /// Optional loose source route: waypoint nodes the sender asks the
    /// network to visit, in order.
    pub source_route: Vec<NodeId>,
    /// End-to-end encryption: hides ports and payload from intermediaries.
    pub encrypted: bool,
    /// Steganography: hides even the *fact* of encryption (traffic looks
    /// like innocuous HTTP).
    pub stego: bool,
    /// Identity tag presented by the sender, if any. `None` models an
    /// anonymous sender; middleboxes that mediate on trust read this.
    pub identity: Option<u64>,
    /// Application payload.
    pub payload: Bytes,
}

impl Packet {
    /// Default TTL for new packets.
    pub const DEFAULT_TTL: u8 = 32;

    /// A plain datagram between two addresses.
    pub fn new(src: Address, dst: Address, proto: Protocol, src_port: u16, dst_port: u16) -> Self {
        Packet {
            src,
            dst,
            src_port,
            dst_port,
            tos: 0,
            ttl: Self::DEFAULT_TTL,
            proto,
            source_route: Vec::new(),
            encrypted: false,
            stego: false,
            identity: None,
            payload: Bytes::new(),
        }
    }

    /// Builder: set ToS bits.
    pub fn with_tos(mut self, tos: u8) -> Self {
        self.tos = tos;
        self
    }

    /// Builder: attach a loose source route.
    pub fn with_source_route(mut self, waypoints: Vec<NodeId>) -> Self {
        self.source_route = waypoints;
        self
    }

    /// Builder: encrypt end-to-end.
    pub fn encrypt(mut self) -> Self {
        self.encrypted = true;
        self
    }

    /// Builder: apply steganography (implies encryption; observers see an
    /// innocuous port).
    pub fn steganographic(mut self) -> Self {
        self.encrypted = true;
        self.stego = true;
        self
    }

    /// Builder: present an identity.
    pub fn with_identity(mut self, id: u64) -> Self {
        self.identity = Some(id);
        self
    }

    /// Builder: attach a payload.
    pub fn with_payload(mut self, payload: Bytes) -> Self {
        self.payload = payload;
        self
    }

    /// Total size in bytes (a fixed header cost plus payload).
    pub fn size(&self) -> usize {
        40 + self.payload.len()
    }

    /// The destination port *as seen by an intermediary*.
    ///
    /// This is the "peeking" interface. Cleartext packets expose the real
    /// port. Encrypted packets expose nothing. Steganographic packets
    /// actively lie: they present as ordinary web traffic.
    pub fn visible_dst_port(&self) -> Option<u16> {
        if self.stego {
            Some(ports::HTTP)
        } else if self.encrypted {
            None
        } else {
            Some(self.dst_port)
        }
    }

    /// Whether an intermediary can tell this packet is encrypted.
    ///
    /// Plain encryption is *visible* opacity — the observer knows it is
    /// being denied a look, which is what lets an ISP block or surcharge
    /// encrypted traffic. Steganography removes even that signal.
    pub fn visibly_encrypted(&self) -> bool {
        self.encrypted && !self.stego
    }

    /// The ToS bits as seen by an intermediary. Always visible — that is
    /// the point of putting QoS selection in an explicit header field
    /// rather than inferring it from (hideable) ports.
    pub fn visible_tos(&self) -> u8 {
        self.tos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Prefix};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), v & 0xffff, AddressOrigin::ProviderIndependent)
    }

    fn pkt() -> Packet {
        Packet::new(addr(0x0a010000), addr(0x0b020000), Protocol::Tcp, 1234, ports::VOIP)
    }

    #[test]
    fn cleartext_exposes_port() {
        let p = pkt();
        assert_eq!(p.visible_dst_port(), Some(ports::VOIP));
        assert!(!p.visibly_encrypted());
    }

    #[test]
    fn encryption_hides_port_but_is_visible() {
        let p = pkt().encrypt();
        assert_eq!(p.visible_dst_port(), None);
        assert!(p.visibly_encrypted());
    }

    #[test]
    fn steganography_lies_about_port_and_hides_encryption() {
        let p = pkt().steganographic();
        assert_eq!(p.visible_dst_port(), Some(ports::HTTP));
        assert!(!p.visibly_encrypted());
        assert!(p.encrypted);
    }

    #[test]
    fn tos_always_visible() {
        let p = pkt().with_tos(3).steganographic();
        assert_eq!(p.visible_tos(), 3);
    }

    #[test]
    fn builders_compose() {
        let p = pkt().with_tos(1).with_identity(77).with_payload(Bytes::from_static(b"hello"));
        assert_eq!(p.tos, 1);
        assert_eq!(p.identity, Some(77));
        assert_eq!(p.size(), 45);
    }

    #[test]
    fn default_packet_is_anonymous_cleartext() {
        let p = pkt();
        assert_eq!(p.identity, None);
        assert!(!p.encrypted);
        assert_eq!(p.ttl, Packet::DEFAULT_TTL);
        assert!(p.source_route.is_empty());
    }
}

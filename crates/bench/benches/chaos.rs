//! Chaos-campaign bench: what robustness testing costs on top of a sweep.
//!
//! Times the chaos campaign over a small intensity grid against the plain
//! sweep covering the same `experiments × total runs`, and asserts the
//! ambient-fault plumbing is close to free: an intensity-0-only campaign
//! must stay within a small constant factor of the equivalent sweep (the
//! thread-local intensity gate costs one load per hop, no rng draws).
//!
//! ```sh
//! cargo bench -p tussle-bench --bench chaos
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tussle_experiments::{run_chaos, run_sweep, ChaosConfig, SweepConfig};

const ONLY: [&str; 3] = ["E4", "E6", "E17"];

fn chaos_config(intensities: &[f64]) -> ChaosConfig {
    ChaosConfig {
        intensities: intensities.to_vec(),
        seeds: 4,
        base_seed: 1,
        only: Some(ONLY.iter().map(|s| (*s).to_owned()).collect()),
        threads: None,
    }
}

fn sweep_config(seeds: u64) -> SweepConfig {
    SweepConfig {
        seeds,
        base_seed: 1,
        only: Some(ONLY.iter().map(|s| (*s).to_owned()).collect()),
        threads: None,
    }
}

/// Best-of-N wall-clock, in nanoseconds.
fn best_of(n: usize, mut run: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one run")
}

fn bench_chaos(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos");
    g.sample_size(10);
    g.bench_function("campaign_grid_3_intensities", |b| {
        b.iter(|| black_box(run_chaos(&chaos_config(&[0.0, 0.4, 0.8])).expect("campaign runs")))
    });
    g.bench_function("campaign_intensity_zero_only", |b| {
        b.iter(|| black_box(run_chaos(&chaos_config(&[0.0])).expect("campaign runs")))
    });
    g.bench_function("plain_sweep_same_runs", |b| {
        b.iter(|| black_box(run_sweep(&sweep_config(4)).expect("sweep runs")))
    });
    g.finish();

    // Overhead assertion: an intensity-0 campaign performs exactly the
    // sweep's work plus the ambient plumbing (guard set/restore per run,
    // one thread-local read per hop) — best-of-3 must stay within 40%.
    let sweep_ns = best_of(3, || {
        black_box(run_sweep(black_box(&sweep_config(4))).expect("sweep runs"));
    });
    let chaos_ns = best_of(3, || {
        black_box(run_chaos(black_box(&chaos_config(&[0.0]))).expect("campaign runs"));
    });
    let ratio = chaos_ns as f64 / sweep_ns as f64;
    println!(
        "chaos overhead at intensity 0: sweep {sweep_ns} ns, chaos {chaos_ns} ns, ratio {ratio:.2}"
    );
    assert!(ratio < 1.4, "ambient chaos plumbing too expensive at intensity 0 (ratio {ratio:.2})");
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);

//! Regex-subset string generation for `&str` pattern strategies.
//!
//! Supports the pattern language this workspace's tests use:
//!
//! * character classes `[a-z0-9_]` with ranges and literals;
//! * `\PC` — any printable character (approximated as printable ASCII);
//! * literal characters;
//! * an optional `{n}` / `{m,n}` repetition suffix on each atom.
//!
//! Anything outside this subset panics with a clear message rather than
//! silently generating the wrong language.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Choose uniformly from this alphabet.
    Class(Vec<char>),
    /// Exactly this character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate a string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.range(0..set.len())]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let escaped: String = chars[i + 1..].iter().take(2).collect();
                if escaped.starts_with("PC") {
                    i += 3;
                    // \PC: everything but control characters; printable
                    // ASCII is a faithful-enough sublanguage for tests.
                    Atom::Class((0x20u8..0x7f).map(|b| b as char).collect())
                } else {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                    i += 2;
                    Atom::Literal(c)
                }
            }
            '{' | '}' | ']' | '(' | ')' | '*' | '+' | '?' | '|' | '^' | '$' | '.' => {
                panic!("unsupported regex construct `{}` in pattern `{pattern}`", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().unwrap_or_else(|_| panic!("bad repetition `{spec}`")),
                    hi.parse().unwrap_or_else(|_| panic!("bad repetition `{spec}`")),
                ),
                None => {
                    let n = spec.parse().unwrap_or_else(|_| panic!("bad repetition `{spec}`"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern `{pattern}`");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in pattern `{pattern}`");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern `{pattern}`");
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..200 {
            let s = generate_matching("[a-z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = TestRng::for_case("pc", 0);
        for _ in 0..100 {
            let s = generate_matching("\\PC{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::for_case("lit", 0);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("x{3}", &mut rng), "xxx");
    }
}

//! Intermediary insertion and consent (the OPES question).
//!
//! §V.B footnote 13: "An interesting debate relevant to this topic emerged
//! during the IETF's chartering of the Open Pluggable Edge Services (OPES)
//! working group ... The IAB has focused on issues of whether one end or
//! both have to concur with the insertion of an intermediate node in the
//! communication, and what tools the user should have to detect and
//! recover from a faulty node."
//!
//! A [`Session`] between two ends may have service intermediaries inserted
//! under a [`ConsentRule`]; each end can audit which intermediaries touch
//! its traffic and evict a faulty one — the detect-and-recover tool the
//! IAB asked for.

use serde::{Deserialize, Serialize};

/// Which ends must concur before an intermediary is inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsentRule {
    /// Nobody asks the ends (the pre-OPES fear).
    NoConsent,
    /// The initiating end suffices.
    OneEnd,
    /// Both ends must concur (the IAB's conservative posture).
    BothEnds,
}

/// An intermediary service node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Intermediary {
    /// Identifier.
    pub id: u64,
    /// What it claims to do ("cache", "virus-scan", "ad-insert").
    pub service: String,
    /// Whether it currently corrupts traffic (fault injection for tests).
    pub faulty: bool,
    /// Whether it announces itself to the ends (§IV.C visibility).
    pub announces_itself: bool,
}

/// Why an insertion was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertError {
    /// A required end withheld consent.
    ConsentWithheld {
        /// Which end said no (0 = initiator, 1 = responder).
        end: u8,
    },
}

impl core::fmt::Display for InsertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InsertError::ConsentWithheld { end } => {
                let who = if *end == 0 { "initiator" } else { "responder" };
                write!(f, "the {who} withheld consent to the intermediary")
            }
        }
    }
}

impl std::error::Error for InsertError {}

/// A two-party session with an intermediary chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Session {
    /// The governing consent rule.
    pub rule: ConsentRule,
    /// Consent bits for (initiator, responder) — what each end would say.
    pub end_consents: (bool, bool),
    chain: Vec<Intermediary>,
}

impl Session {
    /// A fresh session under a rule, with each end's standing consent.
    pub fn new(rule: ConsentRule, initiator_consents: bool, responder_consents: bool) -> Self {
        Session { rule, end_consents: (initiator_consents, responder_consents), chain: Vec::new() }
    }

    /// Try to insert an intermediary.
    pub fn insert(&mut self, node: Intermediary) -> Result<(), InsertError> {
        match self.rule {
            ConsentRule::NoConsent => {}
            ConsentRule::OneEnd => {
                if !self.end_consents.0 {
                    return Err(InsertError::ConsentWithheld { end: 0 });
                }
            }
            ConsentRule::BothEnds => {
                if !self.end_consents.0 {
                    return Err(InsertError::ConsentWithheld { end: 0 });
                }
                if !self.end_consents.1 {
                    return Err(InsertError::ConsentWithheld { end: 1 });
                }
            }
        }
        self.chain.push(node);
        Ok(())
    }

    /// The intermediaries an end can *see*: those that announce
    /// themselves. Under `NoConsent`, silent nodes are invisible — exactly
    /// the detectability gap the IAB worried about.
    pub fn visible_chain(&self) -> Vec<&Intermediary> {
        self.chain.iter().filter(|i| i.announces_itself).collect()
    }

    /// The full chain (ground truth, for tests and audits with operator
    /// cooperation).
    pub fn actual_chain(&self) -> &[Intermediary] {
        &self.chain
    }

    /// Does the session currently deliver traffic intact?
    pub fn healthy(&self) -> bool {
        self.chain.iter().all(|i| !i.faulty)
    }

    /// The recovery tool: detect faulty *visible* intermediaries and evict
    /// them. Returns the ids evicted. A faulty node that hides cannot be
    /// recovered from this way — the user's only remaining move is
    /// end-to-end encryption or a different path.
    pub fn detect_and_recover(&mut self) -> Vec<u64> {
        let evicted: Vec<u64> =
            self.chain.iter().filter(|i| i.faulty && i.announces_itself).map(|i| i.id).collect();
        self.chain.retain(|i| !(i.faulty && i.announces_itself));
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, faulty: bool, announces: bool) -> Intermediary {
        Intermediary { id, service: "cache".into(), faulty, announces_itself: announces }
    }

    #[test]
    fn both_ends_rule_requires_both() {
        let mut s = Session::new(ConsentRule::BothEnds, true, false);
        assert_eq!(s.insert(node(1, false, true)), Err(InsertError::ConsentWithheld { end: 1 }));
        let mut s = Session::new(ConsentRule::BothEnds, true, true);
        assert!(s.insert(node(1, false, true)).is_ok());
    }

    #[test]
    fn one_end_rule_ignores_the_responder() {
        let mut s = Session::new(ConsentRule::OneEnd, true, false);
        assert!(s.insert(node(1, false, true)).is_ok());
        let mut s = Session::new(ConsentRule::OneEnd, false, true);
        assert_eq!(s.insert(node(1, false, true)), Err(InsertError::ConsentWithheld { end: 0 }));
    }

    #[test]
    fn no_consent_rule_asks_nobody() {
        let mut s = Session::new(ConsentRule::NoConsent, false, false);
        assert!(s.insert(node(1, false, false)).is_ok());
        assert_eq!(s.actual_chain().len(), 1);
    }

    #[test]
    fn silent_nodes_are_invisible_to_the_ends() {
        let mut s = Session::new(ConsentRule::NoConsent, false, false);
        s.insert(node(1, false, true)).unwrap();
        s.insert(node(2, false, false)).unwrap();
        assert_eq!(s.visible_chain().len(), 1);
        assert_eq!(s.actual_chain().len(), 2);
    }

    #[test]
    fn recovery_evicts_announced_faults_only() {
        let mut s = Session::new(ConsentRule::NoConsent, true, true);
        s.insert(node(1, true, true)).unwrap(); // faulty, visible
        s.insert(node(2, true, false)).unwrap(); // faulty, hidden
        s.insert(node(3, false, true)).unwrap(); // fine
        assert!(!s.healthy());
        let evicted = s.detect_and_recover();
        assert_eq!(evicted, vec![1]);
        // the hidden fault persists: detection tools cannot fix what
        // conceals itself (§VI.A)
        assert!(!s.healthy());
        assert_eq!(s.actual_chain().len(), 2);
    }

    #[test]
    fn healthy_chain_recovers_nothing() {
        let mut s = Session::new(ConsentRule::BothEnds, true, true);
        s.insert(node(1, false, true)).unwrap();
        assert!(s.healthy());
        assert!(s.detect_and_recover().is_empty());
    }
}

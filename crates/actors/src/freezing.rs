//! Freeze detection.
//!
//! §II.C: "we should look for a time when innovation slows, not just as a
//! signal but also as a pre-condition of a durably formed and unchangeable
//! Internet." The detector watches entrant arrivals and tussle energy; the
//! network is *frozen* when both have been below threshold for a sustained
//! window.

use serde::{Deserialize, Serialize};

/// Sliding-window freeze detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreezeDetector {
    /// Tussle energy below this counts as "resolved".
    pub energy_threshold: f64,
    /// Steps both signals must stay low before declaring a freeze.
    pub window: usize,
    quiet_steps: usize,
    history: Vec<(usize, f64)>,
}

impl FreezeDetector {
    /// A detector with the given thresholds.
    pub fn new(energy_threshold: f64, window: usize) -> Self {
        FreezeDetector {
            energy_threshold,
            window: window.max(1),
            quiet_steps: 0,
            history: Vec::new(),
        }
    }

    /// Record one step's observations: entrants admitted and current
    /// tussle energy. Returns `true` if the network is now frozen.
    pub fn observe(&mut self, entrants: usize, tussle_energy: f64) -> bool {
        self.history.push((entrants, tussle_energy));
        if entrants == 0 && tussle_energy < self.energy_threshold {
            self.quiet_steps += 1;
        } else {
            self.quiet_steps = 0;
        }
        self.is_frozen()
    }

    /// Is the network frozen right now?
    pub fn is_frozen(&self) -> bool {
        self.quiet_steps >= self.window
    }

    /// The step index at which the freeze was first declared, if ever.
    pub fn frozen_at(&self) -> Option<usize> {
        let mut quiet = 0;
        for (i, (entrants, energy)) in self.history.iter().enumerate() {
            if *entrants == 0 && *energy < self.energy_threshold {
                quiet += 1;
                if quiet >= self.window {
                    return Some(i);
                }
            } else {
                quiet = 0;
            }
        }
        None
    }

    /// Observations recorded so far.
    pub fn steps(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnProcess;
    use crate::network::{ActorKind, ActorNetwork};
    use tussle_sim::SimRng;

    #[test]
    fn quiet_window_declares_freeze() {
        let mut d = FreezeDetector::new(0.1, 3);
        assert!(!d.observe(0, 0.01));
        assert!(!d.observe(0, 0.02));
        assert!(d.observe(0, 0.0));
        assert!(d.is_frozen());
        assert_eq!(d.frozen_at(), Some(2));
    }

    #[test]
    fn an_entrant_resets_the_clock() {
        let mut d = FreezeDetector::new(0.1, 3);
        d.observe(0, 0.0);
        d.observe(0, 0.0);
        d.observe(1, 0.0); // innovation arrives
        assert!(!d.observe(0, 0.0));
        assert!(!d.observe(0, 0.0));
        assert!(d.observe(0, 0.0));
        assert_eq!(d.frozen_at(), Some(5));
    }

    #[test]
    fn high_energy_prevents_freeze() {
        let mut d = FreezeDetector::new(0.1, 2);
        for _ in 0..10 {
            assert!(!d.observe(0, 0.5));
        }
    }

    #[test]
    fn closed_network_freezes_open_network_does_not() {
        // The §II.C claim end to end: entrants are the pre-condition of
        // changeability.
        let run = |rate: f64, seed: u64| {
            let mut net = ActorNetwork::new(2);
            let a = net.add_actor(ActorKind::Human, "users", vec![0.9, -0.3]);
            let b = net.add_actor(ActorKind::Technology, "ip", vec![-0.2, 0.4]);
            net.align(a, b, 0.6);
            let mut churn = ChurnProcess::new(rate);
            let mut det = FreezeDetector::new(0.05, 20);
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..500 {
                let admitted = churn.step(&mut net, &mut rng);
                det.observe(admitted, net.tussle_energy());
            }
            det.frozen_at()
        };
        assert!(run(0.0, 7).is_some(), "closed network must freeze");
        assert!(run(1.0, 7).is_none(), "open network must keep churning");
    }
}

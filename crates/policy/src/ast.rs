//! Expression AST and evaluator.

use crate::ontology::{Ontology, OntologyError};
use crate::value::{Request, Value};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A policy condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Request attribute reference.
    Attr(String),
    /// Logical negation.
    Not(Box<Expr>),
    /// Short-circuit conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Membership test against a list.
    In(Box<Expr>, Box<Expr>),
}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalError {
    /// Ontology violation (unknown attribute or declared-type mismatch).
    Ontology(OntologyError),
    /// The request does not carry a declared attribute.
    MissingAttribute(String),
    /// An operator was applied to incompatible types.
    TypeError {
        /// What was being attempted.
        operation: String,
        /// Offending value's type.
        got: String,
    },
}

impl From<OntologyError> for EvalError {
    fn from(e: OntologyError) -> Self {
        EvalError::Ontology(e)
    }
}

impl Expr {
    /// Evaluate against a request under an ontology.
    pub fn eval(&self, req: &Request, ont: &Ontology) -> Result<Value, EvalError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Attr(name) => {
                // The ontology bound: unknown attributes are rejected even
                // if the request happens to carry them.
                ont.type_of(name)?;
                let v = req.get(name).ok_or_else(|| EvalError::MissingAttribute(name.clone()))?;
                ont.check(name, v)?;
                Ok(v.clone())
            }
            Expr::Not(e) => {
                let v = e.eval(req, ont)?;
                let b = v.as_bool().ok_or(EvalError::TypeError {
                    operation: "!".into(),
                    got: v.type_name().into(),
                })?;
                Ok(Value::Bool(!b))
            }
            Expr::And(a, b) => {
                let va = a.eval(req, ont)?;
                let ba = va.as_bool().ok_or(EvalError::TypeError {
                    operation: "&&".into(),
                    got: va.type_name().into(),
                })?;
                if !ba {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(req, ont)?;
                let bb = vb.as_bool().ok_or(EvalError::TypeError {
                    operation: "&&".into(),
                    got: vb.type_name().into(),
                })?;
                Ok(Value::Bool(bb))
            }
            Expr::Or(a, b) => {
                let va = a.eval(req, ont)?;
                let ba = va.as_bool().ok_or(EvalError::TypeError {
                    operation: "||".into(),
                    got: va.type_name().into(),
                })?;
                if ba {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(req, ont)?;
                let bb = vb.as_bool().ok_or(EvalError::TypeError {
                    operation: "||".into(),
                    got: vb.type_name().into(),
                })?;
                Ok(Value::Bool(bb))
            }
            Expr::Cmp(a, op, b) => {
                let va = a.eval(req, ont)?;
                let vb = b.eval(req, ont)?;
                compare(&va, *op, &vb)
            }
            Expr::In(item, list) => {
                let vi = item.eval(req, ont)?;
                let vl = list.eval(req, ont)?;
                match vl {
                    Value::List(items) => Ok(Value::Bool(items.contains(&vi))),
                    other => Err(EvalError::TypeError {
                        operation: "in".into(),
                        got: other.type_name().into(),
                    }),
                }
            }
        }
    }

    /// Evaluate expecting a boolean result.
    pub fn matches(&self, req: &Request, ont: &Ontology) -> Result<bool, EvalError> {
        let v = self.eval(req, ont)?;
        v.as_bool().ok_or(EvalError::TypeError {
            operation: "condition".into(),
            got: v.type_name().into(),
        })
    }

    /// Every attribute the expression references.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Attr(n) => out.push(n),
            Expr::Not(e) => e.collect_attrs(out),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::In(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Expr::Cmp(a, _, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
        }
    }
}

fn compare(a: &Value, op: CmpOp, b: &Value) -> Result<Value, EvalError> {
    use CmpOp::*;
    let result = match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        },
        (Value::Str(x), Value::Str(y)) => match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            Eq => x == y,
            Ne => x != y,
            _ => {
                return Err(EvalError::TypeError {
                    operation: "ordering".into(),
                    got: "bool".into(),
                });
            }
        },
        (x, _) => {
            return Err(EvalError::TypeError {
                operation: "comparison".into(),
                got: x.type_name().into(),
            })
        }
    };
    Ok(Value::Bool(result))
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    /// Pretty-print with explicit parentheses; `parse(print(e))` is
    /// structurally identical to `e`, which the property tests rely on.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(Value::Int(n)) => write!(f, "{n}"),
            Expr::Lit(Value::Str(s)) => write!(f, "\"{s}\""),
            Expr::Lit(Value::Bool(b)) => write!(f, "{b}"),
            Expr::Lit(Value::List(items)) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match v {
                        Value::Int(n) => write!(f, "{n}")?,
                        Value::Str(s) => write!(f, "\"{s}\"")?,
                        Value::Bool(b) => write!(f, "{b}")?,
                        Value::List(_) => f.write_str("[...]")?,
                    }
                }
                f.write_str("]")
            }
            Expr::Attr(n) => f.write_str(n),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Cmp(a, op, b) => {
                write!(f, "({} {op} {})", Operand(a), Operand(b))
            }
            Expr::In(a, b) => write!(f, "({} in {})", Operand(a), Operand(b)),
        }
    }
}

/// Prints a comparison operand so the result re-parses: literals and
/// attributes print bare; anything else (which the grammar only accepts as
/// a parenthesized `primary`) gets wrapped.
struct Operand<'a>(&'a Expr);

impl fmt::Display for Operand<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Expr::Lit(_) | Expr::Attr(_) => write!(f, "{}", self.0),
            other => write!(f, "({other})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ont() -> Ontology {
        Ontology::network()
    }

    fn req() -> Request {
        Request::new()
            .with("action", "connect")
            .with("dst_port", 443i64)
            .with("encrypted", true)
            .with("anonymous", false)
    }

    fn attr(n: &str) -> Box<Expr> {
        Box::new(Expr::Attr(n.into()))
    }
    fn lit(v: impl Into<Value>) -> Box<Expr> {
        Box::new(Expr::Lit(v.into()))
    }

    #[test]
    fn literal_and_attr() {
        assert_eq!(lit(5i64).eval(&req(), &ont()), Ok(Value::Int(5)));
        assert_eq!(attr("dst_port").eval(&req(), &ont()), Ok(Value::Int(443)));
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        // even though the request carries it!
        let r = req().with("weird", 1i64);
        let e = Expr::Attr("weird".into());
        assert!(matches!(
            e.eval(&r, &ont()),
            Err(EvalError::Ontology(OntologyError::UnknownAttribute(_)))
        ));
    }

    #[test]
    fn missing_attribute_is_distinct_from_unknown() {
        let r = Request::new();
        let e = Expr::Attr("dst_port".into());
        assert_eq!(e.eval(&r, &ont()), Err(EvalError::MissingAttribute("dst_port".into())));
    }

    #[test]
    fn comparisons() {
        let e = Expr::Cmp(attr("dst_port"), CmpOp::Ge, lit(400i64));
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
        let e = Expr::Cmp(attr("action"), CmpOp::Eq, lit("connect"));
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
        let e = Expr::Cmp(attr("action"), CmpOp::Ne, lit("connect"));
        assert_eq!(e.matches(&req(), &ont()), Ok(false));
    }

    #[test]
    fn bool_ordering_is_a_type_error() {
        let e = Expr::Cmp(attr("encrypted"), CmpOp::Lt, lit(true));
        assert!(matches!(e.eval(&req(), &ont()), Err(EvalError::TypeError { .. })));
    }

    #[test]
    fn mixed_type_comparison_is_an_error() {
        let e = Expr::Cmp(attr("dst_port"), CmpOp::Eq, lit("443"));
        assert!(e.eval(&req(), &ont()).is_err());
    }

    #[test]
    fn logic_short_circuits() {
        // (false && <error>) must not evaluate the error side
        let bad = Expr::Attr("nope".into());
        let e = Expr::And(lit(false), Box::new(bad.clone()));
        assert_eq!(e.matches(&req(), &ont()), Ok(false));
        let e = Expr::Or(lit(true), Box::new(bad));
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
    }

    #[test]
    fn membership() {
        let list = Value::List(vec![Value::Int(80), Value::Int(443)]);
        let e = Expr::In(attr("dst_port"), lit_v(list));
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
        let e = Expr::In(lit(8080i64), lit_v(Value::List(vec![Value::Int(80)])));
        assert_eq!(e.matches(&req(), &ont()), Ok(false));
        // `in` against a non-list is an error
        let e = Expr::In(lit(1i64), lit(2i64));
        assert!(e.eval(&req(), &ont()).is_err());
    }

    fn lit_v(v: Value) -> Box<Expr> {
        Box::new(Expr::Lit(v))
    }

    #[test]
    fn not_and_nesting() {
        let e = Expr::Not(Box::new(Expr::Attr("anonymous".into())));
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
        let e = Expr::And(
            Box::new(Expr::Cmp(attr("dst_port"), CmpOp::Eq, lit(443i64))),
            Box::new(Expr::Attr("encrypted".into())),
        );
        assert_eq!(e.matches(&req(), &ont()), Ok(true));
    }

    #[test]
    fn attributes_collected_sorted_deduped() {
        let e = Expr::And(
            Box::new(Expr::Cmp(attr("dst_port"), CmpOp::Eq, lit(1i64))),
            Box::new(Expr::Or(attr("encrypted"), attr("dst_port"))),
        );
        assert_eq!(e.attributes(), vec!["dst_port", "encrypted"]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::And(
            Box::new(Expr::Cmp(attr("dst_port"), CmpOp::Le, lit(443i64))),
            Box::new(Expr::Not(attr("anonymous"))),
        );
        assert_eq!(e.to_string(), "((dst_port <= 443) && !(anonymous))");
    }
}

//! Property tests for the policy language: parse/print round trips and
//! evaluator totality over the ontology.

use proptest::prelude::*;
use tussle_policy::{parse_expr, CmpOp, Expr, Ontology, Request, Value};

/// Generate random well-typed expressions over the network ontology.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..65536).prop_map(|n| Expr::Lit(Value::Int(n))),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        "[a-z]{1,8}".prop_map(|s| Expr::Lit(Value::Str(s))),
        prop_oneof![
            Just(Expr::Attr("dst_port".into())),
            Just(Expr::Attr("tos".into())),
            Just(Expr::Attr("bytes".into())),
        ],
        prop_oneof![Just(Expr::Attr("encrypted".into())), Just(Expr::Attr("anonymous".into())),],
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Ge),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Cmp(Box::new(a), op, Box::new(b))),
            (inner, proptest::collection::vec(0i64..100, 0..4)).prop_map(|(a, items)| {
                Expr::In(
                    Box::new(a),
                    Box::new(Expr::Lit(Value::List(items.into_iter().map(Value::Int).collect()))),
                )
            }),
        ]
    })
}

proptest! {
    /// print → parse is the identity on ASTs.
    #[test]
    fn parse_print_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed form failed to parse: {printed} ({err:?})"));
        prop_assert_eq!(reparsed, e);
    }

    /// The evaluator is total over well-formed requests: it returns a
    /// value or a *structured* error, never panics, and evaluation is
    /// deterministic.
    #[test]
    fn evaluator_is_total_and_deterministic(
        e in arb_expr(),
        port in 0i64..65536,
        tos in 0i64..256,
        bytes in 0i64..1_000_000,
        enc in any::<bool>(),
        anon in any::<bool>(),
    ) {
        let ont = Ontology::network();
        let req = Request::new()
            .with("dst_port", port)
            .with("tos", tos)
            .with("bytes", bytes)
            .with("encrypted", enc)
            .with("anonymous", anon);
        let first = e.eval(&req, &ont);
        let second = e.eval(&req, &ont);
        prop_assert_eq!(first, second);
    }

    /// Attributes outside the ontology are always rejected, regardless of
    /// the surrounding expression — the "bounded tussle" property. (The
    /// attribute is placed in the *left*, eagerly-evaluated position so
    /// short-circuiting cannot skip it.)
    #[test]
    fn out_of_ontology_attributes_rejected(name in "[a-z]{3,10}") {
        let ont = Ontology::network();
        prop_assume!(ont.type_of(&name).is_err());
        let e = Expr::And(
            Box::new(Expr::Attr(name.clone())),
            Box::new(Expr::Lit(Value::Bool(true))),
        );
        let req = Request::new().with(name.as_str(), true);
        prop_assert!(e.eval(&req, &ont).is_err());
    }

    /// Parsing arbitrary junk never panics.
    #[test]
    fn parser_never_panics(src in "\\PC{0,60}") {
        let _ = parse_expr(&src);
    }
}

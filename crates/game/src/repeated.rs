//! Repeated play and the TCP-congestion compliance game.
//!
//! §II.B (system design perspectives): "TCP congestion control 'works' when
//! and only when the majority of end-systems both participate and follow a
//! common set of rules. This strategy places great weight on social
//! pressure to 'resolve' the tussle outside the scope of the technical
//! system. ... Should this balance change, the technical design of the
//! system will do nothing to bound or guide the resulting shift."
//!
//! [`CongestionGame`] makes that claim testable: a population of flows
//! chooses Comply (AIMD) or Defect (aggressive sending). Defectors grab
//! more bandwidth, total goodput degrades as defection spreads, and a
//! "social pressure" penalty stands in for standards pressure and shame.
//! Replicator dynamics then shows the tipping behaviour: compliance is
//! stable only while the pressure term outweighs the bandwidth grab.

use crate::evolution::Replicator;
use serde::{Deserialize, Serialize};

/// Strategies for iterated two-player games.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Always cooperate.
    AllCooperate,
    /// Always defect.
    AllDefect,
    /// Cooperate first, then mirror the opponent's last move.
    TitForTat,
    /// Cooperate until the opponent defects once, then defect forever.
    GrimTrigger,
}

impl Strategy {
    /// Decide this round given the opponent's history (true = cooperate).
    pub fn decide(&self, my_history: &[bool], their_history: &[bool]) -> bool {
        let _ = my_history;
        match self {
            Strategy::AllCooperate => true,
            Strategy::AllDefect => false,
            Strategy::TitForTat => their_history.last().copied().unwrap_or(true),
            Strategy::GrimTrigger => their_history.iter().all(|c| *c),
        }
    }
}

/// An iterated 2-player prisoner's-dilemma-style game.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedGame {
    /// Temptation payoff (defect against cooperator).
    pub t: f64,
    /// Reward payoff (mutual cooperation).
    pub r: f64,
    /// Punishment payoff (mutual defection).
    pub p: f64,
    /// Sucker payoff (cooperate against defector).
    pub s: f64,
}

impl RepeatedGame {
    /// The standard PD payoffs (5, 3, 1, 0).
    pub fn standard() -> Self {
        RepeatedGame { t: 5.0, r: 3.0, p: 1.0, s: 0.0 }
    }

    /// Play `rounds` rounds; returns cumulative `(a_score, b_score)`.
    pub fn play(&self, a: Strategy, b: Strategy, rounds: usize) -> (f64, f64) {
        let mut ha = Vec::with_capacity(rounds);
        let mut hb = Vec::with_capacity(rounds);
        let mut sa = 0.0;
        let mut sb = 0.0;
        for _ in 0..rounds {
            let ca = a.decide(&ha, &hb);
            let cb = b.decide(&hb, &ha);
            let (pa, pb) = match (ca, cb) {
                (true, true) => (self.r, self.r),
                (true, false) => (self.s, self.t),
                (false, true) => (self.t, self.s),
                (false, false) => (self.p, self.p),
            };
            sa += pa;
            sb += pb;
            ha.push(ca);
            hb.push(cb);
        }
        (sa, sb)
    }

    /// Round-robin tournament; returns total score per strategy.
    pub fn tournament(&self, strategies: &[Strategy], rounds: usize) -> Vec<f64> {
        let n = strategies.len();
        let mut scores = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (si, sj) = self.play(strategies[i], strategies[j], rounds);
                scores[i] += si;
                scores[j] += sj;
            }
        }
        scores
    }
}

/// The population-level congestion compliance game.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CongestionGame {
    /// Bandwidth multiplier an aggressive flow grabs relative to a
    /// compliant one sharing the same bottleneck.
    pub defector_gain: f64,
    /// How hard total goodput collapses as the defector share grows
    /// (0 = no collapse, 1 = full collapse at 100% defection).
    pub collapse_severity: f64,
    /// Payoff penalty applied to defectors from outside the technical
    /// system: standards pressure, vendor defaults, shame (§II.B).
    pub social_pressure: f64,
}

impl CongestionGame {
    /// Goodput available per flow when a fraction `d` of flows defect.
    fn capacity_factor(&self, d: f64) -> f64 {
        1.0 - self.collapse_severity * d
    }

    /// Payoff to a compliant flow when a fraction `d` of flows defect.
    pub fn comply_payoff(&self, d: f64) -> f64 {
        let cap = self.capacity_factor(d);
        // compliant flows split what the aggressive flows leave behind
        cap / (1.0 + d * (self.defector_gain - 1.0))
    }

    /// Payoff to a defecting flow when a fraction `d` of flows defect.
    pub fn defect_payoff(&self, d: f64) -> f64 {
        let cap = self.capacity_factor(d);
        cap * self.defector_gain / (1.0 + d * (self.defector_gain - 1.0)) - self.social_pressure
    }

    /// Build the 2-strategy population payoff matrix (0 = comply,
    /// 1 = defect) linearized at defector shares 0 and 1 so replicator
    /// dynamics can run on it.
    pub fn payoff_matrix(&self) -> Vec<Vec<f64>> {
        // payoff[i][j]: strategy i against a population of pure j
        vec![
            vec![self.comply_payoff(0.0), self.comply_payoff(1.0)],
            vec![self.defect_payoff(0.0), self.defect_payoff(1.0)],
        ]
    }

    /// Evolve a population starting at `initial_defectors` and return the
    /// final defector share.
    pub fn evolve(&self, initial_defectors: f64, steps: usize) -> f64 {
        let mut rep =
            Replicator::new(self.payoff_matrix(), vec![1.0 - initial_defectors, initial_defectors]);
        rep.run(0.2, 1e-10, steps);
        rep.shares[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tit_for_tat_cooperates_with_itself() {
        let g = RepeatedGame::standard();
        let (a, b) = g.play(Strategy::TitForTat, Strategy::TitForTat, 100);
        assert_eq!(a, 300.0);
        assert_eq!(b, 300.0);
    }

    #[test]
    fn all_defect_exploits_all_cooperate() {
        let g = RepeatedGame::standard();
        let (c, d) = g.play(Strategy::AllCooperate, Strategy::AllDefect, 10);
        assert_eq!(c, 0.0);
        assert_eq!(d, 50.0);
    }

    #[test]
    fn tit_for_tat_punishes_after_first_round() {
        let g = RepeatedGame::standard();
        let (tft, ad) = g.play(Strategy::TitForTat, Strategy::AllDefect, 10);
        // round 1: tft cooperates (0 vs 5); after: mutual defection (1,1)
        assert_eq!(tft, 9.0);
        assert_eq!(ad, 14.0);
    }

    #[test]
    fn grim_trigger_never_forgives() {
        let g = RepeatedGame::standard();
        // TFT cooperates as long as grim does, so they stay friends
        let (grim, tft) = g.play(Strategy::GrimTrigger, Strategy::TitForTat, 50);
        assert_eq!(grim, 150.0);
        assert_eq!(tft, 150.0);
    }

    #[test]
    fn tournament_favors_reciprocators_among_mixed_field() {
        let g = RepeatedGame::standard();
        // Axelrod's condition: reciprocators must be common enough to meet
        // each other, else the exploiter of the lone AllCooperate wins.
        let field = [
            Strategy::AllCooperate,
            Strategy::AllDefect,
            Strategy::TitForTat,
            Strategy::TitForTat,
            Strategy::GrimTrigger,
        ];
        let scores = g.tournament(&field, 200);
        let tft = scores[2];
        let alld = scores[1];
        assert!(tft > alld, "TFT {tft} should beat AllD {alld} in a mixed field");
    }

    #[test]
    fn compliance_holds_under_strong_social_pressure() {
        // The pre-2002 Internet: defecting stacks exist but pressure wins.
        let g = CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: 1.5 };
        let d = g.evolve(0.1, 50_000);
        assert!(d < 0.01, "defection should die out, got {d}");
    }

    #[test]
    fn compliance_collapses_when_pressure_fades() {
        // "Should this balance change, the technical design ... will do
        // nothing to bound or guide the resulting shift."
        let g =
            CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: 0.05 };
        let d = g.evolve(0.1, 50_000);
        assert!(d > 0.9, "defection should take over, got {d}");
    }

    #[test]
    fn defectors_always_beat_compliers_pointwise_without_pressure() {
        let g = CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: 0.0 };
        for d10 in 0..=10 {
            let d = d10 as f64 / 10.0;
            assert!(
                g.defect_payoff(d) > g.comply_payoff(d) - 1e-12,
                "at d={d} defect must pay at least comply"
            );
        }
    }

    #[test]
    fn everyone_worse_off_at_full_defection() {
        // the tragedy: universal defection yields less than universal
        // compliance
        let g = CongestionGame { defector_gain: 2.0, collapse_severity: 0.6, social_pressure: 0.0 };
        assert!(g.defect_payoff(1.0) < g.comply_payoff(0.0));
    }
}

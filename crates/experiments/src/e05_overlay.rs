//! E5 — Overlays as a tussle tool (§V.A.4).
//!
//! Paper claim: "researchers propose even more indirect ways of getting
//! around provider-selected routing, such as exploiting hosts as
//! intermediate forwarding agents. (This kind of overlay network is a tool
//! in the tussle, certainly.)" — and the flip side raised for evaluation:
//! "whether economic distortion is greater in one or the other", since the
//! relay's providers carry transit they never sold.
//!
//! Measured: reachability under link failure and under policy blocking,
//! with and without a RON-style overlay, plus the uncompensated transit
//! hops the overlay pushes through the relay's access network.

use tussle_core::{ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::firewall::{Firewall, FirewallAction, FirewallRule, MatchOn};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Network, NodeId};
use tussle_routing::overlay::{Overlay, OverlayDelivery};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// What stresses the direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stress {
    /// Nothing: the healthy baseline.
    None,
    /// The direct inter-AS link fails.
    LinkFailure,
    /// The destination's provider blocklists the source prefix.
    PolicyBlock,
}

impl Stress {
    fn label(self) -> &'static str {
        match self {
            Stress::None => "healthy",
            Stress::LinkFailure => "link failure",
            Stress::PolicyBlock => "policy block",
        }
    }
}

/// Outcome of one condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayOutcome {
    /// Delivery rate without the overlay.
    pub direct_rate: f64,
    /// Delivery rate with the overlay.
    pub overlay_rate: f64,
    /// Mean router hops consumed per delivered overlay packet (resource
    /// footprint).
    pub overlay_hops: f64,
    /// Hops carried by the relay's AS with no business relationship to the
    /// sender — the economic-distortion count.
    pub uncompensated_hops: u64,
}

struct World {
    net: Network,
    src: NodeId,
    overlay: Overlay,
    pkt: Packet,
    relay_as_nodes: Vec<NodeId>,
    direct_link: usize,
    dst_router: NodeId,
}

fn world() -> World {
    let mut net = Network::new();
    let src = net.add_host(Asn(1));
    let ra = net.add_router(Asn(1));
    let rb = net.add_router(Asn(2)); // destination's provider
    let dst = net.add_host(Asn(2));
    let rc = net.add_router(Asn(3)); // relay's provider
    let relay = net.add_host(Asn(3));
    net.connect(src, ra, SimTime::from_millis(2), 1_000_000_000);
    let direct = net.connect(ra, rb, SimTime::from_millis(10), 1_000_000_000);
    net.connect(rb, dst, SimTime::from_millis(2), 1_000_000_000);
    net.connect(ra, rc, SimTime::from_millis(10), 1_000_000_000);
    net.connect(rc, relay, SimTime::from_millis(2), 1_000_000_000);
    net.connect(rc, rb, SimTime::from_millis(10), 1_000_000_000);

    let src_addr =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let dst_addr =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    let relay_addr =
        Address::in_prefix(Prefix::new(0x0c010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(3)));
    net.node_mut(src).bind(src_addr);
    net.node_mut(dst).bind(dst_addr);
    net.node_mut(relay).bind(relay_addr);

    let dp = Prefix::new(0x0b010000, 16);
    let rp = Prefix::new(0x0c010000, 16);
    net.fib_mut(src).install(Prefix::DEFAULT, ra, 0);
    net.fib_mut(ra).install(dp, rb, 0);
    net.fib_mut(ra).install(rp, rc, 0);
    net.fib_mut(rb).install(dp, dst, 0);
    net.fib_mut(rc).install(rp, relay, 0);
    net.fib_mut(rc).install(dp, rb, 0);
    net.fib_mut(relay).install(Prefix::DEFAULT, rc, 0);
    // BGP policy: ra does NOT route to dst via rc (valley-free would forbid
    // transiting the relay's stub AS)... but rc itself can reach rb.

    let overlay = Overlay::new(vec![(relay, relay_addr)]);
    let pkt = Packet::new(src_addr, dst_addr, Protocol::Tcp, 1, ports::HTTP);
    World {
        net,
        src,
        overlay,
        pkt,
        relay_as_nodes: vec![rc, relay],
        direct_link: direct.index(),
        dst_router: rb,
    }
}

/// Build a condition's world with its stress applied.
fn stressed_world(stress: Stress) -> World {
    let mut w = world();
    match stress {
        Stress::None => {}
        Stress::LinkFailure => {
            let id = w.net.links()[w.direct_link].id;
            w.net.link_mut(id).up = false;
        }
        Stress::PolicyBlock => {
            let mut fw = Firewall::transparent();
            fw.push(FirewallRule {
                matcher: MatchOn::SrcInPrefix(Prefix::new(0x0a010000, 16)),
                action: FirewallAction::Deny,
                installed_by: "AS2 policy".into(),
            });
            w.net.set_firewall(w.dst_router, fw);
        }
    }
    w
}

/// One condition's probe tallies, threaded through its event chain.
struct Tally {
    w: World,
    sent: usize,
    direct_ok: usize,
    overlay_ok: usize,
    overlay_hops_total: usize,
    uncompensated: u64,
}

impl Tally {
    fn new(w: World) -> Self {
        Tally { w, sent: 0, direct_ok: 0, overlay_ok: 0, overlay_hops_total: 0, uncompensated: 0 }
    }
}

/// Send `n` direct+overlay probe pairs, mutating the tallies.
fn probe_batch(t: &mut Tally, n: usize, rng: &mut SimRng) {
    for _ in 0..n {
        // direct attempt
        if t.w.net.send(t.w.src, t.w.pkt.clone(), rng).delivered {
            t.direct_ok += 1;
        }
        // overlay attempt
        let d = t.w.overlay.send(&mut t.w.net, t.w.src, t.w.pkt.clone(), rng);
        if d.delivered() {
            t.overlay_ok += 1;
            t.overlay_hops_total += d.hops();
            if let OverlayDelivery::Relayed { first_leg, second_leg, .. } = &d {
                for leg in [first_leg, second_leg] {
                    t.uncompensated +=
                        leg.path.iter().filter(|nid| t.w.relay_as_nodes.contains(nid)).count()
                            as u64;
                }
            }
        }
    }
    t.sent += n;
}

fn outcome_of(t: &Tally) -> OverlayOutcome {
    OverlayOutcome {
        direct_rate: t.direct_ok as f64 / t.sent as f64,
        overlay_rate: t.overlay_ok as f64 / t.sent as f64,
        overlay_hops: if t.overlay_ok > 0 {
            t.overlay_hops_total as f64 / t.overlay_ok as f64
        } else {
            0.0
        },
        uncompensated_hops: t.uncompensated,
    }
}

/// Run one stress condition over `n` packets (the pure loop the unit tests
/// drive; [`run`] replays it as paced engine-event bursts).
pub fn run_condition(stress: Stress, n: usize, seed: u64) -> OverlayOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e05");
    let mut t = Tally::new(stressed_world(stress));
    probe_batch(&mut t, n, &mut rng);
    outcome_of(&t)
}

/// World for the engine-driven replay: settled outcomes per condition.
#[derive(Default)]
struct StressWorld {
    outcomes: Vec<(Stress, OverlayOutcome)>,
}

/// Probe pairs per burst event in the engine replay.
const BURST: usize = 20;
/// Total probe pairs per condition.
const N_PROBES: usize = 100;

/// One paced probe burst as an engine event, chaining to the next burst.
fn run_burst(w: &mut StressWorld, ctx: &mut Ctx<StressWorld>, stress: Stress, mut t: Tally) {
    ctx.span_enter(
        "e5.burst",
        Some("user"),
        &[("stress", stress.label()), ("sent", &t.sent.to_string())],
    );
    let n = BURST.min(N_PROBES - t.sent);
    probe_batch(&mut t, n, ctx.rng);
    if t.sent < N_PROBES {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e5.pacing",
            Some("user"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} probes sent; next burst follows", t.sent),
        );
        ctx.span_exit(&[("overlay_ok", &t.overlay_ok.to_string())]);
        ctx.schedule_in(lag, move |w2: &mut StressWorld, ctx2| {
            run_burst(w2, ctx2, stress, t);
        });
    } else {
        let o = outcome_of(&t);
        ctx.trace_fields(
            "e5.settled",
            Some("isp"),
            &[("uncompensated_hops", &o.uncompensated_hops.to_string())],
            format!("{} condition settles", stress.label()),
        );
        ctx.span_exit(&[("overlay_ok", &t.overlay_ok.to_string())]);
        w.outcomes.push((stress, o));
    }
}

/// Run E5 and produce the report. Each condition's probes run as a causal
/// chain of burst events on the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let conditions = [Stress::None, Stress::LinkFailure, Stress::PolicyBlock];
    let mut eng = Engine::new(StressWorld::default(), seed);
    for (i, stress) in conditions.into_iter().enumerate() {
        // Each stress condition is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut StressWorld, ctx| {
            ctx.span_enter("e5.stress", Some("provider"), &[("stress", stress.label())]);
            let t = Tally::new(stressed_world(stress));
            ctx.span_exit(&[]);
            run_burst(w, ctx, stress, t);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Overlay resilience and its economic footprint (100 flows per condition)",
        &["direct delivery", "overlay delivery", "mean hops", "uncompensated relay-AS hops"],
    );
    let mut outcomes = Vec::new();
    for s in conditions {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, o)| o.clone())
            .expect("every condition settles");
        table.push_row(
            s.label(),
            &[
                format!("{:.2}", o.direct_rate),
                format!("{:.2}", o.overlay_rate),
                format!("{:.1}", o.overlay_hops),
                o.uncompensated_hops.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let (healthy, fail, block) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    let shape_holds = healthy.direct_rate > 0.99
        && healthy.uncompensated_hops == 0
        && fail.direct_rate < 0.01
        && fail.overlay_rate > 0.99
        && block.direct_rate < 0.01
        && block.overlay_rate > 0.99
        && fail.uncompensated_hops > 0
        && fail.overlay_hops > healthy.overlay_hops;

    ExperimentReport {
        id: "E5".into(),
        section: "V.A.4".into(),
        paper_claim: "Host-relay overlays recover reachability that provider routing or policy \
                      denies — at the cost of transit the relay's providers never agreed to \
                      carry (economic distortion)."
            .into(),
        summary: format!(
            "under link failure the overlay restores delivery from {:.0}% to {:.0}% while \
             pushing {} uncompensated hops through the relay's AS; under policy blocking \
             likewise ({:.0}% → {:.0}%).",
            fail.direct_rate * 100.0,
            fail.overlay_rate * 100.0,
            fail.uncompensated_hops,
            block.direct_rate * 100.0,
            block.overlay_rate * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_network_needs_no_overlay() {
        let o = run_condition(Stress::None, 20, 1);
        assert!(o.direct_rate > 0.99);
        assert_eq!(o.uncompensated_hops, 0);
    }

    #[test]
    fn overlay_survives_link_failure() {
        let o = run_condition(Stress::LinkFailure, 20, 1);
        assert!(o.direct_rate < 0.01);
        assert!(o.overlay_rate > 0.99);
        assert!(o.uncompensated_hops > 0);
    }

    #[test]
    fn overlay_evades_policy_blocks() {
        let o = run_condition(Stress::PolicyBlock, 20, 1);
        assert!(o.direct_rate < 0.01);
        assert!(o.overlay_rate > 0.99);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

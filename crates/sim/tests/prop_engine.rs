//! Property tests for the discrete-event engine and its facilities.

use proptest::prelude::*;
use tussle_sim::{Engine, Histogram, SimRng, SimTime};

proptest! {
    /// Whatever order events are scheduled in, they execute in
    /// nondecreasing time order, with ties broken by scheduling order.
    #[test]
    fn events_execute_in_total_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new(Vec::new(), 1);
        for (idx, t) in times.iter().enumerate() {
            let t = *t;
            eng.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<(u64, usize)>, _| {
                w.push((t, idx));
            });
        }
        eng.run_to_completion();
        prop_assert_eq!(eng.world.len(), times.len());
        for pair in eng.world.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie-break order violated");
            }
        }
    }

    /// The engine clock never runs backwards, even with cascading events.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0u64..1_000, 1..50)) {
        let mut eng: Engine<Vec<u64>> = Engine::new(Vec::new(), 1);
        for d in delays {
            eng.schedule_at(SimTime::from_micros(d), move |w: &mut Vec<u64>, ctx| {
                w.push(ctx.now().as_micros());
                ctx.schedule_in(SimTime::from_micros(d / 2 + 1), move |w2: &mut Vec<u64>, ctx2| {
                    w2.push(ctx2.now().as_micros());
                });
            });
        }
        eng.run_to_completion();
        for pair in eng.world.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    /// Identical seeds give identical streams; a different seed diverges
    /// within a few draws almost surely.
    #[test]
    fn rng_determinism(seed in 0u64..u64::MAX) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.range(0..u64::MAX), b.range(0..u64::MAX));
        }
    }

    /// Histogram invariants: count equals samples recorded, mean within
    /// [min, max], quantiles monotone.
    #[test]
    fn histogram_invariants(samples in proptest::collection::vec(0.0f64..1e12, 1..500)) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mean = h.mean().unwrap();
        prop_assert!(mean >= h.min().unwrap() - 1e-6);
        prop_assert!(mean <= h.max().unwrap() + 1e-6);
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q99);
    }

    /// Forked streams with distinct labels are decorrelated; same label,
    /// same stream.
    #[test]
    fn fork_label_semantics(seed in 0u64..u64::MAX, label in "[a-z]{1,12}") {
        let parent = SimRng::seed_from_u64(seed);
        let mut a = parent.fork(&label);
        let mut b = parent.fork(&label);
        prop_assert_eq!(a.range(0..u64::MAX), b.range(0..u64::MAX));
    }
}

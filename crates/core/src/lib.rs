//! # tussle-core — the paper's design principles as a library
//!
//! Everything in the other crates is substrate; this crate is the paper's
//! actual contribution, made executable:
//!
//! * [`stakeholder`] — the §I cast of characters (users, commercial ISPs,
//!   private networks, governments, rights holders, content providers) and
//!   their interests, with the conflict structure that defines tussle.
//! * [`space`] — tussle spaces (§V: economics, trust, openness) and their
//!   boundaries.
//! * [`mechanism`] — the catalog of technical mechanisms the paper names
//!   as tussle moves, with the counter-relation between them (tunnel
//!   counters value pricing; detection counters tunnels; ...).
//! * [`escalation`] — move/counter-move ladders played to quiescence:
//!   "different parties adapt a mix of mechanisms to try to achieve their
//!   conflicting goals, and others respond by adapting the mechanisms to
//!   push back" (§I).
//! * [`principles`] — the design principles as *analyzers*: the choice
//!   index (design for choice, §IV.B), the visibility index (§IV.C), the
//!   tussle-isolation/spillover measure (modularize along tussle
//!   boundaries, §IV.A), and value-flow completeness (§IV.C).
//! * [`report`] — experiment tables: paper prediction vs. measured value,
//!   rendered as markdown and JSON for `EXPERIMENTS.md`.
//! * [`scoreboard`] — the per-stakeholder tussle scoreboard: who spent a
//!   run's virtual time and who won, folded per run and merged across
//!   campaigns (digest-excluded, like wall time).
//!
//! ## Example
//!
//! ```
//! use tussle_core::{EscalationLadder, Mechanism};
//!
//! // §VI.A: port-keyed QoS invites encryption, blocking, steganography
//! let ladder = EscalationLadder::play_to_the_end(Mechanism::QosPortBased, 10);
//! assert_eq!(ladder.final_mechanism(), Mechanism::Steganography);
//! // §IV.A: the well-modularized design gives opponents nothing to counter
//! assert!(Mechanism::QosTosBits.is_terminal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod escalation;
pub mod guidelines;
pub mod mechanism;
pub mod principles;
pub mod report;
pub mod scoreboard;
pub mod space;
pub mod stakeholder;

pub use escalation::{EscalationLadder, LadderStep};
pub use guidelines::{AppDesign, Violation};
pub use mechanism::Mechanism;
pub use principles::{choice_index, spillover, value_flow_completeness, visibility_index};
pub use report::{
    CellStats, ChaosReport, ExperimentReport, ExperimentSweep, FirstFailure, IntensityStats,
    MarginStats, RecoveryCell, RecoveryReport, Row, RunCost, SweepReport, Table,
};
pub use scoreboard::Scoreboard;
pub use space::{TussleSpace, TussleSpaceKind};
pub use stakeholder::{Interest, Stakeholder, StakeholderKind};

//! Virtual time.
//!
//! All simulation time is expressed as microseconds since the start of the
//! run. A newtype keeps the unit from being confused with counters or
//! identifiers, and gives us saturating arithmetic so scenario code can't
//! accidentally wrap the clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// A point in virtual time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime addition overflowed"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_micros(), 8_000);
        assert_eq!((a - b).as_micros(), 2_000);
        // subtraction saturates rather than wrapping
        assert_eq!((b - a).as_micros(), 0);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(4);
        assert_eq!(late.since(early), SimTime::from_secs(3));
        assert_eq!(early.since(late), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_millis(2_500).to_string(), "2.500s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime::from_secs(1)), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn checked_add_panics_on_overflow() {
        let _ = SimTime::MAX + SimTime::from_micros(1);
    }
}

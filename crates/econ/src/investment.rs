//! The fear-and-greed investment rule.
//!
//! §V.A: "A standard business saying is that the drivers of investment are
//! fear and greed." §VII applies it to the QoS post-mortem: deployment
//! failed because there was no value-transfer mechanism (no greed) and no
//! consumer routing choice (no fear). [`InvestmentCase::evaluate`] encodes
//! exactly that conjunction; experiment E10 sweeps the 2×2.

use crate::money::Money;
use serde::{Deserialize, Serialize};

/// A capital decision a provider faces (deploying QoS, multicast, fiber).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvestmentCase {
    /// Upfront cost of deploying.
    pub cost: Money,
    /// Revenue the provider could capture over the horizon *if customers
    /// can pay for the new service* — the greed term.
    pub greed_revenue: Money,
    /// Revenue lost to competitors over the horizon *if customers can take
    /// their business elsewhere* and the provider does not deploy — the
    /// fear term.
    pub fear_loss: Money,
    /// Does a value-transfer mechanism exist (can the provider actually be
    /// paid for the service)? Without it the greed term is zero: "a failure
    /// first to design any value-transfer mechanism" (§VII).
    pub value_transfer_exists: bool,
    /// Can the consumer choose/route around this provider? Without it the
    /// fear term is zero: "a failure to couple the design to a mechanism
    /// whereby the user can exercise choice" (§VII).
    pub consumer_can_choose: bool,
}

/// The outcome of evaluating an investment case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvestmentDecision {
    /// Deploy, with the expected net gain.
    Invest {
        /// Expected benefit minus cost, in money.
        expected_net: Money,
    },
    /// Decline, with the shortfall.
    Decline {
        /// Cost minus expected benefit, in money.
        shortfall: Money,
    },
}

impl InvestmentCase {
    /// Apply the fear-and-greed rule.
    pub fn evaluate(&self) -> InvestmentDecision {
        let greed = if self.value_transfer_exists { self.greed_revenue } else { Money::ZERO };
        let fear = if self.consumer_can_choose { self.fear_loss } else { Money::ZERO };
        let benefit = greed + fear;
        if benefit > self.cost {
            InvestmentDecision::Invest { expected_net: benefit - self.cost }
        } else {
            InvestmentDecision::Decline { shortfall: self.cost - benefit }
        }
    }

    /// Convenience: did the provider deploy?
    pub fn deploys(&self) -> bool {
        matches!(self.evaluate(), InvestmentDecision::Invest { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(value_transfer: bool, choice: bool) -> InvestmentCase {
        InvestmentCase {
            cost: Money::from_dollars(100),
            greed_revenue: Money::from_dollars(70),
            fear_loss: Money::from_dollars(70),
            value_transfer_exists: value_transfer,
            consumer_can_choose: choice,
        }
    }

    #[test]
    fn qos_post_mortem_2x2() {
        // The §VII shape: only the (+,+) cell deploys when neither driver
        // alone covers the cost.
        assert!(!case(false, false).deploys(), "no greed, no fear");
        assert!(!case(true, false).deploys(), "greed alone insufficient");
        assert!(!case(false, true).deploys(), "fear alone insufficient");
        assert!(case(true, true).deploys(), "fear + greed deploys");
    }

    #[test]
    fn decision_amounts() {
        match case(true, true).evaluate() {
            InvestmentDecision::Invest { expected_net } => {
                assert_eq!(expected_net, Money::from_dollars(40));
            }
            other => panic!("expected invest, got {other:?}"),
        }
        match case(true, false).evaluate() {
            InvestmentDecision::Decline { shortfall } => {
                assert_eq!(shortfall, Money::from_dollars(30));
            }
            other => panic!("expected decline, got {other:?}"),
        }
    }

    #[test]
    fn a_big_enough_single_driver_suffices() {
        let mut c = case(true, false);
        c.greed_revenue = Money::from_dollars(150);
        assert!(c.deploys(), "monopoly-scale greed can deploy alone (closed QoS, §VII)");
    }

    #[test]
    fn break_even_declines() {
        let mut c = case(true, true);
        c.greed_revenue = Money::from_dollars(50);
        c.fear_loss = Money::from_dollars(50);
        // benefit == cost: not strictly better, decline
        assert!(!c.deploys());
    }
}

//! E1 — Provider lock-in from IP addressing (§V.A.1).
//!
//! Paper claim: "Either a customer is locked into his provider by the
//! provider-based addresses, or he obtains a separate block of addresses
//! that is not topologically significant and therefore adds to the size of
//! the forwarding tables in the core of the network. Mechanisms that favor
//! the consumer in this tussle include dynamic host numbering (DHCP) and
//! dynamic update of DNS entries."
//!
//! Measured: a duopoly access market where the switching cost is set by
//! the addressing mode (provider-assigned = painful manual renumbering;
//! PA + DHCP/dynamic-DNS = cheap renumbering; provider-independent = no
//! renumbering at all), and a core-router FIB whose size depends on
//! whether customer blocks aggregate.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::{Consumer, Market, Money, Provider};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::Network;
use tussle_sim::{Ctx, Engine, SimTime};

/// The three addressing modes of the §V.A.1 tussle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressingMode {
    /// Provider-assigned, static configuration: switching means manual
    /// renumbering of every host, DNS entry and firewall rule.
    ProviderAssignedStatic,
    /// Provider-assigned with DHCP + dynamic DNS: renumbering is cheap.
    ProviderAssignedDynamic,
    /// Provider-independent: portable addresses, zero renumbering, but
    /// one core route per customer.
    ProviderIndependent,
}

impl AddressingMode {
    fn label(self) -> &'static str {
        match self {
            AddressingMode::ProviderAssignedStatic => "PA-static",
            AddressingMode::ProviderAssignedDynamic => "PA+DHCP+dynDNS",
            AddressingMode::ProviderIndependent => "PI",
        }
    }

    /// The one-time switching cost the mode implies.
    fn switching_cost(self) -> Money {
        match self {
            AddressingMode::ProviderAssignedStatic => Money::from_dollars(600),
            AddressingMode::ProviderAssignedDynamic => Money::from_dollars(40),
            AddressingMode::ProviderIndependent => Money::from_dollars(5),
        }
    }
}

/// Results for one addressing mode.
#[derive(Debug, Clone, PartialEq)]
pub struct LockinOutcome {
    /// Equilibrium markup over marginal cost.
    pub markup: f64,
    /// Equilibrium average headline price.
    pub avg_price: Money,
    /// Core FIB entries needed to route to all customers.
    pub core_fib_entries: usize,
}

/// Run one addressing mode: a duopoly over `n_consumers`, plus the core
/// routing table the mode implies.
pub fn run_mode(mode: AddressingMode, n_consumers: u64, months: usize) -> LockinOutcome {
    // --- market side -----------------------------------------------------
    let consumers: Vec<Consumer> = (0..n_consumers)
        .map(|id| Consumer {
            id,
            value: Money::from_dollars(100),
            usage_mb: 1000,
            runs_server: false,
            tunnels: false,
            switching_cost: mode.switching_cost(),
            provider: None,
        })
        .collect();
    let providers = vec![
        Provider::flat("isp-a", Money::from_dollars(60), Money::from_dollars(20)),
        Provider::flat("isp-b", Money::from_dollars(60), Money::from_dollars(20)),
    ];
    let mut market = Market::new(consumers, providers);
    let report = market.run(months);

    // --- routing side -----------------------------------------------------
    let core_fib_entries = core_fib_for(mode, n_consumers as usize);

    LockinOutcome { markup: report.avg_markup, avg_price: report.avg_headline, core_fib_entries }
}

/// Build the core topology for a mode and count the core router's FIB.
fn core_fib_for(mode: AddressingMode, n_customers: usize) -> usize {
    let mut net = Network::new();
    let core = net.add_router(Asn(0));
    let isp_a = net.add_router(Asn(1));
    let isp_b = net.add_router(Asn(2));
    net.connect(core, isp_a, SimTime::from_millis(5), 1_000_000_000);
    net.connect(core, isp_b, SimTime::from_millis(5), 1_000_000_000);

    let agg_a = Prefix::new(0x0a00_0000, 8);
    let agg_b = Prefix::new(0x0b00_0000, 8);

    match mode {
        AddressingMode::ProviderAssignedStatic | AddressingMode::ProviderAssignedDynamic => {
            // customers live inside their provider's aggregate: the core
            // needs exactly one route per provider.
            for (i, _) in (0..n_customers).enumerate() {
                let (asn, agg, via) =
                    if i % 2 == 0 { (Asn(1), agg_a, isp_a) } else { (Asn(2), agg_b, isp_b) };
                let block = agg.subprefix(24, i as u32);
                let host = net.add_host(asn);
                let addr = Address::in_prefix(block, 1, AddressOrigin::ProviderAssigned(asn));
                net.node_mut(host).bind(addr);
                let _ = via;
            }
            net.fib_mut(core).install(agg_a, isp_a, 0);
            net.fib_mut(core).install(agg_b, isp_b, 0);
        }
        AddressingMode::ProviderIndependent => {
            // every customer brings their own block: the core carries one
            // route per customer.
            for i in 0..n_customers {
                let asn = if i % 2 == 0 { Asn(1) } else { Asn(2) };
                let via = if i % 2 == 0 { isp_a } else { isp_b };
                let block = Prefix::new(0xc000_0000 | ((i as u32) << 8), 24);
                let host = net.add_host(asn);
                let addr = Address::in_prefix(block, 1, AddressOrigin::ProviderIndependent);
                net.node_mut(host).bind(addr);
                net.fib_mut(core).install(block, via, 0);
            }
        }
    }
    net.fib(core).len()
}

/// World for the engine-driven replay: settled outcomes per mode.
#[derive(Default)]
struct LockinWorld {
    outcomes: Vec<(AddressingMode, LockinOutcome)>,
}

/// One addressing mode as a two-event causal chain: the market settles
/// first, then — after a seeded renumbering/roll-out lag — the core
/// routing table the mode implies is installed. The lag is the run's
/// seed-dependent texture (what `diff` bisects); the chain is what
/// `explain` walks.
fn deploy_mode(_w: &mut LockinWorld, ctx: &mut Ctx<LockinWorld>, mode: AddressingMode) {
    ctx.span_enter(
        "e1.market",
        Some("user"),
        &[("mode", mode.label()), ("switching_cost", &mode.switching_cost().to_string())],
    );
    let outcome = run_mode(mode, 30, 80);
    let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
    ctx.trace_fields(
        "e1.settled",
        Some("user"),
        &[("markup", &format!("{:.2}", outcome.markup)), ("lag_us", &lag.as_micros().to_string())],
        format!("{} market settles; core routes install next", mode.label()),
    );
    ctx.span_exit(&[("markup", &format!("{:.2}", outcome.markup))]);
    ctx.schedule_in(lag, move |w2: &mut LockinWorld, ctx2| {
        ctx2.span_enter("e1.routing", Some("isp"), &[("mode", mode.label())]);
        ctx2.span_exit(&[("core_fib_entries", &outcome.core_fib_entries.to_string())]);
        w2.outcomes.push((mode, outcome));
    });
}

/// Run E1 and produce the report. The market/FIB logic is pure; the engine
/// replay gives each mode a causal event structure on the shared clock.
pub fn run(seed: u64) -> ExperimentReport {
    let modes = [
        AddressingMode::ProviderAssignedStatic,
        AddressingMode::ProviderAssignedDynamic,
        AddressingMode::ProviderIndependent,
    ];
    let mut eng = Engine::new(LockinWorld::default(), seed);
    for (i, mode) in modes.into_iter().enumerate() {
        // Each addressing mode's market run is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut LockinWorld, ctx| {
            deploy_mode(w, ctx, mode);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Lock-in and routing cost by addressing mode (duopoly, 30 consumers)",
        &["switching cost", "markup", "avg price", "core FIB entries"],
    );
    let mut outcomes = Vec::new();
    for mode in modes {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, o)| o.clone())
            .expect("every mode's chain settles");
        table.push_row(
            mode.label(),
            &[
                mode.switching_cost().to_string(),
                format!("{:.2}", o.markup),
                o.avg_price.to_string(),
                o.core_fib_entries.to_string(),
            ],
        );
        outcomes.push((mode, o));
    }

    let pa = &outcomes[0].1;
    let dhcp = &outcomes[1].1;
    let pi = &outcomes[2].1;
    // The paper's shape: static PA sustains the highest markup; both
    // consumer-favouring mechanisms discipline price; PI pays for it in
    // core routing state.
    let shape_holds = pa.markup > dhcp.markup
        && pa.markup > pi.markup
        && pi.core_fib_entries > 10 * pa.core_fib_entries;

    ExperimentReport {
        id: "E1".into(),
        section: "V.A.1".into(),
        paper_claim: "Provider-based addresses lock customers in (sustaining a price markup); \
                      DHCP/dynamic-DNS or provider-independent addresses restore competition, \
                      but PI blocks inflate core forwarding tables."
            .into(),
        summary: format!(
            "markup: PA-static {:.2} vs PA+DHCP {:.2} vs PI {:.2}; core FIB: {} vs {} vs {} entries.",
            pa.markup, dhcp.markup, pi.markup,
            pa.core_fib_entries, dhcp.core_fib_entries, pi.core_fib_entries
        ),
        table,
        shape_holds,
        cost: None,
            scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockin_raises_markup() {
        let locked = run_mode(AddressingMode::ProviderAssignedStatic, 20, 60);
        let free = run_mode(AddressingMode::ProviderAssignedDynamic, 20, 60);
        assert!(locked.markup > free.markup, "locked {} vs free {}", locked.markup, free.markup);
    }

    #[test]
    fn pi_blocks_blow_up_the_core_fib() {
        let pa = run_mode(AddressingMode::ProviderAssignedStatic, 40, 1);
        let pi = run_mode(AddressingMode::ProviderIndependent, 40, 1);
        assert_eq!(pa.core_fib_entries, 2, "one aggregate per provider");
        assert_eq!(pi.core_fib_entries, 40, "one route per customer");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 3);
    }
}

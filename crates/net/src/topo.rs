//! Deterministic ISP-style topology generation at scale.
//!
//! The tussle scenarios that motivate the forwarding fast path — E1 table
//! pressure, E4 source routing, E16 multicast — only bite at realistic
//! size, so this module grows a three-tier provider topology (core ring
//! with chords, multi-homed edge routers, hosts) to any node count from a
//! single seed. Everything is derived from [`tussle_sim::SimRng`] forks:
//! the same `(seed, nodes, degree)` triple builds the same network on
//! every platform, which is what lets benches and the equivalence oracle
//! compare runs across cache configurations.

use crate::addr::{Address, AddressOrigin, Asn, Prefix};
use crate::network::Network;
use crate::node::NodeId;
use tussle_sim::{SimRng, SimTime};

/// A generated three-tier topology plus the handles a workload needs.
#[derive(Debug)]
pub struct ScaleTopology {
    /// The wired, addressed, routed network.
    pub net: Network,
    /// Core (backbone ring) routers.
    pub core: Vec<NodeId>,
    /// Edge (aggregation) routers; edge `e` originates `/16` prefix
    /// `(e + 1) << 16`.
    pub edges: Vec<NodeId>,
    /// Hosts, round-robin across edges: host `j` homes on edge
    /// `j % edges.len()`.
    pub hosts: Vec<NodeId>,
    /// Address bound to each host, index-aligned with `hosts`.
    pub host_addrs: Vec<Address>,
}

impl ScaleTopology {
    /// The `/16` prefix originated by edge router `e`.
    pub fn edge_prefix(e: usize) -> Prefix {
        Prefix::new(((e as u32) + 1) << 16, 16)
    }
}

impl Network {
    /// Generate a deterministic ISP-style topology with roughly `nodes`
    /// nodes and core connectivity controlled by `degree`.
    ///
    /// Shape: a core ring (1 router per ~50 nodes, minimum 4) with
    /// `degree - 2` seeded chord links per core router; edge routers
    /// (1 per ~10 nodes) homed on the core, multi-homed up to `degree`;
    /// the remaining nodes are hosts spread round-robin across edges.
    /// Routing is static: hosts default to their edge, edges hold `/32`
    /// host routes plus a default to their home core router, and each core
    /// router routes every edge prefix around the ring toward that edge's
    /// home (shorter ring direction, direct hop at the home itself) — so
    /// FIB-routed traffic crosses the backbone without any protocol runs.
    ///
    /// All latencies and bandwidth tiers are drawn from forks of `seed`;
    /// the same arguments always produce a byte-identical network.
    ///
    /// # Panics
    /// If `nodes < 12` or `degree == 0`.
    pub fn scale_topology(seed: u64, nodes: usize, degree: usize) -> ScaleTopology {
        assert!(nodes >= 12, "scale topology needs at least 12 nodes");
        assert!(degree >= 1, "degree must be at least 1");
        let mut rng = SimRng::seed_from_u64(seed).fork("scale-topology");
        let n_core = (nodes / 50).clamp(4, 64);
        let n_edge = (nodes / 10).clamp(4, nodes - n_core - 1);
        let n_host = nodes - n_core - n_edge;

        let mut net = Network::new();
        let core: Vec<NodeId> = (0..n_core).map(|_| net.add_router(Asn(100))).collect();
        let edges: Vec<NodeId> = (0..n_edge).map(|e| net.add_router(Asn(200 + e as u32))).collect();
        let hosts: Vec<NodeId> =
            (0..n_host).map(|j| net.add_host(Asn(200 + (j % n_edge) as u32))).collect();

        // Backbone ring, then chords for path diversity. Chord targets are
        // rng-driven; the draw happens whether or not the chord lands, so
        // the stream stays aligned regardless of duplicates.
        for i in 0..n_core {
            let lat = SimTime::from_micros(rng.range(2_000..8_000u64));
            net.connect(core[i], core[(i + 1) % n_core], lat, 40_000_000_000);
        }
        for i in 0..n_core {
            for _ in 0..degree.saturating_sub(2) {
                let offset = rng.range(2..n_core as u32 - 1) as usize;
                let lat = SimTime::from_micros(rng.range(2_000..8_000u64));
                let j = (i + offset) % n_core;
                if net.link_between(core[i], core[j]).is_none() {
                    net.connect(core[i], core[j], lat, 40_000_000_000);
                }
            }
        }

        // Edge homing: a deterministic home core plus rng-chosen extra
        // uplinks up to `degree`.
        for (e, &edge) in edges.iter().enumerate() {
            let home = core[e % n_core];
            let lat = SimTime::from_micros(rng.range(500..2_000u64));
            net.connect(edge, home, lat, 10_000_000_000);
            for _ in 1..degree.min(n_core) {
                let alt = core[rng.range(0..n_core as u32) as usize];
                let lat = SimTime::from_micros(rng.range(500..2_000u64));
                if net.link_between(edge, alt).is_none() {
                    net.connect(edge, alt, lat, 10_000_000_000);
                }
            }
        }

        // Hosts: access links, provider-assigned addresses inside the edge
        // prefix, and a default route up.
        let mut host_addrs = Vec::with_capacity(n_host);
        for (j, &host) in hosts.iter().enumerate() {
            let e = j % n_edge;
            let edge = edges[e];
            let lat = SimTime::from_micros(rng.range(100..500u64));
            net.connect(host, edge, lat, 1_000_000_000);
            let addr = Address::in_prefix(
                ScaleTopology::edge_prefix(e),
                (j / n_edge) as u32 + 1,
                AddressOrigin::ProviderAssigned(Asn(200 + e as u32)),
            );
            net.node_mut(host).bind(addr);
            net.fib_mut(host).install(Prefix::DEFAULT, edge, 0);
            net.fib_mut(edge).install(Prefix::new(addr.value, 32), host, 0);
            host_addrs.push(addr);
        }

        // Edge defaults and core routes: each edge prefix rides the ring
        // toward its home core router.
        for (e, &edge) in edges.iter().enumerate() {
            net.fib_mut(edge).install(Prefix::DEFAULT, core[e % n_core], 0);
        }
        for (c, &router) in core.iter().enumerate() {
            for (e, &edge) in edges.iter().enumerate() {
                let home = e % n_core;
                let prefix = ScaleTopology::edge_prefix(e);
                let next = if c == home {
                    edge
                } else {
                    let clockwise = (home + n_core - c) % n_core;
                    if clockwise <= n_core / 2 {
                        core[(c + 1) % n_core]
                    } else {
                        core[(c + n_core - 1) % n_core]
                    }
                };
                net.fib_mut(router).install(prefix, next, 0);
            }
        }

        ScaleTopology { net, core, edges, hosts, host_addrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ports, Packet, Protocol};

    #[test]
    fn same_arguments_build_the_same_network() {
        let a = Network::scale_topology(11, 300, 3);
        let b = Network::scale_topology(11, 300, 3);
        assert_eq!(a.net.nodes().len(), b.net.nodes().len());
        assert_eq!(a.net.links().len(), b.net.links().len());
        assert_eq!(a.host_addrs, b.host_addrs);
        for (x, y) in a.net.links().iter().zip(b.net.links()) {
            assert_eq!(
                (x.a, x.b, x.latency, x.bandwidth_bps),
                (y.a, y.b, y.latency, y.bandwidth_bps)
            );
        }
        let c = Network::scale_topology(12, 300, 3);
        let diff =
            a.net.links().iter().zip(c.net.links()).filter(|(x, y)| x.latency != y.latency).count();
        assert!(diff > 0, "a different seed must draw different latencies");
    }

    #[test]
    fn node_budget_is_respected_and_tiers_are_plausible() {
        let t = Network::scale_topology(5, 1000, 3);
        assert_eq!(t.net.nodes().len(), 1000);
        assert_eq!(t.core.len(), 20);
        assert_eq!(t.edges.len(), 100);
        assert_eq!(t.hosts.len(), 880);
        assert_eq!(t.hosts.len(), t.host_addrs.len());
    }

    #[test]
    fn fib_routed_traffic_crosses_the_backbone() {
        let mut t = Network::scale_topology(7, 400, 3);
        let mut rng = SimRng::seed_from_u64(1);
        // Every 17th pair, spread across edges.
        for i in (0..t.hosts.len()).step_by(17) {
            let j = (i + t.hosts.len() / 2) % t.hosts.len();
            if i == j {
                continue;
            }
            let pkt = Packet::new(t.host_addrs[i], t.host_addrs[j], Protocol::Tcp, 1, ports::HTTP);
            let rep = t.net.send(t.hosts[i], pkt, &mut rng);
            assert!(rep.delivered, "host {i} -> {j} failed: {:?}", rep.drop);
            assert_eq!(rep.path.last(), Some(&t.hosts[j]));
        }
    }

    #[test]
    fn source_routed_traffic_reaches_any_core_waypoint() {
        let mut t = Network::scale_topology(9, 250, 3);
        let mut rng = SimRng::seed_from_u64(2);
        let dst = t.host_addrs[t.hosts.len() - 1];
        let dst_node = t.hosts[t.hosts.len() - 1];
        for w in 0..t.core.len() {
            let pkt = Packet::new(t.host_addrs[0], dst, Protocol::Tcp, 1, ports::HTTP)
                .with_source_route(vec![t.core[w]]);
            let rep = t.net.send(t.hosts[0], pkt, &mut rng);
            assert!(rep.delivered, "waypoint {w} failed: {:?}", rep.drop);
            assert!(rep.path.contains(&t.core[w]), "path must visit the waypoint");
            assert_eq!(rep.path.last(), Some(&dst_node));
        }
    }
}

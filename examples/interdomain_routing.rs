//! Domain scenario: inter-domain routing as a tussle interface (§IV.C, §V.A.4).
//!
//! Builds an AS topology, converges Gao–Rexford path-vector routing,
//! compares its information exposure with link-state, then prices and
//! authorizes a user-selected source route the way the paper says the
//! design should have worked.
//!
//! ```sh
//! cargo run --release --example interdomain_routing
//! ```

use std::collections::BTreeMap;
use tussle::net::{Asn, Network, Prefix};
use tussle::routing::exposure::{link_state_exposure, path_vector_exposure};
use tussle::routing::sourceroute::{authorize_route, enumerate_paths};
use tussle::routing::AsGraph;
use tussle::sim::SimTime;

fn main() {
    // -- the commercial topology -------------------------------------------
    //      T1a ==peer== T1b
    //     /    \           \
    //    M1     M2          M3
    //   /  \      \         /
    //  S1   S2     S3     S4
    let mut g = AsGraph::new();
    let (t1a, t1b) = (Asn(10), Asn(20));
    let (m1, m2, m3) = (Asn(100), Asn(200), Asn(300));
    let (s1, s4) = (Asn(1001), Asn(1004));
    g.peers(t1a, t1b);
    g.customer_of(m1, t1a);
    g.customer_of(m2, t1a);
    g.customer_of(m3, t1b);
    g.customer_of(s1, m1);
    g.customer_of(Asn(1002), m1);
    g.customer_of(Asn(1003), m2);
    g.customer_of(s4, m3);

    let p1 = Prefix::new(0x0a010000, 16);
    let p4 = Prefix::new(0x0d040000, 16);
    g.originate(s1, p1);
    g.originate(s4, p4);
    let rounds = g.converge(50);
    println!("## Path-vector convergence\nconverged in {rounds} rounds");
    let path = g.as_path(s1, p4).unwrap();
    println!("S1 -> S4 path: {:?} (valley-free: {})", path, g.is_valley_free(path));

    // -- what each design forces you to reveal -----------------------------
    let mut phys = Network::new();
    let r: Vec<_> = (0..9).map(|i| phys.add_router(Asn(i))).collect();
    for w in r.windows(2) {
        phys.connect(w[0], w[1], SimTime::from_millis(5), 1_000_000_000);
    }
    let ls = link_state_exposure(&phys);
    let pv = path_vector_exposure(&g, s1, &[p1, p4]);
    println!("\n## Information exposure (§IV.C)");
    println!(
        "link-state: {} link costs visible to every competitor, topology visible: {}",
        ls.link_costs_visible, ls.internal_topology_visible
    );
    println!(
        "path-vector: {} path entries visible to S1, topology visible: {}",
        pv.path_entries_visible, pv.internal_topology_visible
    );

    // -- the §V.A.4 design: a route menu with visible prices ---------------
    let asking = BTreeMap::from([
        (m1, 200_000u64),
        (m2, 150_000),
        (m3, 180_000),
        (t1a, 400_000),
        (t1b, 350_000),
    ]);
    let offers = enumerate_paths(&g, s1, s4, 6, &asking);
    println!("\n## Source-route menu S1 -> S4 (cost of choice made visible)");
    for o in offers.iter().take(4) {
        println!("  {:?}  ${:.2}", o.path, o.price as f64 / 1e6);
    }
    let chosen = &offers[0];
    let unpaid = authorize_route(&g, &chosen.path, &asking, &BTreeMap::new());
    println!("\nwithout payment: {unpaid:?}");
    let payments: BTreeMap<Asn, u64> =
        chosen.path[1..chosen.path.len() - 1].iter().map(|a| (*a, asking[a])).collect();
    let paid = authorize_route(&g, &chosen.path, &asking, &payments);
    println!("with payment:    {paid:?} — the compensation flowed, so the traffic may");
}

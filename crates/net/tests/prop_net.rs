//! Property tests for addressing, forwarding and packet visibility.

use proptest::prelude::*;
use tussle_net::addr::{Address, AddressOrigin, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::table::Fib;
use tussle_net::{build_engine, Flow, Network, NodeId, RetryPolicy, TrafficWorld};
use tussle_sim::{Engine, FaultInjector, SimTime};

/// A lossy two-hop retry workload: 30 packets at 10ms spacing over a 40%
/// lossy second hop, with jittered exponential backoff on every drop.
fn retry_workload(seed: u64) -> Engine<TrafficWorld> {
    let mut net = Network::new();
    let h0 = net.add_host(tussle_net::Asn(1));
    let r = net.add_router(tussle_net::Asn(1));
    let h1 = net.add_host(tussle_net::Asn(2));
    net.connect(h0, r, SimTime::from_millis(1), 1_000_000_000);
    net.connect(r, h1, SimTime::from_millis(1), 1_000_000_000);
    let a0 = Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
    let a1 = Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
    net.node_mut(h0).bind(a0);
    net.node_mut(h1).bind(a1);
    net.fib_mut(h0).install(Prefix::DEFAULT, r, 0);
    net.fib_mut(r).install(Prefix::new(0x0b000000, 16), h1, 0);
    let lid = net.links()[1].id;
    net.link_mut(lid).faults = FaultInjector::lossy(0.4, 0.0);
    let pkt = Packet::new(a0, a1, Protocol::Udp, 100, ports::VOIP);
    let flow = Flow::periodic("rt", h0, pkt, SimTime::from_millis(10), 30)
        .with_jitter(2_000)
        .with_retries(RetryPolicy::backoff(4));
    build_engine(net, vec![flow], seed)
}

proptest! {
    /// A prefix always contains every address minted inside it.
    #[test]
    fn prefix_contains_its_addresses(bits in any::<u32>(), len in 0u8..=32, host in any::<u32>()) {
        let p = Prefix::new(bits, len);
        let a = Address::in_prefix(p, host, AddressOrigin::ProviderIndependent);
        prop_assert!(p.contains(a.value));
    }

    /// `covers` is a partial order: reflexive and antisymmetric on
    /// distinct prefixes, and consistent with `contains`.
    #[test]
    fn covers_is_consistent(bits in any::<u32>(), len in 0u8..=31) {
        let parent = Prefix::new(bits, len);
        let child = Prefix::new(bits, len + 1);
        prop_assert!(parent.covers(&parent));
        prop_assert!(parent.covers(&child));
        prop_assert!(!child.covers(&parent) || parent == child);
    }

    /// Subprefix allocation stays inside the aggregate and distinct
    /// indices never collide.
    #[test]
    fn subprefixes_partition(bits in any::<u32>(), i in 0u32..16, j in 0u32..16) {
        let agg = Prefix::new(bits, 8);
        let a = agg.subprefix(16, i);
        let b = agg.subprefix(16, j);
        prop_assert!(agg.covers(&a));
        prop_assert!(agg.covers(&b));
        if i != j {
            prop_assert_ne!(a, b);
            prop_assert!(!a.covers(&b));
        }
    }

    /// FIB lookups always return the longest matching prefix.
    #[test]
    fn fib_longest_prefix_wins(
        routes in proptest::collection::vec((any::<u32>(), 1u8..=32, 0u32..64), 1..64),
        probe in any::<u32>(),
    ) {
        let mut fib = Fib::new();
        for (bits, len, hop) in &routes {
            fib.install(Prefix::new(*bits, *len), NodeId(*hop), 0);
        }
        if let Some(entry) = fib.lookup(probe) {
            prop_assert!(entry.prefix.contains(probe));
            // nothing longer also matches
            for e in fib.entries() {
                if e.prefix.contains(probe) {
                    prop_assert!(e.prefix.len() <= entry.prefix.len());
                }
            }
        } else {
            for e in fib.entries() {
                prop_assert!(!e.prefix.contains(probe));
            }
        }
    }

    /// Withdrawing a prefix removes exactly the matching entries.
    #[test]
    fn withdraw_is_exact(
        routes in proptest::collection::vec((any::<u32>(), 1u8..=32), 1..32),
        victim in 0usize..32,
    ) {
        let mut fib = Fib::new();
        for (bits, len) in &routes {
            fib.install(Prefix::new(*bits, *len), NodeId(0), 0);
        }
        let before = fib.len();
        let target = routes[victim % routes.len()];
        let target = Prefix::new(target.0, target.1);
        let removed = fib.withdraw(target);
        prop_assert_eq!(fib.len(), before - removed);
        prop_assert!(fib.entries().all(|e| e.prefix != target));
    }

    /// Retry backoff jitter draws come from the run's own `SimRng` (never
    /// ambient randomness), so a crash/resume run consumes *exactly* as
    /// many rng draws as the uninterrupted golden — prefix and suffix
    /// draw counts and the final stream position all pinned.
    #[test]
    fn retry_jitter_draws_are_pinned_across_crash_and_resume(
        seed in 0u64..512,
        cut in 1u64..48,
    ) {
        let mut golden = retry_workload(seed);
        let g1 = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
        golden.run(cut);
        let prefix_draws = g1.finish().rng_draws;
        let snap = golden.checkpoint();
        let g2 = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
        golden.run_to_completion();
        let suffix_draws = g2.finish().rng_draws;

        // A successor process replays to the crash frontier, restores, and
        // finishes the run: every draw count must match the golden's.
        let mut resumed = retry_workload(seed);
        let r1 = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
        resumed.run(cut);
        prop_assert_eq!(r1.finish().rng_draws, prefix_draws);
        resumed.restore(&snap).expect("replay frontier matches");
        prop_assert_eq!(resumed.core_state().rng_word_pos, snap.engine.rng_word_pos);
        let r2 = tussle_sim::obs::begin(tussle_sim::ObsMode::Cost);
        resumed.run_to_completion();
        prop_assert_eq!(r2.finish().rng_draws, suffix_draws);

        prop_assert_eq!(resumed.core_state(), golden.core_state());
        let retried = golden.metrics().counter("flow.rt.retried");
        prop_assert!(retried > 0, "40% loss must force jittered retries");
    }

    /// Packet visibility is exhaustive and consistent: a steganographic
    /// packet is encrypted but never *visibly* encrypted; ToS bits survive
    /// every privacy posture.
    #[test]
    fn packet_visibility_invariants(tos in any::<u8>(), port in any::<u16>(), mode in 0u8..3) {
        let src = Address::in_prefix(Prefix::new(1, 8), 1, AddressOrigin::ProviderIndependent);
        let dst = Address::in_prefix(Prefix::new(2, 8), 1, AddressOrigin::ProviderIndependent);
        let mut p = Packet::new(src, dst, Protocol::Tcp, 1, port).with_tos(tos);
        p = match mode {
            0 => p,
            1 => p.encrypt(),
            _ => p.steganographic(),
        };
        prop_assert_eq!(p.visible_tos(), tos);
        match mode {
            0 => {
                prop_assert_eq!(p.visible_dst_port(), Some(port));
                prop_assert!(!p.visibly_encrypted());
            }
            1 => {
                prop_assert_eq!(p.visible_dst_port(), None);
                prop_assert!(p.visibly_encrypted());
            }
            _ => {
                prop_assert!(p.visible_dst_port().is_some());
                prop_assert!(!p.visibly_encrypted());
                prop_assert!(p.encrypted);
            }
        }
    }
}

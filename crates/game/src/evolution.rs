//! Replicator dynamics — evolutionary/bounded-rationality tussle.
//!
//! §II.B: "actors in a network are not, in fact, well informed and perfect
//! optimizers as classic theory requires." Replicator dynamics models a
//! population of myopic actors whose strategy shares grow in proportion to
//! realized fitness — the standard evolutionary-game-theory reading the
//! paper cites through Binmore.

use serde::{Deserialize, Serialize};

/// A symmetric population game: `payoff(i, j)` is the fitness of strategy
/// `i` against strategy `j`. The population state is a distribution over
/// strategies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replicator {
    payoff: Vec<Vec<f64>>,
    /// Current population shares (sums to 1).
    pub shares: Vec<f64>,
}

impl Replicator {
    /// Start from explicit initial shares.
    pub fn new(payoff: Vec<Vec<f64>>, shares: Vec<f64>) -> Self {
        let n = payoff.len();
        assert!(n > 0 && payoff.iter().all(|r| r.len() == n), "square payoff matrix required");
        assert_eq!(shares.len(), n);
        let total: f64 = shares.iter().sum();
        assert!(total > 0.0, "shares must have positive mass");
        let shares = shares.iter().map(|s| s / total).collect();
        Replicator { payoff, shares }
    }

    /// Start from the uniform population.
    pub fn uniform(payoff: Vec<Vec<f64>>) -> Self {
        let n = payoff.len();
        Replicator::new(payoff, vec![1.0 / n as f64; n])
    }

    /// Fitness of each strategy against the current population.
    pub fn fitness(&self) -> Vec<f64> {
        (0..self.payoff.len())
            .map(|i| self.shares.iter().enumerate().map(|(j, s)| s * self.payoff[i][j]).sum())
            .collect()
    }

    /// Average population fitness.
    pub fn mean_fitness(&self) -> f64 {
        self.fitness().iter().zip(&self.shares).map(|(f, s)| f * s).sum()
    }

    /// One discrete replicator step with learning rate `dt` in `(0, 1]`:
    /// `x_i += dt * x_i * (f_i - mean_f) / scale`, then renormalize.
    pub fn step(&mut self, dt: f64) {
        let fit = self.fitness();
        let mean = self.mean_fitness();
        let scale = fit.iter().map(|f| (f - mean).abs()).fold(1.0_f64, f64::max);
        for (x, f) in self.shares.iter_mut().zip(&fit) {
            *x = (*x + dt * *x * (f - mean) / scale).max(0.0);
        }
        let total: f64 = self.shares.iter().sum();
        if total > 0.0 {
            for x in &mut self.shares {
                *x /= total;
            }
        }
    }

    /// Run until the largest per-step share change drops below `tol` or
    /// `max_steps` elapse. Returns steps used.
    pub fn run(&mut self, dt: f64, tol: f64, max_steps: usize) -> usize {
        for step in 0..max_steps {
            let before = self.shares.clone();
            self.step(dt);
            let delta =
                self.shares.iter().zip(&before).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max);
            if delta < tol {
                return step + 1;
            }
        }
        max_steps
    }

    /// The strategy with the largest share.
    pub fn dominant(&self) -> usize {
        self.shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("share is NaN"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_strategy_takes_over() {
        // strategy 1 strictly dominates
        let pay = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let mut r = Replicator::uniform(pay);
        r.run(0.5, 1e-9, 10_000);
        assert!(r.shares[1] > 0.99, "shares {:?}", r.shares);
        assert_eq!(r.dominant(), 1);
    }

    #[test]
    fn hawk_dove_interior_equilibrium() {
        // Hawk-Dove with V=2, C=4: equilibrium share of hawks = V/C = 0.5
        let v = 2.0;
        let c = 4.0;
        let pay = vec![vec![(v - c) / 2.0, v], vec![0.0, v / 2.0]];
        let mut r = Replicator::new(pay, vec![0.9, 0.1]);
        r.run(0.2, 1e-10, 100_000);
        assert!((r.shares[0] - 0.5).abs() < 0.01, "hawk share {:?}", r.shares);
    }

    #[test]
    fn shares_stay_a_distribution() {
        let pay = vec![vec![3.0, 0.0], vec![5.0, 1.0]];
        let mut r = Replicator::uniform(pay);
        for _ in 0..100 {
            r.step(0.3);
            let total: f64 = r.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(r.shares.iter().all(|s| *s >= 0.0));
        }
    }

    #[test]
    fn extinct_strategies_stay_extinct() {
        let pay = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let mut r = Replicator::new(pay, vec![1.0, 0.0]);
        r.run(0.5, 1e-12, 1000);
        // replicator can't invent strategy 1 from zero share
        assert_eq!(r.shares[1], 0.0);
    }

    #[test]
    fn mean_fitness_matches_hand_calc() {
        let pay = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let r = Replicator::uniform(pay);
        // fitness of each = 1.0, mean = 1.0
        assert_eq!(r.fitness(), vec![1.0, 1.0]);
        assert!((r.mean_fitness() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        Replicator::uniform(vec![vec![1.0, 2.0]]);
    }
}

//! Cross-crate routing integration: link-state inside a domain,
//! path-vector between domains, overlays on top, diagnostics throughout.

use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::diagnostics::{blame, traceroute};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::{Firewall, Network, NodeId};
use tussle::routing::overlay::Overlay;
use tussle::routing::{AsGraph, LinkStateProtocol};
use tussle::sim::{SimRng, SimTime};

fn addr(block: u32, asn: u32) -> Address {
    Address::in_prefix(Prefix::new(block, 16), 1, AddressOrigin::ProviderAssigned(Asn(asn)))
}

/// Two ASes, each a small link-state domain, joined by one inter-domain
/// link whose policy comes from a path-vector session.
#[test]
fn linkstate_plus_pathvector_deliver_end_to_end() {
    let mut net = Network::new();
    // AS1: triangle a0-a1-a2
    let a: Vec<NodeId> = (0..3).map(|_| net.add_router(Asn(1))).collect();
    // AS2: triangle b0-b1-b2
    let b: Vec<NodeId> = (0..3).map(|_| net.add_router(Asn(2))).collect();
    for (x, y) in [(0, 1), (1, 2), (0, 2)] {
        net.connect(a[x], a[y], SimTime::from_millis(1), 1_000_000_000);
        net.connect(b[x], b[y], SimTime::from_millis(1), 1_000_000_000);
    }
    // the hosts
    let ha = net.add_host(Asn(1));
    let hb = net.add_host(Asn(2));
    net.connect(ha, a[0], SimTime::from_millis(1), 1_000_000_000);
    net.connect(hb, b[0], SimTime::from_millis(1), 1_000_000_000);
    // inter-domain link a2 <-> b2
    net.connect(a[2], b[2], SimTime::from_millis(10), 1_000_000_000);

    let src = addr(0x0a010000, 1);
    let dst = addr(0x0b010000, 2);
    net.node_mut(ha).bind(src);
    net.node_mut(hb).bind(dst);

    // path-vector decides AS1 reaches AS2's prefix via the session
    let mut g = AsGraph::new();
    g.peers(Asn(1), Asn(2));
    let p_dst = Prefix::new(0x0b010000, 16);
    let p_src = Prefix::new(0x0a010000, 16);
    g.originate(Asn(2), p_dst);
    g.originate(Asn(1), p_src);
    g.converge(10);
    assert!(g.best_route(Asn(1), p_dst).is_some());

    // link-state computes intra-domain paths toward each border/host
    let ls_a = LinkStateProtocol::new(vec![a[0], a[1], a[2], ha]);
    let ls_b = LinkStateProtocol::new(vec![b[0], b[1], b[2], hb]);
    // AS1 routes the foreign prefix toward its border a2, which BGP chose:
    ls_a.install_routes(&mut net, &[(p_dst, a[2])]);
    ls_b.install_routes(&mut net, &[(p_dst, hb), (p_src, b[2])]);
    // border-to-border and border-to-host glue
    net.fib_mut(a[2]).install(p_dst, b[2], 0);
    net.fib_mut(ha).install(p_dst, a[0], 0);

    let mut rng = SimRng::seed_from_u64(5);
    let rep = net.send(ha, Packet::new(src, dst, Protocol::Tcp, 1, ports::HTTP), &mut rng);
    assert!(rep.delivered, "end-to-end across both protocols: {rep:?}");
    assert!(rep.path.contains(&a[2]) && rep.path.contains(&b[2]), "crosses the chosen border");

    // diagnostics see every hop (no concealed middleboxes installed)
    let hops =
        traceroute(&mut net, ha, Packet::new(src, dst, Protocol::Icmp, 0, ports::HTTP), &mut rng);
    assert!(hops.iter().all(|h| h.node.is_some()));

    // now AS2 deploys a concealed firewall at its border and the user's
    // blame report honestly reports concealment
    let mut fw = Firewall::port_allowlist(vec![ports::SMTP], "AS2 security");
    fw.reveals_presence = false;
    net.set_firewall(b[2], fw);
    let rep = net.send(ha, Packet::new(src, dst, Protocol::Tcp, 1, ports::HTTP), &mut rng);
    assert!(!rep.delivered);
    let br = blame(&net, &rep).unwrap();
    assert!(br.concealed);
    assert_eq!(br.responsible_node, None);

    // ...and an overlay member inside AS2 routes around the border policy
    let relay_addr = addr(0x0c010000, 2);
    // the relay is a host inside AS2, reachable from AS1 on an allowed port
    let relay = net.add_host(Asn(2));
    net.connect(relay, b[1], SimTime::from_millis(1), 1_000_000_000);
    net.node_mut(relay).bind(relay_addr);
    let p_relay = Prefix::new(0x0c010000, 16);
    // reach the relay via a1->a2->b2? b2 is firewalled for HTTP... SMTP is allowed:
    net.fib_mut(ha).install(p_relay, a[0], 0);
    ls_a.install_routes(&mut net, &[(p_relay, a[2])]);
    net.fib_mut(a[2]).install(p_relay, b[2], 0);
    net.fib_mut(b[2]).install(p_relay, b[1], 0);
    net.fib_mut(b[1]).install(p_relay, relay, 0);
    net.fib_mut(relay).install(p_dst, b[1], 0);
    net.fib_mut(b[1]).install(p_dst, b[0], 0);
    net.fib_mut(b[0]).install(p_dst, hb, 0);

    let overlay = Overlay::new(vec![(relay, relay_addr)]);
    // the overlay leg to the relay uses the SMTP port the firewall allows —
    // overlays pick whatever aperture remains
    let pkt = Packet::new(src, dst, Protocol::Tcp, 1, ports::SMTP);
    let d = overlay.send(&mut net, ha, pkt, &mut rng);
    assert!(d.delivered(), "the tussle tool works: {d:?}");
}

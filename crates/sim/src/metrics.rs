//! Counters, gauges and histograms.
//!
//! Every experiment reduces to a handful of numbers ("who wins, by what
//! factor"), and every substrate needs cheap instrumentation to produce
//! them. Keys are plain strings; the sink is owned by the engine context so
//! event handlers can record without extra plumbing.

use crate::digest::Fnv1a;
use crate::fault::{FaultOutcome, FaultStats};
use crate::obs;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed number of buckets in a [`TimeSeries`]; the bucket *width* doubles
/// whenever a sample lands past the end, so memory stays constant while
/// runs of any virtual length remain summarizable.
pub const SERIES_BUCKETS: usize = 32;

/// Initial [`TimeSeries`] bucket width in virtual microseconds.
pub const SERIES_INITIAL_WIDTH_MICROS: u64 = 1_024;

/// A windowed count over virtual time: a fixed array of buckets whose width
/// doubles (merging pairwise) whenever a sample lands beyond the last
/// bucket. Used for per-virtual-time-bucket event/forward/fault activity.
///
/// Series are **never digested** — they are a derived projection of the
/// already-digested trace and counter streams, so capturing them must not
/// change any [`crate::RunDigest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    width_micros: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries {
            width_micros: SERIES_INITIAL_WIDTH_MICROS,
            counts: vec![0; SERIES_BUCKETS],
            total: 0,
        }
    }
}

impl TimeSeries {
    /// New empty series at the initial bucket width.
    pub fn new() -> Self {
        Self::default()
    }

    fn coarsen(&mut self) {
        self.width_micros = self.width_micros.saturating_mul(2);
        for i in 0..SERIES_BUCKETS / 2 {
            self.counts[i] = self.counts[2 * i] + self.counts[2 * i + 1];
        }
        for c in &mut self.counts[SERIES_BUCKETS / 2..] {
            *c = 0;
        }
    }

    /// Add `n` occurrences at virtual time `at`, widening buckets as needed.
    pub fn record(&mut self, at: SimTime, n: u64) {
        let micros = at.as_micros();
        while (micros / self.width_micros) as usize >= SERIES_BUCKETS {
            self.coarsen();
        }
        self.counts[(micros / self.width_micros) as usize] += n;
        self.total += n;
    }

    /// Current bucket width in virtual microseconds.
    pub fn width_micros(&self) -> u64 {
        self.width_micros
    }

    /// Total count across all buckets.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another series into this one, coarsening both views to the
    /// wider bucket width first.
    pub fn merge(&mut self, other: &TimeSeries) {
        while self.width_micros < other.width_micros {
            self.coarsen();
        }
        let mut o = other.clone();
        while o.width_micros < self.width_micros {
            o.coarsen();
        }
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
        self.total += o.total;
    }

    /// Export with trailing empty buckets trimmed.
    pub fn summary(&self) -> TimeSeriesSummary {
        let used = self.counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        TimeSeriesSummary {
            width_micros: self.width_micros,
            counts: self.counts[..used].to_vec(),
            total: self.total,
        }
    }
}

/// Exported view of a [`TimeSeries`]: bucket width, trimmed bucket counts
/// and the total.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeriesSummary {
    /// Bucket width in virtual microseconds.
    pub width_micros: u64,
    /// Per-bucket counts, oldest first, trailing zeros trimmed.
    pub counts: Vec<u64>,
    /// Total count.
    pub total: u64,
}

impl TimeSeriesSummary {
    /// Compact one-token rendering, e.g. `[3,1,0,2]/1024us` (`-` if empty).
    pub fn render(&self) -> String {
        if self.total == 0 {
            return "-".to_owned();
        }
        let buckets: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!("[{}]/{}us", buckets.join(","), self.width_micros)
    }
}

/// The standard activity series of one observed run: events dispatched,
/// network forwards, and fault-injector hits, each bucketed by virtual
/// time. Carried on [`crate::RunRecord`] and the report cost appendix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSeries {
    /// Engine events dispatched per bucket.
    pub events: TimeSeriesSummary,
    /// Network hop forwards per bucket.
    pub forwards: TimeSeriesSummary,
    /// Fault-injector non-pass outcomes per bucket.
    pub faults: TimeSeriesSummary,
}

impl RunSeries {
    /// True when no series recorded anything.
    pub fn is_empty(&self) -> bool {
        self.events.total == 0 && self.forwards.total == 0 && self.faults.total == 0
    }
}

/// A log-bucketed histogram over non-negative `f64` samples.
///
/// Buckets are powers of two starting at 1.0 plus an underflow bucket, which
/// is plenty of resolution for latency, price and table-size distributions
/// while staying allocation-free after construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 64;

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value < 1.0 {
            0
        } else {
            // log2(value) + 1, clamped to the top bucket
            let idx = value.log2().floor() as usize + 1;
            idx.min(BUCKETS)
        }
    }

    /// Record one sample. Negative and non-finite samples are clamped to 0.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i == 0 { 1.0 } else { 2f64.powi(i as i32) };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summarize into the fixed set of export statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            p50: self.quantile(0.5).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Exported view of one histogram: the quantiles every report wants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Median estimate (log-bucket upper bound).
    pub p50: f64,
    /// 95th-percentile estimate (log-bucket upper bound).
    pub p95: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

/// A point-in-time export of a [`Metrics`] sink: every counter, gauge and
/// histogram summary, rendered to markdown or JSON and hashable into a
/// [`crate::RunDigest`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters in key order.
    pub counters: BTreeMap<String, u64>,
    /// Gauges in key order.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries in key order.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Windowed virtual-time series in key order. **Not digested** — see
    /// [`TimeSeries`].
    pub series: BTreeMap<String, TimeSeriesSummary>,
}

impl MetricsSnapshot {
    /// Absorb the whole snapshot into a hasher. Key order is the BTreeMap
    /// order, so equal snapshots absorb identically. The `series` section
    /// is deliberately excluded: series are derived from already-digested
    /// streams, and digests must stay stable as series capture evolves.
    pub fn absorb_into(&self, h: &mut Fnv1a) {
        h.write_u8(0xB1);
        h.write_u64(self.counters.len() as u64);
        for (k, v) in &self.counters {
            h.write_str(k);
            h.write_u64(*v);
        }
        h.write_u8(0xB2);
        h.write_u64(self.gauges.len() as u64);
        for (k, v) in &self.gauges {
            h.write_str(k);
            h.write_f64(*v);
        }
        h.write_u8(0xB3);
        h.write_u64(self.histograms.len() as u64);
        for (k, s) in &self.histograms {
            h.write_str(k);
            h.write_u64(s.count);
            h.write_f64(s.sum);
            h.write_f64(s.min);
            h.write_f64(s.p50);
            h.write_f64(s.p95);
            h.write_f64(s.max);
        }
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Render as markdown tables (one per non-empty section).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("| counter | value |\n|---|---:|\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("| {k} | {v} |\n"));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("| gauge | value |\n|---|---:|\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("| {k} | {v:.4} |\n"));
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(
                "| histogram | count | mean | p50 | p95 | max |\n|---|---:|---:|---:|---:|---:|\n",
            );
            for (k, s) in &self.histograms {
                out.push_str(&format!(
                    "| {k} | {} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
                    s.count, s.mean, s.p50, s.p95, s.max
                ));
            }
        }
        if !self.series.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("| series | total | buckets |\n|---|---:|---|\n");
            for (k, s) in &self.series {
                out.push_str(&format!("| {k} | {} | {} |\n", s.total, s.render()));
            }
        }
        out
    }

    /// Render as a JSON object string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

/// A named-metric sink: counters, gauges, histograms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, key: &str, n: u64) {
        obs::on_metric_counter(key, n);
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Set a gauge value.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        obs::on_metric_gauge(key, value);
        self.gauges.insert(key.to_owned(), value);
    }

    /// Read a gauge, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Tally a fault-injector outcome under `scope` (e.g. a flow label or
    /// a link name), as counters `fault.<scope>.passed` / `.dropped` /
    /// `.corrupted` / `.rate_limited` — fault activity becomes observable
    /// per run instead of vanishing into aggregate drop counts.
    pub fn record_fault(&mut self, scope: &str, outcome: FaultOutcome) {
        let suffix = match outcome {
            FaultOutcome::Pass => "passed",
            FaultOutcome::Drop => "dropped",
            FaultOutcome::Corrupt => "corrupted",
            FaultOutcome::RateLimited => "rate_limited",
        };
        self.incr(&format!("fault.{scope}.{suffix}"));
    }

    /// Read back the fault tallies recorded under `scope`.
    pub fn fault_stats(&self, scope: &str) -> FaultStats {
        FaultStats {
            passed: self.counter(&format!("fault.{scope}.passed")),
            dropped: self.counter(&format!("fault.{scope}.dropped")),
            corrupted: self.counter(&format!("fault.{scope}.corrupted")),
            rate_limited: self.counter(&format!("fault.{scope}.rate_limited")),
        }
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, key: &str, value: f64) {
        obs::on_metric_observe(key, value);
        self.histograms.entry(key.to_owned()).or_default().record(value);
    }

    /// Add `n` occurrences to the windowed virtual-time series `key` at
    /// time `at`. Series feed no obs hook and no digest: they are a
    /// derived projection of streams that are already digested, so
    /// recording them can never flip a determinism check.
    pub fn record_series(&mut self, key: &str, at: SimTime, n: u64) {
        // get_mut-first keeps the steady state (engine hot path) free of
        // key allocation; only the first write per key allocates.
        if let Some(s) = self.series.get_mut(key) {
            s.record(at, n);
        } else {
            let mut s = TimeSeries::new();
            s.record(at, n);
            self.series.insert(key.to_owned(), s);
        }
    }

    /// Access a windowed series, if anything was recorded under `key`.
    pub fn series(&self, key: &str) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// Export every counter, gauge and histogram summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
            series: self.series.iter().map(|(k, s)| (k.clone(), s.summary())).collect(),
        }
    }

    /// Access a histogram, if any samples were recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another sink into this one (counters add, gauges overwrite,
    /// histograms merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            self.series.entry(k.clone()).or_default().merge(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("pkts");
        m.add("pkts", 4);
        assert_eq!(m.counter("pkts"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("price", 10.0);
        m.set_gauge("price", 12.5);
        assert_eq!(m.gauge("price"), Some(12.5));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99, "{q10} {q50} {q99}");
        assert!(q99 <= 1024.0);
    }

    #[test]
    fn histogram_clamps_bad_samples() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn fault_outcomes_become_counters() {
        let mut m = Metrics::new();
        m.record_fault("flow.voip", FaultOutcome::Pass);
        m.record_fault("flow.voip", FaultOutcome::Drop);
        m.record_fault("flow.voip", FaultOutcome::Drop);
        m.record_fault("flow.voip", FaultOutcome::Corrupt);
        m.record_fault("flow.voip", FaultOutcome::RateLimited);
        assert_eq!(m.counter("fault.flow.voip.dropped"), 2);
        let stats = m.fault_stats("flow.voip");
        assert_eq!(
            (stats.passed, stats.dropped, stats.corrupted, stats.rate_limited),
            (1, 2, 1, 1)
        );
        assert_eq!(stats.faults(), 4);
        assert_eq!(m.fault_stats("absent"), FaultStats::default());
    }

    #[test]
    fn metrics_merge() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add("x", 1);
        b.add("x", 2);
        b.set_gauge("g", 7.0);
        b.observe("h", 5.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn huge_values_land_in_top_bucket() {
        let mut h = Histogram::new();
        h.record(f64::MAX / 2.0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).unwrap() > 0.0);
    }

    #[test]
    fn snapshot_exports_all_sections() {
        let mut m = Metrics::new();
        m.add("pkts", 7);
        m.set_gauge("price", 2.5);
        for v in [1.0, 2.0, 100.0] {
            m.observe("latency", v);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["pkts"], 7);
        assert_eq!(snap.gauges["price"], 2.5);
        let h = &snap.histograms["latency"];
        assert_eq!(h.count, 3);
        assert!(h.p50 <= h.p95 && h.p95 <= h.max, "{h:?}");

        let md = snap.to_markdown();
        assert!(md.contains("| pkts | 7 |"), "{md}");
        assert!(md.contains("| price | 2.5000 |"), "{md}");
        assert!(md.contains("| latency | 3 |"), "{md}");

        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_digest_detects_change() {
        use crate::digest::Fnv1a;
        let mut a = Metrics::new();
        a.add("x", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        let mut ha = Fnv1a::new();
        a.snapshot().absorb_into(&mut ha);
        let mut hb = Fnv1a::new();
        b.snapshot().absorb_into(&mut hb);
        assert_ne!(ha.finish(), hb.finish());

        let mut hc = Fnv1a::new();
        a.snapshot().absorb_into(&mut hc);
        assert_eq!(ha.finish(), hc.finish());
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Metrics::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_markdown(), "");
    }

    #[test]
    fn time_series_buckets_by_virtual_time() {
        let mut s = TimeSeries::new();
        s.record(SimTime::from_micros(0), 2);
        s.record(SimTime::from_micros(1023), 1);
        s.record(SimTime::from_micros(1024), 4);
        let sum = s.summary();
        assert_eq!(sum.width_micros, SERIES_INITIAL_WIDTH_MICROS);
        assert_eq!(sum.counts, [3, 4]);
        assert_eq!(sum.total, 7);
        assert_eq!(sum.render(), "[3,4]/1024us");
    }

    #[test]
    fn time_series_coarsens_instead_of_growing() {
        let mut s = TimeSeries::new();
        s.record(SimTime::from_micros(0), 1);
        s.record(SimTime::from_micros(10), 1);
        // Far past the initial window: widths must double until it fits.
        s.record(SimTime::from_millis(1_000), 1);
        let sum = s.summary();
        assert!(sum.width_micros > SERIES_INITIAL_WIDTH_MICROS);
        assert!(sum.counts.len() <= SERIES_BUCKETS);
        assert_eq!(sum.total, 3);
        assert_eq!(sum.counts.iter().sum::<u64>(), 3, "coarsening conserves counts");
        assert_eq!(sum.counts[0], 2, "early samples merge into the first bucket");
    }

    #[test]
    fn time_series_merge_aligns_widths() {
        let mut fine = TimeSeries::new();
        fine.record(SimTime::from_micros(5), 3);
        let mut coarse = TimeSeries::new();
        coarse.record(SimTime::from_millis(1_000), 1);
        let coarse_width = coarse.width_micros();
        fine.merge(&coarse);
        assert_eq!(fine.width_micros(), coarse_width);
        assert_eq!(fine.total(), 4);
    }

    #[test]
    fn series_never_affect_the_snapshot_digest() {
        use crate::digest::Fnv1a;
        let mut plain = Metrics::new();
        plain.add("x", 1);
        let mut with_series = Metrics::new();
        with_series.add("x", 1);
        with_series.record_series("engine.events", SimTime::from_micros(7), 5);
        let mut ha = Fnv1a::new();
        plain.snapshot().absorb_into(&mut ha);
        let mut hb = Fnv1a::new();
        with_series.snapshot().absorb_into(&mut hb);
        assert_eq!(ha.finish(), hb.finish(), "series are a non-digested projection");
        assert!(!with_series.snapshot().is_empty());
        let md = with_series.snapshot().to_markdown();
        assert!(md.contains("| engine.events | 5 |"), "{md}");
    }

    #[test]
    fn metrics_merge_includes_series() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.record_series("s", SimTime::from_micros(1), 1);
        b.record_series("s", SimTime::from_micros(2), 2);
        a.merge(&b);
        assert_eq!(a.series("s").unwrap().total(), 3);
    }
}

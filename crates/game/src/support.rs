//! Support enumeration: mixed Nash equilibria of general bimatrix games.
//!
//! For every pair of equal-sized supports, solve the indifference system
//! (each player must be indifferent across their support given the other's
//! mix), then verify nonnegativity and no profitable deviation outside the
//! support. Exponential in actions, which is fine: tussle games are small —
//! the paper's examples are 2×2 and 3×3.

use crate::matrix::Game;
use crate::solve::is_nash;

const EPS: f64 = 1e-9;

/// Solve `a x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for (near-)singular systems.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // pivot
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("no NaN in payoff systems")
        })?;
        if a[pivot][col].abs() < EPS {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // eliminate below
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            for (cell, &pivot_cell) in lower[0][col..].iter_mut().zip(&upper[col][col..]) {
                *cell -= f * pivot_cell;
            }
            b[row] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// All non-empty subsets of `0..n` of size `k`, in lexicographic order.
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// Given a row support and a column support of equal size `k`, find the
/// column mix `y` (over the col support) that makes every row-support
/// action earn the same payoff, if one exists with nonnegative weights.
fn indifference_mix(
    game: &Game,
    own_support: &[usize],
    other_support: &[usize],
    row_player: bool,
) -> Option<Vec<f64>> {
    let k = own_support.len();
    // unknowns: k weights + the common payoff u
    let n = k + 1;
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![0.0; n];
    // indifference rows: for each own action i: sum_j w_j * payoff(i, j) - u = 0
    for (row, &i) in own_support.iter().enumerate() {
        for (col, &j) in other_support.iter().enumerate() {
            a[row][col] = if row_player { game.payoff(i, j).0 } else { game.payoff(j, i).1 };
        }
        a[row][k] = -1.0;
    }
    // normalization: weights sum to 1
    for cell in &mut a[k][..k] {
        *cell = 1.0;
    }
    b[k] = 1.0;
    let sol = solve_linear(a, b)?;
    let weights = &sol[..k];
    if weights.iter().any(|w| *w < -EPS) {
        return None;
    }
    Some(weights.iter().map(|w| w.max(0.0)).collect())
}

/// Expand support weights to a full mixed strategy.
fn expand(support: &[usize], weights: &[f64], len: usize) -> Vec<f64> {
    let mut full = vec![0.0; len];
    for (&i, &w) in support.iter().zip(weights) {
        full[i] = w;
    }
    full
}

/// Enumerate mixed Nash equilibria by support enumeration. Returns
/// verified profiles `(x, y)`; includes pure equilibria (size-1 supports).
/// Profiles closer than `1e-6` in L∞ are deduplicated.
pub fn support_enumeration(game: &Game) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut found: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    let max_k = game.rows().min(game.cols());
    for k in 1..=max_k {
        for row_support in subsets(game.rows(), k) {
            for col_support in subsets(game.cols(), k) {
                // y makes the ROW player indifferent across row_support;
                // x makes the COLUMN player indifferent across col_support.
                let Some(y_w) = indifference_mix(game, &row_support, &col_support, true) else {
                    continue;
                };
                let Some(x_w) = indifference_mix(game, &col_support, &row_support, false) else {
                    continue;
                };
                let x = expand(&row_support, &x_w, game.rows());
                let y = expand(&col_support, &y_w, game.cols());
                if !is_nash(game, &x, &y, 1e-7) {
                    continue;
                }
                let dup = found.iter().any(|(fx, fy)| linf(fx, &x) < 1e-6 && linf(fy, &y) < 1e-6);
                if !dup {
                    found.push((x, y));
                }
            }
        }
    }
    found
}

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solver_works() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
        let sol = solve_linear(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-12);
        assert!((sol[1] - 1.0).abs() < 1e-12);
        // singular
        assert!(solve_linear(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn subsets_enumerate() {
        assert_eq!(subsets(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(2, 2), vec![vec![0, 1]]);
    }

    #[test]
    fn finds_the_matching_pennies_mix() {
        let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 1);
        let (x, y) = &eqs[0];
        assert!((x[0] - 0.5).abs() < 1e-9);
        assert!((y[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finds_all_three_equilibria_of_a_coordination_game() {
        // 2x2 coordination: two pure + one mixed equilibrium
        let g = Game::coordination(vec![1.0, 3.0]);
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 3, "got {eqs:?}");
        let pures = eqs.iter().filter(|(x, _)| x.iter().any(|v| (*v - 1.0).abs() < 1e-9)).count();
        assert_eq!(pures, 2);
        // the mixed one puts 3/4 on the LOW-payoff action (indifference)
        let mixed = eqs.iter().find(|(x, _)| x[0] > 0.0 && x[0] < 1.0).unwrap();
        assert!((mixed.0[0] - 0.75).abs() < 1e-9, "{:?}", mixed.0);
    }

    #[test]
    fn pd_has_exactly_one_equilibrium() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].0, vec![0.0, 1.0]);
        assert_eq!(eqs[0].1, vec![0.0, 1.0]);
    }

    #[test]
    fn three_by_three_rock_paper_scissors() {
        let g =
            Game::zero_sum(vec![vec![0.0, -1.0, 1.0], vec![1.0, 0.0, -1.0], vec![-1.0, 1.0, 0.0]]);
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 1, "RPS has only the uniform mix: {eqs:?}");
        for w in eqs[0].0.iter().chain(eqs[0].1.iter()) {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn agrees_with_the_2x2_closed_form() {
        use crate::solve::mixed_2x2;
        let g =
            Game::from_table(vec![vec![(2.0, -2.0), (-1.0, 1.0)], vec![(-1.0, 1.0), (1.0, -1.0)]]);
        let (p, q) = mixed_2x2(&g).unwrap();
        let eqs = support_enumeration(&g);
        let mixed = eqs
            .iter()
            .find(|(x, _)| x[0] > 1e-9 && x[0] < 1.0 - 1e-9)
            .expect("the mixed equilibrium");
        assert!((mixed.0[0] - p).abs() < 1e-9);
        assert!((mixed.1[0] - q).abs() < 1e-9);
    }

    #[test]
    fn every_reported_profile_is_verified_nash() {
        let g = Game::from_table(vec![
            vec![(3.0, 2.0), (0.0, 0.0), (1.0, 1.0)],
            vec![(0.0, 0.0), (2.0, 3.0), (1.0, 0.5)],
            vec![(1.0, 1.0), (0.5, 1.0), (2.0, 2.0)],
        ]);
        for (x, y) in support_enumeration(&g) {
            assert!(is_nash(&g, &x, &y, 1e-6), "unverified profile ({x:?}, {y:?})");
            assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}

//! Bounded in-memory structured trace.
//!
//! The paper's "design what happens when transparency fails" principle
//! demands that the substrate can always explain what it did. The trace is
//! a bounded ring of structured entries — plain events plus nested
//! `span_enter`/`span_exit` pairs carrying a topic, an optional stakeholder
//! and key/value fields — that scenario code, diagnostics (traceroute-style
//! blame reports) and the `tussle-cli trace` command read back.
//!
//! Every entry recorded here is also mirrored into the ambient observation
//! layer ([`crate::obs`]) when a run scope is active, so per-run digests
//! cover the trace stream even when the ring later evicts entries.

use crate::digest::{Fnv1a, RunDigest};
use crate::event::EventId;
use crate::obs;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What kind of record a trace entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A point event (the pre-span `record` shape).
    Event,
    /// The opening edge of a span.
    Enter,
    /// The closing edge of a span.
    Exit,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Subsystem topic, e.g. `"net.forward"` or `"econ.market"`.
    pub topic: String,
    /// Human-readable message (empty for pure span edges).
    pub message: String,
    /// Event, span-enter or span-exit.
    pub kind: SpanKind,
    /// The tussle party this record is attributed to, if any.
    pub stakeholder: Option<String>,
    /// Structured key/value payload.
    pub fields: Vec<(String, String)>,
    /// Span nesting depth at which the entry was recorded (0 = top level;
    /// an `Enter` records the depth of the span it opens).
    pub depth: u32,
    /// The engine event whose handler recorded this entry, when known.
    /// Deliberately **not** digested: event ids are positional bookkeeping
    /// derived from the already-digested schedule order, so stamping them
    /// must never change a [`RunDigest`].
    pub event: Option<EventId>,
}

impl TraceEntry {
    /// Absorb this entry into a hasher (the per-entry digest contribution).
    /// Note `event` is excluded by design — see its field doc.
    pub fn absorb_into(&self, h: &mut Fnv1a) {
        h.write_u8(match self.kind {
            SpanKind::Event => 0,
            SpanKind::Enter => 1,
            SpanKind::Exit => 2,
        });
        h.write_u64(self.time.as_micros());
        h.write_str(&self.topic);
        h.write_str(&self.message);
        match &self.stakeholder {
            None => h.write_u8(0),
            Some(s) => {
                h.write_u8(1);
                h.write_str(s);
            }
        }
        h.write_u64(self.fields.len() as u64);
        for (k, v) in &self.fields {
            h.write_str(k);
            h.write_str(v);
        }
        h.write_u64(self.depth as u64);
    }

    /// Render as a single line: `time topic [stakeholder] message {k=v ...}`.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        let indent = "  ".repeat(self.depth as usize);
        let edge = match self.kind {
            SpanKind::Event => "·",
            SpanKind::Enter => ">",
            SpanKind::Exit => "<",
        };
        out.push_str(&format!(
            "{:>10} {indent}{edge} {}",
            format!("{}us", self.time.as_micros()),
            self.topic
        ));
        if let Some(s) = &self.stakeholder {
            out.push_str(&format!(" [{s}]"));
        }
        if !self.message.is_empty() {
            out.push_str(&format!(" {}", self.message));
        }
        if !self.fields.is_empty() {
            let kv: Vec<String> = self.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(" {{{}}}", kv.join(" ")));
        }
        if let Some(e) = self.event {
            out.push_str(&format!(" @{e}"));
        }
        out
    }
}

/// A bounded ring buffer of structured trace entries with a span stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    /// Topics of currently open spans, innermost last.
    open: Vec<String>,
    /// The event currently being dispatched by the owning engine, if any;
    /// stamped onto every entry recorded while it is set.
    current_event: Option<EventId>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(4096)
    }
}

impl Trace {
    /// A trace ring holding at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
            open: Vec::new(),
            current_event: None,
        }
    }

    /// Set (or clear) the event stamped onto subsequently recorded entries.
    /// The engine calls this around every handler dispatch.
    pub fn set_current_event(&mut self, event: Option<EventId>) {
        self.current_event = event;
    }

    /// The topic of the innermost open span, if any. The engine captures
    /// this at schedule time so provenance records the span context a
    /// child event was scheduled from.
    pub fn current_span(&self) -> Option<&str> {
        self.open.last().map(String::as_str)
    }

    /// Disable recording (records and span edges are silently discarded).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enable recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    fn push(&mut self, entry: TraceEntry) {
        obs::absorb_entry(&entry);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Record a point event; evicts the oldest entry when full.
    pub fn record(&mut self, time: SimTime, topic: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        let depth = self.open.len() as u32;
        self.push(TraceEntry {
            time,
            topic: topic.to_owned(),
            message: message.into(),
            kind: SpanKind::Event,
            stakeholder: None,
            fields: Vec::new(),
            depth,
            event: self.current_event,
        });
    }

    /// Record a point event with a stakeholder and key/value fields.
    pub fn record_fields(
        &mut self,
        time: SimTime,
        topic: &str,
        stakeholder: Option<&str>,
        fields: &[(&str, &str)],
        message: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        let depth = self.open.len() as u32;
        self.push(TraceEntry {
            time,
            topic: topic.to_owned(),
            message: message.into(),
            kind: SpanKind::Event,
            stakeholder: stakeholder.map(str::to_owned),
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            depth,
            event: self.current_event,
        });
    }

    /// Open a span: records an `Enter` edge and pushes `topic` onto the
    /// span stack. Every `Enter` must be closed by [`Trace::span_exit`];
    /// the stack discipline makes emitted traces balanced by construction.
    pub fn span_enter(
        &mut self,
        time: SimTime,
        topic: &str,
        stakeholder: Option<&str>,
        fields: &[(&str, &str)],
    ) {
        if !self.enabled {
            return;
        }
        let depth = self.open.len() as u32;
        self.push(TraceEntry {
            time,
            topic: topic.to_owned(),
            message: String::new(),
            kind: SpanKind::Enter,
            stakeholder: stakeholder.map(str::to_owned),
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            depth,
            event: self.current_event,
        });
        self.open.push(topic.to_owned());
    }

    /// Close the innermost open span: records an `Exit` edge carrying the
    /// matching topic and returns it. A call with no open span records
    /// nothing and returns `None` — exits can never outnumber enters.
    pub fn span_exit(&mut self, time: SimTime, fields: &[(&str, &str)]) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let topic = self.open.pop()?;
        let depth = self.open.len() as u32;
        self.push(TraceEntry {
            time,
            topic: topic.clone(),
            message: String::new(),
            kind: SpanKind::Exit,
            stakeholder: None,
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            depth,
            event: self.current_event,
        });
        Some(topic)
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries whose topic starts with `prefix`.
    pub fn with_topic<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.topic.starts_with(prefix))
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all retained entries (the dropped count and span stack
    /// persist).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// FNV-1a digest over the retained structured entries. Invariant under
    /// ring-capacity changes that do not drop entries; see
    /// [`RunDigest::of_run`] for the trace + metrics combination.
    pub fn digest(&self) -> RunDigest {
        let mut h = Fnv1a::new();
        h.write_u64(self.entries.len() as u64);
        for e in &self.entries {
            e.absorb_into(&mut h);
        }
        RunDigest(h.finish())
    }
}

impl RunDigest {
    /// Digest of one engine run: the retained structured trace plus the
    /// final metrics snapshot. Two runs with equal digests recorded the
    /// same traces and ended with the same metrics — the one-line
    /// determinism check for code that owns its [`crate::Engine`].
    pub fn of_run(trace: &Trace, metrics: &crate::metrics::Metrics) -> RunDigest {
        let mut h = Fnv1a::new();
        h.write_u64(trace.entries.len() as u64);
        for e in &trace.entries {
            e.absorb_into(&mut h);
        }
        metrics.snapshot().absorb_into(&mut h);
        RunDigest(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(8);
        t.record(SimTime::from_micros(1), "a", "first");
        t.record(SimTime::from_micros(2), "b", "second");
        let msgs: Vec<_> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime::ZERO, "x", "1");
        t.record(SimTime::ZERO, "x", "2");
        t.record(SimTime::ZERO, "x", "3");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let msgs: Vec<_> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["2", "3"]);
    }

    #[test]
    fn topic_filter_uses_prefix() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, "net.forward", "f");
        t.record(SimTime::ZERO, "net.drop", "d");
        t.record(SimTime::ZERO, "econ.churn", "c");
        assert_eq!(t.with_topic("net.").count(), 2);
        assert_eq!(t.with_topic("econ").count(), 1);
        assert_eq!(t.with_topic("zzz").count(), 0);
    }

    #[test]
    fn disable_discards() {
        let mut t = Trace::default();
        t.disable();
        t.record(SimTime::ZERO, "x", "hidden");
        assert!(t.is_empty());
        t.enable();
        t.record(SimTime::ZERO, "x", "seen");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_keeps_dropped_count() {
        let mut t = Trace::with_capacity(1);
        t.record(SimTime::ZERO, "x", "1");
        t.record(SimTime::ZERO, "x", "2");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn spans_nest_and_carry_structure() {
        let mut t = Trace::default();
        t.span_enter(SimTime::ZERO, "econ.market", Some("provider"), &[("months", "12")]);
        t.record(SimTime::from_micros(5), "econ.price", "posted");
        t.span_enter(SimTime::from_micros(6), "econ.switch", None, &[]);
        assert_eq!(t.open_spans(), 2);
        assert_eq!(t.span_exit(SimTime::from_micros(7), &[]).as_deref(), Some("econ.switch"));
        assert_eq!(
            t.span_exit(SimTime::from_micros(9), &[("markup", "0.5")]).as_deref(),
            Some("econ.market")
        );
        assert_eq!(t.open_spans(), 0);

        let entries: Vec<_> = t.entries().collect();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].kind, SpanKind::Enter);
        assert_eq!(entries[0].depth, 0);
        assert_eq!(entries[0].stakeholder.as_deref(), Some("provider"));
        assert_eq!(entries[1].depth, 1, "event inside a span is nested");
        assert_eq!(entries[2].depth, 1);
        assert_eq!(entries[3].kind, SpanKind::Exit);
        assert_eq!(entries[3].topic, "econ.switch");
        assert_eq!(entries[4].topic, "econ.market");
        assert_eq!(entries[4].fields, vec![("markup".to_owned(), "0.5".to_owned())]);
    }

    #[test]
    fn unmatched_exit_is_a_noop() {
        let mut t = Trace::default();
        assert_eq!(t.span_exit(SimTime::ZERO, &[]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn digest_detects_any_change() {
        let mut a = Trace::default();
        a.span_enter(SimTime::ZERO, "x", None, &[("k", "v")]);
        a.span_exit(SimTime::from_micros(1), &[]);
        let mut b = Trace::default();
        b.span_enter(SimTime::ZERO, "x", None, &[("k", "w")]);
        b.span_exit(SimTime::from_micros(1), &[]);
        assert_ne!(a.digest(), b.digest(), "field value change flips the digest");

        let mut c = Trace::default();
        c.span_enter(SimTime::ZERO, "x", None, &[("k", "v")]);
        c.span_exit(SimTime::from_micros(1), &[]);
        assert_eq!(a.digest(), c.digest(), "identical streams agree");
    }

    #[test]
    fn digest_is_capacity_invariant_when_nothing_drops() {
        let fill = |t: &mut Trace| {
            for i in 0..10 {
                t.record(SimTime::from_micros(i), "t", format!("m{i}"));
            }
        };
        let mut small = Trace::with_capacity(16);
        let mut large = Trace::with_capacity(4096);
        fill(&mut small);
        fill(&mut large);
        assert_eq!(small.digest(), large.digest());
    }

    #[test]
    fn event_stamp_is_rendered_but_never_digested() {
        let mut plain = Trace::default();
        plain.record(SimTime::from_micros(1), "t", "m");
        let mut stamped = Trace::default();
        stamped.set_current_event(Some(EventId(9)));
        stamped.record(SimTime::from_micros(1), "t", "m");
        assert_eq!(stamped.entries().next().unwrap().event, Some(EventId(9)));
        assert!(stamped.entries().next().unwrap().to_line().ends_with("@e9"));
        assert_eq!(plain.digest(), stamped.digest(), "ids are positional, not semantic");
        stamped.set_current_event(None);
        stamped.record(SimTime::from_micros(2), "t", "m2");
        assert_eq!(stamped.entries().nth(1).unwrap().event, None);
    }

    #[test]
    fn current_span_tracks_innermost_open_topic() {
        let mut t = Trace::default();
        assert_eq!(t.current_span(), None);
        t.span_enter(SimTime::ZERO, "outer", None, &[]);
        t.span_enter(SimTime::ZERO, "inner", None, &[]);
        assert_eq!(t.current_span(), Some("inner"));
        t.span_exit(SimTime::ZERO, &[]);
        assert_eq!(t.current_span(), Some("outer"));
    }

    #[test]
    fn entry_lines_render_structure() {
        let mut t = Trace::default();
        t.span_enter(SimTime::from_micros(3), "net.forward", Some("isp"), &[("dst", "h3")]);
        t.record(SimTime::from_micros(4), "net.hop", "r1 -> r2");
        let lines: Vec<String> = t.entries().map(TraceEntry::to_line).collect();
        assert!(lines[0].contains("> net.forward"), "{}", lines[0]);
        assert!(lines[0].contains("[isp]"));
        assert!(lines[0].contains("{dst=h3}"));
        assert!(lines[1].contains("· net.hop"));
        assert!(lines[1].starts_with("       4us"), "{}", lines[1]);
    }
}

//! Offline vendored property-testing harness.
//!
//! A self-contained replacement for the slice of `proptest` this workspace
//! uses: the [`proptest!`] macro, range/`any`/`Just`/tuple/vec strategies,
//! regex-subset string strategies, `prop_map`, `prop_recursive`,
//! [`prop_oneof!`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, chosen for a hermetic offline build:
//!
//! * **No shrinking.** A failing case panics with its case number and the
//!   test's deterministic seed; cases are reproducible run-to-run, so the
//!   failing input can be regenerated exactly.
//! * **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   FNV-1a(`t`) mixed with `i` — there is no persistence file and no
//!   dependency on ambient entropy.
//! * `PROPTEST_CASES` in the environment overrides the case count, like
//!   upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::rc::Rc;

pub mod collection;
pub mod string;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// Alias so `prop::collection::vec(...)` works inside `proptest!` bodies.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Resolve the effective case count (`PROPTEST_CASES` wins).
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(configured).max(1)
}

/// The deterministic RNG driving generation for one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)) }
    }

    /// Uniform draw from a range.
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// level below and returns the strategy for one level up; generation
    /// picks a depth in `0..=depth` per value. The `_desired_size` /
    /// `_expected_branch_size` tuning knobs of upstream are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.range(0..=self.depth);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.range(0..self.choices.len());
        self.choices[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Pattern strategies: a `&str` generates strings matching a regex subset
/// (see [`string::generate_matching`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests; see the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> () { $body }),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed on case {}/{} (deterministic seed; rerun reproduces)",
                        stringify!($name), __case, __cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// Assert inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let _: u64 = any::<u64>().generate(&mut rng);
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = crate::collection::vec(0u64..100, 1..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10);
        let mut rng = crate::TestRng::for_case("compose", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10, "leaves come from 0..10");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))).boxed()
        });
        let mut rng = crate::TestRng::for_case("rec", 1);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, ys in crate::collection::vec(0u8..4, 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 13);
        }
    }
}

//! The identity framework.
//!
//! §V.B.1: "One could take this as a call for the imposition of a global
//! namespace of Internet users, with attached trust assessments. We believe
//! this is a bad idea. ... there are lots of ways that parties choose to
//! identify themselves to each other, many of which will be private to the
//! parties, based on role rather than individual name, etc. What is needed
//! is a framework that translates these diverse ways into lower level
//! network actions that control access."
//!
//! And on anonymity: "A possible outcome ... is that while it will be
//! possible to act anonymously, many people will choose not to communicate
//! with you if you do ... A compromise outcome of this tussle might be that
//! if you are trying to act in an anonymous way, it should be hard to
//! disguise this fact."

use serde::{Deserialize, Serialize};

/// The diverse ways a party may identify itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdentityScheme {
    /// No identity at all.
    Anonymous,
    /// A self-chosen stable pseudonym (linkable, not attributable).
    Pseudonym {
        /// The pseudonym's key.
        key: u64,
    },
    /// An identity certified by a third party.
    Certified {
        /// The certified subject id.
        id: u64,
        /// The certifying authority's id.
        authority: u64,
    },
    /// A role within an organization ("purchasing agent of org 7"),
    /// private to the parties — no global name involved.
    Role {
        /// Role label.
        role: String,
        /// Organization id.
        org: u64,
    },
    /// An anonymous party *pretending* to be identified: a fabricated tag.
    /// Exists so the framework can be tested against disguise attempts.
    ForgedTag {
        /// The tag being presented.
        fake: u64,
    },
}

/// How a receiver treats anonymous parties — the §V.B.1 "many people will
/// choose not to communicate with you" knob, per receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnonymityPolicy {
    /// Talk to anyone.
    AcceptAll,
    /// Refuse anonymous parties.
    RefuseAnonymous,
    /// Accept anonymous parties but cap what they may do.
    LimitAnonymous,
}

/// The translation layer from identity schemes to network actions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdentityFramework {
    /// Authorities this framework recognizes for certified identities.
    pub recognized_authorities: Vec<u64>,
    /// Organizations whose role identities this framework accepts.
    pub recognized_orgs: Vec<u64>,
    /// Tags already registered, used to detect forgeries. In a real system
    /// this is a cryptographic verification; here it is a registry.
    pub registered_tags: Vec<u64>,
}

impl IdentityFramework {
    /// A framework recognizing the given authorities and orgs.
    pub fn new(recognized_authorities: Vec<u64>, recognized_orgs: Vec<u64>) -> Self {
        IdentityFramework { recognized_authorities, recognized_orgs, registered_tags: Vec::new() }
    }

    /// Register a tag as genuinely issued (certification, pseudonym
    /// registration, role grant).
    pub fn register_tag(&mut self, tag: u64) {
        if !self.registered_tags.contains(&tag) {
            self.registered_tags.push(tag);
        }
    }

    /// Translate a scheme into the network-level identity tag carried in
    /// packets, or `None` when the scheme yields no usable tag.
    ///
    /// This is the "translates ... into lower level network actions"
    /// sentence as code: different schemes, one tag space, no global
    /// namespace required.
    pub fn network_tag(&self, scheme: &IdentityScheme) -> Option<u64> {
        match scheme {
            IdentityScheme::Anonymous => None,
            IdentityScheme::Pseudonym { key } => self.registered_tags.contains(key).then_some(*key),
            IdentityScheme::Certified { id, authority } => {
                (self.recognized_authorities.contains(authority)
                    && self.registered_tags.contains(id))
                .then_some(*id)
            }
            IdentityScheme::Role { role, org } => {
                if !self.recognized_orgs.contains(org) {
                    return None;
                }
                // role tags are derived, stable, and private to the org
                let tag = derive_role_tag(role, *org);
                self.registered_tags.contains(&tag).then_some(tag)
            }
            IdentityScheme::ForgedTag { fake } => {
                // the forgery presents a tag; verification catches it when
                // it was never registered
                self.registered_tags.contains(fake).then_some(*fake)
            }
        }
    }

    /// Is this party *effectively* anonymous — carrying no verifiable tag?
    pub fn effectively_anonymous(&self, scheme: &IdentityScheme) -> bool {
        self.network_tag(scheme).is_none()
    }

    /// Is the party anonymous but *disguising* it? The paper's compromise
    /// outcome wants this to be hard; the framework makes it detectable:
    /// a `ForgedTag` that fails verification is exactly "anonymous and
    /// trying to hide it".
    pub fn disguised_anonymity(&self, scheme: &IdentityScheme) -> bool {
        matches!(scheme, IdentityScheme::ForgedTag { fake } if !self.registered_tags.contains(fake))
    }

    /// Would a receiver with `policy` accept a sender using `scheme`, and
    /// with what restriction? Returns `(accepted, limited)`.
    pub fn admit(&self, policy: AnonymityPolicy, scheme: &IdentityScheme) -> (bool, bool) {
        let anon = self.effectively_anonymous(scheme);
        match (policy, anon) {
            (AnonymityPolicy::AcceptAll, _) => (true, false),
            (AnonymityPolicy::RefuseAnonymous, true) => (false, false),
            (AnonymityPolicy::RefuseAnonymous, false) => (true, false),
            (AnonymityPolicy::LimitAnonymous, true) => (true, true),
            (AnonymityPolicy::LimitAnonymous, false) => (true, false),
        }
    }
}

/// Derive the stable tag for a role within an org (FNV-1a).
pub fn derive_role_tag(role: &str, org: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in role.as_bytes().iter().chain(org.to_be_bytes().iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framework() -> IdentityFramework {
        let mut f = IdentityFramework::new(vec![100], vec![7]);
        f.register_tag(42); // certified id
        f.register_tag(55); // pseudonym
        f.register_tag(derive_role_tag("purchasing", 7));
        f
    }

    #[test]
    fn anonymous_has_no_tag() {
        let f = framework();
        assert_eq!(f.network_tag(&IdentityScheme::Anonymous), None);
        assert!(f.effectively_anonymous(&IdentityScheme::Anonymous));
    }

    #[test]
    fn registered_pseudonym_translates() {
        let f = framework();
        assert_eq!(f.network_tag(&IdentityScheme::Pseudonym { key: 55 }), Some(55));
        assert_eq!(f.network_tag(&IdentityScheme::Pseudonym { key: 56 }), None);
    }

    #[test]
    fn certified_requires_recognized_authority() {
        let f = framework();
        let good = IdentityScheme::Certified { id: 42, authority: 100 };
        let bad_authority = IdentityScheme::Certified { id: 42, authority: 999 };
        assert_eq!(f.network_tag(&good), Some(42));
        assert_eq!(f.network_tag(&bad_authority), None);
    }

    #[test]
    fn role_identities_work_without_global_names() {
        let f = framework();
        let role = IdentityScheme::Role { role: "purchasing".into(), org: 7 };
        assert!(f.network_tag(&role).is_some());
        // same role at an unrecognized org: nothing
        let foreign = IdentityScheme::Role { role: "purchasing".into(), org: 8 };
        assert_eq!(f.network_tag(&foreign), None);
        // unregistered role at a recognized org: nothing
        let unregistered = IdentityScheme::Role { role: "janitor".into(), org: 7 };
        assert_eq!(f.network_tag(&unregistered), None);
    }

    #[test]
    fn forged_tags_fail_verification_and_are_visible() {
        let f = framework();
        let forged = IdentityScheme::ForgedTag { fake: 9999 };
        assert_eq!(f.network_tag(&forged), None);
        assert!(f.effectively_anonymous(&forged));
        // "it should be hard to disguise this fact": the framework can tell
        // disguised anonymity from honest anonymity
        assert!(f.disguised_anonymity(&forged));
        assert!(!f.disguised_anonymity(&IdentityScheme::Anonymous));
    }

    #[test]
    fn stolen_registered_tag_does_pass() {
        // The framework is a registry, not magic: presenting a tag that IS
        // registered succeeds. Catching theft needs the trust graph and
        // mediators, not the translation layer.
        let f = framework();
        assert_eq!(f.network_tag(&IdentityScheme::ForgedTag { fake: 42 }), Some(42));
    }

    #[test]
    fn admission_policies() {
        let f = framework();
        let anon = IdentityScheme::Anonymous;
        let known = IdentityScheme::Pseudonym { key: 55 };
        assert_eq!(f.admit(AnonymityPolicy::AcceptAll, &anon), (true, false));
        assert_eq!(f.admit(AnonymityPolicy::RefuseAnonymous, &anon), (false, false));
        assert_eq!(f.admit(AnonymityPolicy::RefuseAnonymous, &known), (true, false));
        assert_eq!(f.admit(AnonymityPolicy::LimitAnonymous, &anon), (true, true));
        assert_eq!(f.admit(AnonymityPolicy::LimitAnonymous, &known), (true, false));
    }

    #[test]
    fn role_tags_are_stable_and_org_scoped() {
        let t1 = derive_role_tag("ops", 1);
        let t2 = derive_role_tag("ops", 1);
        let t3 = derive_role_tag("ops", 2);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }
}

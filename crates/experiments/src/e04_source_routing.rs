//! E4 — Provider routing vs. paid source routing (§V.A.4).
//!
//! Paper claim: "The Internet should support a mechanism for choice such as
//! source routing ... Today, service providers do not like loose source
//! routes, because ISPs do not receive any benefit when they carry traffic
//! directed by a source route. ... The design for provider-level source
//! routing must incorporate a recognition of the need for payment."
//!
//! Measured: a user whose BGP-selected path crosses a congested cheap
//! transit while a premium transit sits unused. Three regimes: provider
//! routing only; user source routes without paying (ISPs refuse); user
//! source routes with payment through the ledger (ISPs honor, premium path
//! used, transit earns revenue).

use std::collections::BTreeMap;
use tussle_core::{ExperimentReport, Table};
use tussle_econ::{AccountId, Ledger, Money};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Network, NodeId};
use tussle_routing::sourceroute::{authorize_route, enumerate_paths};
use tussle_routing::AsGraph;
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// The three §V.A.4 regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// BGP picks; the user has no say.
    ProviderRouting,
    /// The user source-routes but nobody pays the transit.
    SourceRoutingUnpaid,
    /// The user source-routes and compensates every on-path AS.
    SourceRoutingPaid,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::ProviderRouting => "provider routing (BGP)",
            Regime::SourceRoutingUnpaid => "source routing, unpaid",
            Regime::SourceRoutingPaid => "source routing, paid",
        }
    }
}

/// Result of one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingOutcome {
    /// Fraction of packets delivered.
    pub delivery_rate: f64,
    /// Mean latency of delivered packets (ms).
    pub mean_latency_ms: f64,
    /// Revenue the premium transit collected.
    pub premium_transit_revenue: Money,
}

struct World {
    net: Network,
    src_host: NodeId,
    cheap_router: NodeId,
    premium_router: NodeId,
    src_addr: Address,
    dst_addr: Address,
}

/// Topology: src -- srcISP -- {cheap AS10 (slow), premium AS20 (fast)} -- dstISP -- dst.
fn world() -> World {
    let mut net = Network::new();
    let src = net.add_host(Asn(1));
    let src_isp = net.add_router(Asn(1));
    let cheap = net.add_router(Asn(10));
    let premium = net.add_router(Asn(20));
    let dst_isp = net.add_router(Asn(2));
    let dst = net.add_host(Asn(2));
    net.connect(src, src_isp, SimTime::from_millis(1), 1_000_000_000);
    net.connect(src_isp, cheap, SimTime::from_millis(40), 1_000_000_000);
    net.connect(src_isp, premium, SimTime::from_millis(5), 1_000_000_000);
    net.connect(cheap, dst_isp, SimTime::from_millis(40), 1_000_000_000);
    net.connect(premium, dst_isp, SimTime::from_millis(5), 1_000_000_000);
    net.connect(dst_isp, dst, SimTime::from_millis(1), 1_000_000_000);

    let src_addr =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let dst_addr =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(src).bind(src_addr);
    net.node_mut(dst).bind(dst_addr);

    // BGP-equivalent FIBs: the provider prefers the CHEAP transit (it is
    // its customer route / lowest cost to itself — the user's latency is
    // not the provider's objective).
    let dp = Prefix::new(0x0b010000, 16);
    net.fib_mut(src).install(Prefix::DEFAULT, src_isp, 0);
    net.fib_mut(src_isp).install(dp, cheap, 0);
    net.fib_mut(cheap).install(dp, dst_isp, 0);
    net.fib_mut(premium).install(dp, dst_isp, 0);
    net.fib_mut(dst_isp).install(dp, dst, 0);

    // Transit ASes refuse source routes unless compensated.
    net.node_mut(cheap).honors_source_routes = false;
    net.node_mut(premium).honors_source_routes = false;
    // The user's own ISP forwards its customer's choices.
    net.node_mut(src_isp).honors_source_routes = true;

    World { net, src_host: src, cheap_router: cheap, premium_router: premium, src_addr, dst_addr }
}

/// The AS graph matching the topology, for path enumeration and pricing.
fn as_graph() -> AsGraph {
    let mut g = AsGraph::new();
    g.customer_of(Asn(1), Asn(10));
    g.customer_of(Asn(2), Asn(10));
    g.customer_of(Asn(1), Asn(20));
    g.customer_of(Asn(2), Asn(20));
    g
}

/// Everything one regime's flow needs, threaded through its event chain.
struct FlowState {
    w: World,
    ledger: Ledger,
    source_route: Vec<NodeId>,
    sent: usize,
    delivered: usize,
    latency_total_ms: f64,
}

/// Build a regime's world, choose (and if paid, pay for) its route.
fn flow_state(regime: Regime) -> FlowState {
    let mut w = world();
    let mut ledger = Ledger::new();
    let user = AccountId(1);
    let premium_acct = AccountId(20);
    ledger.open(user);
    ledger.open(premium_acct);
    ledger.mint(user, Money::from_dollars(1_000));

    // Premium transit asks $0.50 per flow for honoring a source route.
    let asking = BTreeMap::from([(Asn(20), 500_000u64), (Asn(10), 200_000u64)]);

    let source_route = match regime {
        Regime::ProviderRouting => Vec::new(),
        Regime::SourceRoutingUnpaid | Regime::SourceRoutingPaid => {
            // the user consults the route menu and picks the premium path
            let offers = enumerate_paths(&as_graph(), Asn(1), Asn(2), 4, &asking);
            let premium_offer =
                offers.iter().find(|o| o.path.contains(&Asn(20))).expect("premium path exists");
            if regime == Regime::SourceRoutingPaid {
                // pay once per flow batch; the transit flips to honoring
                ledger
                    .transfer(user, premium_acct, Money(premium_offer.price as i64), "transit AS20")
                    .expect("user is funded");
                let payments = BTreeMap::from([(Asn(20), premium_offer.price)]);
                authorize_route(&as_graph(), &premium_offer.path, &asking, &payments)
                    .expect("payment covers the ask");
                w.net.node_mut(w.premium_router).honors_source_routes = true;
            }
            vec![w.premium_router]
        }
    };
    let _ = w.cheap_router;
    FlowState { w, ledger, source_route, sent: 0, delivered: 0, latency_total_ms: 0.0 }
}

/// Send one batch of packets from `st`, mutating the delivery counters.
fn send_batch(st: &mut FlowState, n: usize, rng: &mut SimRng) {
    for _ in 0..n {
        let pkt = Packet::new(st.w.src_addr, st.w.dst_addr, Protocol::Udp, 9000, ports::VOIP)
            .with_source_route(st.source_route.clone());
        let rep = st.w.net.send(st.w.src_host, pkt, rng);
        if rep.delivered {
            st.delivered += 1;
            st.latency_total_ms += rep.latency.as_millis_f64();
        }
    }
    st.sent += n;
}

fn outcome_of(st: &FlowState) -> RoutingOutcome {
    RoutingOutcome {
        delivery_rate: st.delivered as f64 / st.sent as f64,
        mean_latency_ms: if st.delivered > 0 {
            st.latency_total_ms / st.delivered as f64
        } else {
            f64::NAN
        },
        premium_transit_revenue: st.ledger.total_received(AccountId(20)),
    }
}

/// Run one regime over `n_packets` (the pure loop the unit tests drive;
/// [`run`] replays the same flow as paced engine-event bursts).
pub fn run_regime(regime: Regime, n_packets: usize, seed: u64) -> RoutingOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e04");
    let mut st = flow_state(regime);
    send_batch(&mut st, n_packets, &mut rng);
    outcome_of(&st)
}

/// World for the engine-driven replay: settled outcomes per regime.
#[derive(Default)]
struct RoutingWorld {
    outcomes: Vec<(Regime, RoutingOutcome)>,
}

/// Flows per burst event in the engine replay.
const BURST: usize = 25;
/// Total flows per regime.
const N_FLOWS: usize = 200;

/// One paced burst of flows as an engine event; each burst schedules the
/// next after a seeded pacing lag, so a regime's 200 flows form one causal
/// chain whose forwarding draws come from the engine's rng stream.
fn run_burst(w: &mut RoutingWorld, ctx: &mut Ctx<RoutingWorld>, regime: Regime, mut st: FlowState) {
    ctx.span_enter(
        "e4.burst",
        Some("user"),
        &[("regime", regime.label()), ("sent", &st.sent.to_string())],
    );
    let n = BURST.min(N_FLOWS - st.sent);
    send_batch(&mut st, n, ctx.rng);
    if st.sent < N_FLOWS {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e4.pacing",
            Some("user"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} flows sent; next burst follows", st.sent),
        );
        ctx.span_exit(&[("delivered", &st.delivered.to_string())]);
        ctx.schedule_in(lag, move |w2: &mut RoutingWorld, ctx2| {
            run_burst(w2, ctx2, regime, st);
        });
    } else {
        let o = outcome_of(&st);
        ctx.trace_fields(
            "e4.settled",
            Some("isp"),
            &[("delivery_rate", &format!("{:.2}", o.delivery_rate))],
            format!("{} settles", regime.label()),
        );
        ctx.span_exit(&[("delivered", &st.delivered.to_string())]);
        w.outcomes.push((regime, o));
    }
}

/// Run E4 and produce the report. Each regime's flows run as a causal
/// chain of burst events on the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let regimes = [Regime::ProviderRouting, Regime::SourceRoutingUnpaid, Regime::SourceRoutingPaid];
    let mut eng = Engine::new(RoutingWorld::default(), seed);
    for (i, regime) in regimes.into_iter().enumerate() {
        // Each regime's route choice (and payment) is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut RoutingWorld, ctx| {
            ctx.span_enter("e4.route_choice", Some("provider"), &[("regime", regime.label())]);
            let st = flow_state(regime);
            ctx.span_exit(&[("paid", &(regime == Regime::SourceRoutingPaid).to_string())]);
            run_burst(w, ctx, regime, st);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Wide-area path control (200 VoIP flows; cheap transit 80ms, premium 10ms)",
        &["delivery rate", "mean latency (ms)", "premium transit revenue"],
    );
    let mut outcomes = Vec::new();
    for r in regimes {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(reg, _)| *reg == r)
            .map(|(_, o)| o.clone())
            .expect("every regime's flow settles");
        table.push_row(
            r.label(),
            &[
                format!("{:.2}", o.delivery_rate),
                format!("{:.1}", o.mean_latency_ms),
                o.premium_transit_revenue.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let (bgp, unpaid, paid) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    let shape_holds = bgp.delivery_rate > 0.99
        && unpaid.delivery_rate < 0.01 // refused by the transit
        && paid.delivery_rate > 0.99
        && paid.mean_latency_ms < bgp.mean_latency_ms / 2.0
        && paid.premium_transit_revenue.is_positive();

    ExperimentReport {
        id: "E4".into(),
        section: "V.A.4".into(),
        paper_claim: "Provider-controlled routing denies users path choice; unpaid source routes \
                      are refused by transit ASes that see no benefit; source routing coupled to \
                      payment delivers the premium path AND compensates the carrier."
            .into(),
        summary: format!(
            "BGP delivers at {:.0}ms over the cheap transit; unpaid source routes deliver {:.0}% \
             of traffic; paid source routes deliver at {:.0}ms and pay the premium transit {}.",
            bgp.mean_latency_ms,
            unpaid.delivery_rate * 100.0,
            paid.mean_latency_ms,
            paid.premium_transit_revenue
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgp_takes_the_slow_path() {
        let o = run_regime(Regime::ProviderRouting, 50, 1);
        assert!(o.delivery_rate > 0.99);
        assert!(o.mean_latency_ms > 80.0, "cheap transit is slow: {}", o.mean_latency_ms);
        assert_eq!(o.premium_transit_revenue, Money::ZERO);
    }

    #[test]
    fn unpaid_source_routes_are_refused() {
        let o = run_regime(Regime::SourceRoutingUnpaid, 50, 1);
        assert_eq!(o.delivery_rate, 0.0);
    }

    #[test]
    fn paid_source_routes_take_the_fast_path_and_pay() {
        let o = run_regime(Regime::SourceRoutingPaid, 50, 1);
        assert!(o.delivery_rate > 0.99);
        assert!(o.mean_latency_ms < 20.0, "premium path: {}", o.mean_latency_ms);
        assert_eq!(o.premium_transit_revenue, Money(500_000));
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! Observability-overhead bench: what the instrumentation costs when OFF.
//!
//! The observability layer's contract is zero-cost-when-disabled: with no
//! ambient observation scope active, every hook short-circuits on one
//! thread-local mode read, and a disabled trace rejects entries before
//! building them. This bench pins that down with an event-dispatch
//! workload — the engine loop where the hooks live — comparing handlers
//! that call the (disabled) trace against handlers that do not, and
//! asserts the ratio stays under 1.05.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench obs
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tussle_experiments::registry;
use tussle_sim::{obs, Engine, SimTime};

const EVENTS: u64 = 200_000;

/// A dispatch-bound workload: one self-rescheduling event chain of
/// `EVENTS` ticks. `traced` handlers go through `Ctx::trace` (which, with
/// the trace disabled and no scope active, must cost one branch).
fn run_chain(traced: bool) -> u64 {
    fn tick(traced: bool) -> impl FnOnce(&mut u64, &mut tussle_sim::Ctx<u64>) + 'static {
        move |world, ctx| {
            if traced {
                ctx.trace("bench.tick", "tick");
            }
            *world = world.wrapping_mul(6364136223846793005).wrapping_add(1);
            if *world != 0 {
                ctx.schedule_in(SimTime::from_micros(1), tick(traced));
            }
        }
    }
    let mut eng: Engine<u64> = Engine::new(1, 42);
    eng.trace_mut().disable();
    // Dispatch cost only: drop the engine-side provenance ring in both
    // arms so the ratio isolates the trace hooks under test.
    eng.provenance_mut().disable();
    eng.schedule_at(SimTime::ZERO, tick(traced));
    eng.run(EVENTS);
    eng.world
}

/// Best-of-N wall-clock, in nanoseconds.
fn best_of(n: usize, mut run: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one run")
}

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    g.bench_function("dispatch_untraced", |b| b.iter(|| black_box(run_chain(false))));
    g.bench_function("dispatch_traced_disabled", |b| b.iter(|| black_box(run_chain(true))));
    g.bench_function("experiments_no_scope", |b| {
        b.iter(|| {
            for (_, run) in registry() {
                black_box(run(black_box(2002)));
            }
        })
    });
    g.bench_function("experiments_cost_scope", |b| {
        b.iter(|| {
            let guard = obs::begin(obs::ObsMode::Cost);
            for (_, run) in registry() {
                black_box(run(black_box(2002)));
            }
            black_box(guard.finish());
        })
    });
    g.finish();

    // The acceptance gate: disabled instrumentation inside the dispatch
    // loop must stay within 5% of the same loop with no trace calls at
    // all. Warm both paths once, then take best-of-5 to shed scheduler
    // noise on the shared CI core.
    black_box(run_chain(false));
    black_box(run_chain(true));
    let base_ns = best_of(5, || {
        black_box(run_chain(false));
    });
    let traced_ns = best_of(5, || {
        black_box(run_chain(true));
    });
    let ratio = traced_ns as f64 / base_ns as f64;
    println!(
        "disabled-tracing overhead: untraced {base_ns} ns, traced-disabled {traced_ns} ns, \
         ratio {ratio:.3}"
    );
    assert!(ratio < 1.05, "disabled tracing is not zero-cost (ratio {ratio:.3})");
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);

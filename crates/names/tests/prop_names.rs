//! Property tests for naming: parse/display round trips, registry
//! first-come-first-served, and the separated design's isolation.

use proptest::prelude::*;
use tussle_names::namespace::{Name, Registry, RegistryError};
use tussle_names::separated::{MachineId, SeparatedNaming};

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_label(), 1..5).prop_map(|ls| ls.join("."))
}

proptest! {
    /// parse → display is the identity on normalized names.
    #[test]
    fn name_roundtrip(text in arb_name()) {
        let name = Name::parse(&text).unwrap();
        prop_assert_eq!(name.to_string(), text.to_ascii_lowercase());
        let again = Name::parse(&name.to_string()).unwrap();
        prop_assert_eq!(again, name);
    }

    /// `under` is reflexive and consistent with suffix structure.
    #[test]
    fn under_relation(child_extra in arb_label(), base in arb_name()) {
        let parent = Name::parse(&base).unwrap();
        let child = Name::parse(&format!("{child_extra}.{base}")).unwrap();
        prop_assert!(parent.under(&parent));
        prop_assert!(child.under(&parent));
        prop_assert!(!parent.under(&child));
    }

    /// FCFS: after any sequence of registrations, each name belongs to the
    /// FIRST registrant that claimed it, and re-registration always errors.
    #[test]
    fn registry_is_first_come_first_served(
        claims in proptest::collection::vec((arb_name(), 1u64..10, 1u32..1000), 1..40),
    ) {
        let mut reg = Registry::new();
        let mut expected: std::collections::BTreeMap<Name, u64> = Default::default();
        for (text, owner, target) in &claims {
            let name = Name::parse(text).unwrap();
            let result = reg.register(name.clone(), *owner, *target, false);
            match expected.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    prop_assert!(result.is_ok());
                    v.insert(*owner);
                }
                std::collections::btree_map::Entry::Occupied(_) => {
                    prop_assert_eq!(result, Err(RegistryError::Taken));
                }
            }
        }
        for (name, owner) in &expected {
            prop_assert_eq!(reg.record(name).unwrap().owner, *owner);
        }
    }

    /// In the separated design, ANY sequence of directory adjudications
    /// leaves every machine binding untouched.
    #[test]
    fn separated_design_isolates_machines(
        marks in proptest::collection::vec(arb_label(), 1..10),
        disputes in proptest::collection::vec((0usize..10, 100u64..200), 0..10),
    ) {
        let mut s = SeparatedNaming::new();
        for (i, m) in marks.iter().enumerate() {
            let mid = MachineId(i as u64);
            s.machines.bind(mid, 0xA000 + i as u32);
            s.claim(m, i as u64, mid);
        }
        for (idx, holder) in &disputes {
            let mark = &marks[idx % marks.len()];
            let new_machine = MachineId(1_000 + holder);
            s.machines.bind(new_machine, 0xF000);
            s.adjudicate(mark, *holder, new_machine);
        }
        // every original machine id still resolves to its original address
        for i in 0..marks.len() {
            prop_assert_eq!(s.machines.resolve(MachineId(i as u64)), Some(0xA000 + i as u32));
        }
    }
}

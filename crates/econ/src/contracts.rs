//! Inter-provider agreements.
//!
//! §I: "For the Internet to provide universal interconnection, ISPs must
//! interconnect, but ISPs are sometimes fierce competitors. It is not at
//! all clear what interests are being served ... when ISPs negotiate terms
//! of connection." Transit (customer pays provider per megabyte) and
//! settlement-free peering (free as long as traffic stays roughly
//! balanced) are the two contract shapes that tussle produced; both settle
//! through the [`crate::ledger`].

use crate::ledger::{AccountId, Ledger, LedgerError};
use crate::money::Money;
use serde::{Deserialize, Serialize};
use tussle_net::Asn;
use tussle_sim::{obs, SimTime};

/// A transit agreement: `customer` pays `provider` for carried traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitContract {
    /// The paying AS.
    pub customer: Asn,
    /// The carrying AS.
    pub provider: Asn,
    /// Price per megabyte.
    pub per_mb: Money,
    /// Fixed monthly commitment.
    pub monthly: Money,
}

impl TransitContract {
    /// The bill for one period in which `megabytes` were carried.
    pub fn bill(&self, megabytes: u64) -> Money {
        self.monthly + self.per_mb * megabytes as i64
    }

    /// Settle one period through the ledger. The settlement runs inside an
    /// ambient `econ.settle` span attributed to the provider — the party
    /// the money flows toward — so scoreboards and trace lanes see who the
    /// contract served.
    pub fn settle(
        &self,
        ledger: &mut Ledger,
        accounts: impl Fn(Asn) -> AccountId,
        megabytes: u64,
    ) -> Result<Money, LedgerError> {
        let amount = self.bill(megabytes);
        let mb = megabytes.to_string();
        obs::span_enter(SimTime::ZERO, "econ.settle", Some("provider"), &[("kind", "transit")]);
        let result = if amount.is_positive() {
            ledger.transfer(
                accounts(self.customer),
                accounts(self.provider),
                amount,
                &format!("transit {}->{}", self.customer, self.provider),
            )
        } else {
            Ok(())
        };
        obs::span_exit(
            SimTime::ZERO,
            &[("megabytes", &mb), ("ok", if result.is_ok() { "true" } else { "false" })],
        );
        result.map(|()| amount)
    }
}

/// A settlement-free peering agreement with a traffic-ratio cap.
///
/// Peers exchange traffic for free while the flow ratio stays under
/// `max_ratio`; beyond it, the heavier sender owes overage at `overage_per_mb`
/// — the standard re-negotiation threat point in peering disputes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeeringContract {
    /// One peer.
    pub a: Asn,
    /// The other peer.
    pub b: Asn,
    /// Largest acceptable (sent/received) imbalance, e.g. 2.0.
    pub max_ratio: f64,
    /// Price per megabyte beyond the balanced share.
    pub overage_per_mb: Money,
}

impl PeeringContract {
    /// Settle one period given traffic `a_to_b` and `b_to_a` in megabytes.
    ///
    /// Returns the overage payment (payer, payee, amount) if the ratio cap
    /// was breached, otherwise `None`.
    pub fn settle(
        &self,
        ledger: &mut Ledger,
        accounts: impl Fn(Asn) -> AccountId,
        a_to_b: u64,
        b_to_a: u64,
    ) -> Result<Option<(Asn, Asn, Money)>, LedgerError> {
        let (heavy, light, sent, received) = if a_to_b >= b_to_a {
            (self.a, self.b, a_to_b, b_to_a)
        } else {
            (self.b, self.a, b_to_a, a_to_b)
        };
        let balanced = received.max(1) as f64 * self.max_ratio;
        if (sent as f64) <= balanced {
            return Ok(None);
        }
        let overage_mb = sent - balanced as u64;
        let amount = self.overage_per_mb * overage_mb as i64;
        let mb = overage_mb.to_string();
        obs::span_enter(SimTime::ZERO, "econ.settle", Some("provider"), &[("kind", "peering")]);
        let result = if amount.is_positive() {
            ledger.transfer(
                accounts(heavy),
                accounts(light),
                amount,
                &format!("peering overage {heavy}->{light}"),
            )
        } else {
            Ok(())
        };
        obs::span_exit(
            SimTime::ZERO,
            &[("ok", if result.is_ok() { "true" } else { "false" }), ("overage_mb", &mb)],
        );
        result.map(|()| Some((heavy, light, amount)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(asn: Asn) -> AccountId {
        AccountId(asn.0 as u64)
    }

    fn ledger_for(asns: &[u32]) -> Ledger {
        let mut l = Ledger::new();
        for a in asns {
            l.open(acct(Asn(*a)));
            l.mint(acct(Asn(*a)), Money::from_dollars(1_000));
        }
        l
    }

    #[test]
    fn transit_bill_combines_fixed_and_usage() {
        let c = TransitContract {
            customer: Asn(2),
            provider: Asn(1),
            per_mb: Money(100),
            monthly: Money::from_dollars(10),
        };
        assert_eq!(c.bill(0), Money::from_dollars(10));
        assert_eq!(c.bill(1000), Money(10_100_000));
    }

    #[test]
    fn transit_settlement_moves_money_to_provider() {
        let mut l = ledger_for(&[1, 2]);
        let c = TransitContract {
            customer: Asn(2),
            provider: Asn(1),
            per_mb: Money(100),
            monthly: Money::ZERO,
        };
        let amount = c.settle(&mut l, acct, 500).unwrap();
        assert_eq!(amount, Money(50_000));
        assert_eq!(l.balance(acct(Asn(1))), Money::from_dollars(1_000) + Money(50_000));
        assert!(l.is_conserving());
    }

    #[test]
    fn balanced_peering_is_free() {
        let mut l = ledger_for(&[1, 2]);
        let p = PeeringContract { a: Asn(1), b: Asn(2), max_ratio: 2.0, overage_per_mb: Money(50) };
        let r = p.settle(&mut l, acct, 1000, 600).unwrap();
        assert_eq!(r, None);
        assert_eq!(l.balance(acct(Asn(1))), Money::from_dollars(1_000));
    }

    #[test]
    fn imbalanced_peering_charges_the_heavy_sender() {
        let mut l = ledger_for(&[1, 2]);
        let p = PeeringContract { a: Asn(1), b: Asn(2), max_ratio: 2.0, overage_per_mb: Money(50) };
        // AS1 sends 5000, AS2 sends 1000: balanced share is 2000,
        // overage 3000 MB.
        let (payer, payee, amount) = p.settle(&mut l, acct, 5000, 1000).unwrap().unwrap();
        assert_eq!(payer, Asn(1));
        assert_eq!(payee, Asn(2));
        assert_eq!(amount, Money(150_000));
        assert!(l.is_conserving());
    }

    #[test]
    fn imbalance_direction_is_symmetric() {
        let mut l = ledger_for(&[1, 2]);
        let p = PeeringContract { a: Asn(1), b: Asn(2), max_ratio: 1.5, overage_per_mb: Money(10) };
        let (payer, _, _) = p.settle(&mut l, acct, 100, 5_000).unwrap().unwrap();
        assert_eq!(payer, Asn(2));
    }

    #[test]
    fn zero_traffic_is_not_an_overage() {
        let mut l = ledger_for(&[1, 2]);
        let p = PeeringContract { a: Asn(1), b: Asn(2), max_ratio: 2.0, overage_per_mb: Money(50) };
        assert_eq!(p.settle(&mut l, acct, 0, 0).unwrap(), None);
    }
}

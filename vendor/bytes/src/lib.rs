//! Offline vendored subset of the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`.
//!
//! Only the construction/inspection surface this workspace uses is
//! provided; there is no `BytesMut` and no zero-copy slicing. Clones share
//! the allocation, which preserves the real crate's "payloads are cheap to
//! fan out" property that `tussle-net` relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes { data: Arc::from(s.into_bytes()) }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes { data: Arc::from(s.as_bytes()) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.data.iter().map(|&b| serde::Value::U64(b as u64)).collect())
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<u8>::from_value(v).map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn construction_and_views() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]).to_vec(), vec![1, 2]);
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from("abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from("abd"));
    }

    #[test]
    fn debug_is_readable() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x01")), "b\"a\\x01\"");
    }

    #[test]
    fn serde_round_trip() {
        let b = Bytes::from_static(b"\x00\xffhi");
        let back = Bytes::from_value(&b.to_value()).unwrap();
        assert_eq!(b, back);
    }
}

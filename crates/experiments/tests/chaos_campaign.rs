//! Integration tests for the chaos campaign: the acceptance criteria of
//! the robustness PR, end to end.
//!
//! * at intensity 0 the campaign reduces to *exactly* the plain seed sweep
//!   (same `ExperimentSweep`, byte for byte through JSON);
//! * the rendered report is byte-identical across worker-thread counts;
//! * an always-panicking experiment is reported as a structured failure
//!   without aborting the campaign or polluting its neighbours;
//! * the full 17-experiment registry gets a margin row each.

use tussle_core::ExperimentReport;
use tussle_experiments::{
    registry, run_chaos, run_chaos_entries, run_sweep, ChaosConfig, SweepConfig,
};

fn chaos_cfg(seeds: u64, intensities: &[f64], only: &[&str]) -> ChaosConfig {
    ChaosConfig {
        intensities: intensities.to_vec(),
        seeds,
        base_seed: 1,
        only: if only.is_empty() {
            None
        } else {
            Some(only.iter().map(|s| (*s).to_owned()).collect())
        },
        threads: None,
    }
}

#[test]
fn intensity_zero_column_equals_the_plain_sweep() {
    let only = ["E1", "E4", "E14"];
    let sweep = run_sweep(&SweepConfig {
        seeds: 3,
        base_seed: 1,
        only: Some(only.iter().map(|s| (*s).to_owned()).collect()),
        threads: None,
    })
    .unwrap();
    let chaos = run_chaos(&chaos_cfg(3, &[0.0, 0.5], &only)).unwrap();
    for (plain, stressed) in sweep.experiments.iter().zip(&chaos.experiments) {
        let at_zero = &stressed.intensities[0];
        assert_eq!(at_zero.intensity, 0.0);
        assert_eq!(
            &at_zero.sweep, plain,
            "{}: intensity 0 must be indistinguishable from no chaos harness at all",
            plain.id
        );
        assert_eq!(at_zero.panics, 0);
        assert_eq!(at_zero.faults.total(), 0, "no ambient rng draws at intensity 0");
    }
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        let cfg = ChaosConfig {
            threads: Some(threads),
            ..chaos_cfg(2, &[0.0, 0.4], &["E4", "E6", "E17"])
        };
        let report = run_chaos(&cfg).unwrap();
        (report.to_json(), report.to_markdown())
    };
    let one = render(1);
    let eight = render(8);
    assert_eq!(one.0, eight.0, "JSON differs between 1 and 8 threads");
    assert_eq!(one.1, eight.1, "markdown differs between 1 and 8 threads");
}

fn always_panics(seed: u64) -> ExperimentReport {
    panic!("deliberate test panic (seed {seed})");
}

#[test]
fn a_panicking_experiment_is_a_structured_failure_not_an_abort() {
    let mut entries = vec![("E14", registry()[13].1)];
    entries.push(("E99", always_panics as fn(u64) -> ExperimentReport));
    let report = run_chaos_entries(&entries, &chaos_cfg(2, &[0.0, 0.3], &[])).unwrap();

    let doomed = report.experiment("E99").unwrap();
    assert_eq!(doomed.margin, None, "a claim that panics everywhere has no margin");
    assert_eq!(doomed.total_panics(), 4, "2 intensities × 2 seeds, all panic");
    for stats in &doomed.intensities {
        assert_eq!(stats.sweep.holds, 0);
        let failure = stats.sweep.first_failure.as_ref().expect("failure is recorded");
        assert!(
            failure.report.summary.contains("PANIC (seed 1): deliberate test panic"),
            "panic message survives into the report: {}",
            failure.report.summary
        );
        assert!(!failure.report.shape_holds);
    }

    // the neighbour is untouched: same results as running it alone
    let alone = run_chaos(&chaos_cfg(2, &[0.0, 0.3], &["E14"])).unwrap();
    assert_eq!(report.experiment("E14").unwrap(), alone.experiment("E14").unwrap());
    assert!(report.any_panics());
    assert!(!alone.any_panics());
}

#[test]
fn full_registry_reports_a_margin_row_for_all_17_experiments() {
    let report = run_chaos(&chaos_cfg(1, &[0.0], &[])).unwrap();
    assert_eq!(report.experiments.len(), 17);
    let md = report.to_markdown();
    for (name, _) in registry() {
        let e = report.experiment(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(e.intensities.len(), 1);
        assert!(md.contains(&format!("| {} |", name)), "{name} missing from markdown");
        // single-intensity grid at 0: every shape holds, so margin is 0.0
        assert_eq!(e.margin, Some(0.0), "{name} failed at intensity 0");
    }
}

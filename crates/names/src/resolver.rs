//! Resolution, caching, and DNS perversion.
//!
//! §IV.D lists "intentional perversion of DNS information" among the
//! mechanisms parties actually use; §V.B's design-for-choice counterpart is
//! that "users can select what ... server they use". A [`Resolver`] either
//! answers honestly from the registry or applies its operator's rewrites
//! (NXDOMAIN → ad server, blocked names → warning page). The user-side
//! counter-mechanism is switching resolvers.

use crate::namespace::{Name, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of answers a resolver gives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolverKind {
    /// Answers exactly what the registry says.
    Honest,
    /// Applies its operator's rewrites before (and instead of) the truth.
    Perverted {
        /// Names rewritten to operator-chosen targets (censorship,
        /// "helpful" redirection).
        rewrites: BTreeMap<Name, u32>,
        /// Where failed lookups are redirected (the NXDOMAIN ad server), if
        /// anywhere.
        nxdomain_redirect: Option<u32>,
    },
}

/// A caching resolver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resolver {
    /// Operator behaviour.
    pub kind: ResolverKind,
    cache: BTreeMap<Name, u32>,
    /// Cache hits served (metric).
    pub cache_hits: u64,
    /// Authoritative lookups performed (metric).
    pub lookups: u64,
}

impl Resolver {
    /// An honest resolver.
    pub fn honest() -> Self {
        Resolver { kind: ResolverKind::Honest, cache: BTreeMap::new(), cache_hits: 0, lookups: 0 }
    }

    /// A perverted resolver with the given rewrites.
    pub fn perverted(rewrites: BTreeMap<Name, u32>, nxdomain_redirect: Option<u32>) -> Self {
        Resolver {
            kind: ResolverKind::Perverted { rewrites, nxdomain_redirect },
            cache: BTreeMap::new(),
            cache_hits: 0,
            lookups: 0,
        }
    }

    /// Resolve a name against the registry, applying operator behaviour
    /// and caching positive answers.
    pub fn resolve(&mut self, name: &Name, registry: &Registry) -> Option<u32> {
        if let Some(hit) = self.cache.get(name) {
            self.cache_hits += 1;
            return Some(*hit);
        }
        self.lookups += 1;
        let answer = match &self.kind {
            ResolverKind::Honest => registry.resolve(name),
            ResolverKind::Perverted { rewrites, nxdomain_redirect } => {
                if let Some(forced) = rewrites.get(name) {
                    Some(*forced)
                } else {
                    registry.resolve(name).or(*nxdomain_redirect)
                }
            }
        };
        if let Some(a) = answer {
            self.cache.insert(name.clone(), a);
        }
        answer
    }

    /// Drop the cache (e.g. after the registry changed under a dispute —
    /// the "kludges to the DNS" of §VI.A live exactly here).
    pub fn flush(&mut self) {
        self.cache.clear();
    }

    /// Does this resolver's answer differ from the registry's truth? The
    /// §IV.C visibility question, testable per name.
    pub fn lies_about(&mut self, name: &Name, registry: &Registry) -> bool {
        let truth = registry.resolve(name);
        let said = self.resolve(name, registry);
        truth != said
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(n("example.com"), 1, 0xAA, false).unwrap();
        r.register(n("banned.com"), 2, 0xBB, false).unwrap();
        r
    }

    #[test]
    fn honest_resolution_matches_registry() {
        let reg = registry();
        let mut res = Resolver::honest();
        assert_eq!(res.resolve(&n("example.com"), &reg), Some(0xAA));
        assert_eq!(res.resolve(&n("missing.com"), &reg), None);
        assert!(!res.lies_about(&n("example.com"), &reg));
    }

    #[test]
    fn cache_serves_repeats() {
        let reg = registry();
        let mut res = Resolver::honest();
        res.resolve(&n("example.com"), &reg);
        res.resolve(&n("example.com"), &reg);
        assert_eq!(res.lookups, 1);
        assert_eq!(res.cache_hits, 1);
        res.flush();
        res.resolve(&n("example.com"), &reg);
        assert_eq!(res.lookups, 2);
    }

    #[test]
    fn stale_cache_after_registry_change() {
        let mut reg = registry();
        let mut res = Resolver::honest();
        assert_eq!(res.resolve(&n("example.com"), &reg), Some(0xAA));
        reg.update_target(&n("example.com"), 0xCC).unwrap();
        // cache still says 0xAA — the operational pain disputes cause
        assert_eq!(res.resolve(&n("example.com"), &reg), Some(0xAA));
        res.flush();
        assert_eq!(res.resolve(&n("example.com"), &reg), Some(0xCC));
    }

    #[test]
    fn perverted_resolver_rewrites() {
        let reg = registry();
        let rewrites = BTreeMap::from([(n("banned.com"), 0xDEAD)]);
        let mut res = Resolver::perverted(rewrites, None);
        assert_eq!(res.resolve(&n("banned.com"), &reg), Some(0xDEAD));
        assert!(res.lies_about(&n("banned.com"), &reg));
        // unrelated names answered honestly
        assert!(!res.lies_about(&n("example.com"), &reg));
    }

    #[test]
    fn nxdomain_redirection() {
        let reg = registry();
        let mut res = Resolver::perverted(BTreeMap::new(), Some(0xAD));
        assert_eq!(res.resolve(&n("no-such-name.com"), &reg), Some(0xAD));
        assert!(res.lies_about(&n("no-such-name.com"), &reg));
    }

    #[test]
    fn user_choice_of_resolver_defeats_perversion() {
        // the §IV.B move: pick a different server
        let reg = registry();
        let rewrites = BTreeMap::from([(n("banned.com"), 0xDEAD)]);
        let mut isp = Resolver::perverted(rewrites, None);
        let mut third_party = Resolver::honest();
        assert_eq!(isp.resolve(&n("banned.com"), &reg), Some(0xDEAD));
        assert_eq!(third_party.resolve(&n("banned.com"), &reg), Some(0xBB));
    }
}

//! # tussle-names — naming, DNS perversion, and the trademark entanglement
//!
//! §IV.A uses the DNS as the worked example of *failing* to modularize
//! along tussle boundaries: "The current design is entangled in debate
//! because DNS names are used both to name machines and to express
//! trademark. In retrospect ... names that express trademarks should be
//! used for as little else as possible."
//!
//! * [`namespace`] — hierarchical names and a registry mapping them to
//!   machine addresses (the entangled design the Internet actually has).
//! * [`resolver`] — resolution with caching and *perversion*: the
//!   "intentional perversion of DNS information" (§IV.D) an ISP deploys as
//!   a tussle mechanism, and the user counter-move of choosing a different
//!   resolver (design for choice).
//! * [`trademark`] — trademark claims and a UDRP-style dispute process
//!   that, in the entangled design, transfers or suspends *machine* names
//!   and thereby breaks running services: measurable collateral damage.
//! * [`separated`] — the design the paper recommends: machine identifiers
//!   that "express trademarks ... as little as possible", with a separate
//!   human-facing directory where the trademark tussle plays out without
//!   touching machine naming.
//!
//! ## Example
//!
//! ```
//! use tussle_names::namespace::{Name, Registry};
//!
//! let mut registry = Registry::new();
//! let name = Name::parse("acme.com").unwrap();
//! registry.register(name.clone(), 5, 0xA0, true).unwrap();
//! assert_eq!(registry.resolve(&name), Some(0xA0));
//! // a dispute suspension breaks the *machine* name — the entanglement
//! registry.suspend(&name).unwrap();
//! assert_eq!(registry.resolve(&name), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mailbox;
pub mod namespace;
pub mod resolver;
pub mod separated;
pub mod trademark;

pub use mailbox::{DomainOwnership, MailOutcome, MailSystem, MailboxAddress};
pub use namespace::{Name, NameRecord, Registry, RegistryError};
pub use resolver::{Resolver, ResolverKind};
pub use separated::{MachineDirectory, MachineId, SeparatedNaming};
pub use trademark::{Dispute, DisputeOutcome, DisputeProcess, Trademark};

//! E12 — Actor-network churn and freezing (§II.C).
//!
//! Paper claim: "When new applications and user groups cease to come to the
//! Internet, and the set of actors in the actor network becomes fixed, then
//! we can assume that the tensions and tussles in the network will begin to
//! be resolved, and this will imply a freezing of the actor network, and a
//! freezing of the Internet. So we should look for a time when innovation
//! slows, not just as a signal but also as a pre-condition of a durably
//! formed and unchangeable Internet."
//!
//! Measured: a seeded actor network run under a sweep of entrant arrival
//! rates; we record whether (and when) the network freezes, final tussle
//! energy, and durability.

use tussle_actors::{ActorKind, ActorNetwork, ChurnProcess, FreezeDetector};
use tussle_core::{ExperimentReport, Table};
use tussle_sim::SimRng;

/// Outcome for one arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// Entrants admitted over the run.
    pub entrants: u64,
    /// Step at which the network froze, if it did.
    pub frozen_at: Option<usize>,
    /// Final tussle energy.
    pub final_energy: f64,
    /// Final durability.
    pub final_durability: f64,
}

/// Run one arrival rate for `steps`.
pub fn run_rate(rate: f64, steps: usize, seed: u64) -> ChurnOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e12");
    let mut net = ActorNetwork::new(3);
    // the founding population: users, an ISP, the protocol suite, a law
    let users = net.add_actor(ActorKind::Human, "users", vec![0.9, -0.4, 0.1]);
    let isp = net.add_actor(ActorKind::Institution, "isp", vec![-0.8, 0.6, 0.0]);
    let ip = net.add_actor(ActorKind::Technology, "ip", vec![0.0, 0.0, 0.0]);
    let law = net.add_actor(ActorKind::Institution, "telecom-law", vec![-0.2, 0.8, -0.5]);
    net.align(users, ip, 0.7);
    net.align(isp, ip, 0.7);
    net.align(isp, law, 0.5);
    net.align(users, isp, 0.4);

    let mut churn = ChurnProcess::new(rate);
    let mut det = FreezeDetector::new(0.05, 25);
    for _ in 0..steps {
        let admitted = churn.step(&mut net, &mut rng);
        det.observe(admitted, net.tussle_energy());
    }
    ChurnOutcome {
        entrants: churn.entrants(),
        frozen_at: det.frozen_at(),
        final_energy: net.tussle_energy(),
        final_durability: net.durability(),
    }
}

/// Run E12 and produce the report.
pub fn run(seed: u64) -> ExperimentReport {
    let steps = 600;
    let rates = [0.0, 0.05, 0.5, 2.0];
    let mut table = Table::new(
        "Actor-network evolution vs. entrant arrival rate (600 steps)",
        &["entrants", "frozen at step", "final tussle energy", "final durability"],
    );
    let mut outcomes = Vec::new();
    for rate in rates {
        let o = run_rate(rate, steps, seed);
        table.push_row(
            &format!("rate={rate}"),
            &[
                o.entrants.to_string(),
                o.frozen_at.map(|s| s.to_string()).unwrap_or_else(|| "never".into()),
                format!("{:.3}", o.final_energy),
                format!("{:.2}", o.final_durability),
            ],
        );
        outcomes.push(o);
    }
    let closed = &outcomes[0];
    let busy = &outcomes[2];
    let packed = &outcomes[3];
    let shape_holds = closed.frozen_at.is_some()
        && busy.frozen_at.is_none()
        && packed.frozen_at.is_none()
        && packed.final_energy > closed.final_energy
        && closed.final_durability > 0.5; // the frozen network is durable

    ExperimentReport {
        id: "E12".into(),
        section: "II.C".into(),
        paper_claim: "Continuous entry of new actors keeps the actor network (and hence the \
                      Internet) changeable; when entrants stop, tussles resolve, the network \
                      hardens, and the architecture freezes."
            .into(),
        summary: format!(
            "rate 0 freezes at step {} with durability {:.2}; rate 0.5 and 2.0 never freeze \
             (final tussle energy {:.2} and {:.2}).",
            closed.frozen_at.unwrap_or(0),
            closed.final_durability,
            busy.final_energy,
            packed.final_energy,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_networks_freeze_hard() {
        let o = run_rate(0.0, 600, 1);
        assert!(o.frozen_at.is_some());
        assert!(o.final_energy < 0.05);
        assert!(o.final_durability > 0.5);
        assert_eq!(o.entrants, 0);
    }

    #[test]
    fn open_networks_stay_fluid() {
        let o = run_rate(1.0, 600, 1);
        assert!(o.frozen_at.is_none());
        assert!(o.final_energy > 0.05);
        assert!(o.entrants > 300);
    }

    #[test]
    fn more_churn_more_tussle() {
        let slow = run_rate(0.1, 400, 2);
        let fast = run_rate(2.0, 400, 2);
        assert!(fast.final_energy > slow.final_energy);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! E1 — Provider lock-in from IP addressing (§V.A.1).
//!
//! Paper claim: "Either a customer is locked into his provider by the
//! provider-based addresses, or he obtains a separate block of addresses
//! that is not topologically significant and therefore adds to the size of
//! the forwarding tables in the core of the network. Mechanisms that favor
//! the consumer in this tussle include dynamic host numbering (DHCP) and
//! dynamic update of DNS entries."
//!
//! Measured: a duopoly access market where the switching cost is set by
//! the addressing mode (provider-assigned = painful manual renumbering;
//! PA + DHCP/dynamic-DNS = cheap renumbering; provider-independent = no
//! renumbering at all), and a core-router FIB whose size depends on
//! whether customer blocks aggregate.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::{Consumer, Market, Money, Provider};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::Network;
use tussle_sim::SimTime;

/// The three addressing modes of the §V.A.1 tussle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressingMode {
    /// Provider-assigned, static configuration: switching means manual
    /// renumbering of every host, DNS entry and firewall rule.
    ProviderAssignedStatic,
    /// Provider-assigned with DHCP + dynamic DNS: renumbering is cheap.
    ProviderAssignedDynamic,
    /// Provider-independent: portable addresses, zero renumbering, but
    /// one core route per customer.
    ProviderIndependent,
}

impl AddressingMode {
    fn label(self) -> &'static str {
        match self {
            AddressingMode::ProviderAssignedStatic => "PA-static",
            AddressingMode::ProviderAssignedDynamic => "PA+DHCP+dynDNS",
            AddressingMode::ProviderIndependent => "PI",
        }
    }

    /// The one-time switching cost the mode implies.
    fn switching_cost(self) -> Money {
        match self {
            AddressingMode::ProviderAssignedStatic => Money::from_dollars(600),
            AddressingMode::ProviderAssignedDynamic => Money::from_dollars(40),
            AddressingMode::ProviderIndependent => Money::from_dollars(5),
        }
    }
}

/// Results for one addressing mode.
#[derive(Debug, Clone, PartialEq)]
pub struct LockinOutcome {
    /// Equilibrium markup over marginal cost.
    pub markup: f64,
    /// Equilibrium average headline price.
    pub avg_price: Money,
    /// Core FIB entries needed to route to all customers.
    pub core_fib_entries: usize,
}

/// Run one addressing mode: a duopoly over `n_consumers`, plus the core
/// routing table the mode implies.
pub fn run_mode(mode: AddressingMode, n_consumers: u64, months: usize) -> LockinOutcome {
    // --- market side -----------------------------------------------------
    let consumers: Vec<Consumer> = (0..n_consumers)
        .map(|id| Consumer {
            id,
            value: Money::from_dollars(100),
            usage_mb: 1000,
            runs_server: false,
            tunnels: false,
            switching_cost: mode.switching_cost(),
            provider: None,
        })
        .collect();
    let providers = vec![
        Provider::flat("isp-a", Money::from_dollars(60), Money::from_dollars(20)),
        Provider::flat("isp-b", Money::from_dollars(60), Money::from_dollars(20)),
    ];
    let mut market = Market::new(consumers, providers);
    let report = market.run(months);

    // --- routing side -----------------------------------------------------
    let core_fib_entries = core_fib_for(mode, n_consumers as usize);

    LockinOutcome { markup: report.avg_markup, avg_price: report.avg_headline, core_fib_entries }
}

/// Build the core topology for a mode and count the core router's FIB.
fn core_fib_for(mode: AddressingMode, n_customers: usize) -> usize {
    let mut net = Network::new();
    let core = net.add_router(Asn(0));
    let isp_a = net.add_router(Asn(1));
    let isp_b = net.add_router(Asn(2));
    net.connect(core, isp_a, SimTime::from_millis(5), 1_000_000_000);
    net.connect(core, isp_b, SimTime::from_millis(5), 1_000_000_000);

    let agg_a = Prefix::new(0x0a00_0000, 8);
    let agg_b = Prefix::new(0x0b00_0000, 8);

    match mode {
        AddressingMode::ProviderAssignedStatic | AddressingMode::ProviderAssignedDynamic => {
            // customers live inside their provider's aggregate: the core
            // needs exactly one route per provider.
            for (i, _) in (0..n_customers).enumerate() {
                let (asn, agg, via) =
                    if i % 2 == 0 { (Asn(1), agg_a, isp_a) } else { (Asn(2), agg_b, isp_b) };
                let block = agg.subprefix(24, i as u32);
                let host = net.add_host(asn);
                let addr = Address::in_prefix(block, 1, AddressOrigin::ProviderAssigned(asn));
                net.node_mut(host).bind(addr);
                let _ = via;
            }
            net.fib_mut(core).install(agg_a, isp_a, 0);
            net.fib_mut(core).install(agg_b, isp_b, 0);
        }
        AddressingMode::ProviderIndependent => {
            // every customer brings their own block: the core carries one
            // route per customer.
            for i in 0..n_customers {
                let asn = if i % 2 == 0 { Asn(1) } else { Asn(2) };
                let via = if i % 2 == 0 { isp_a } else { isp_b };
                let block = Prefix::new(0xc000_0000 | ((i as u32) << 8), 24);
                let host = net.add_host(asn);
                let addr = Address::in_prefix(block, 1, AddressOrigin::ProviderIndependent);
                net.node_mut(host).bind(addr);
                net.fib_mut(core).install(block, via, 0);
            }
        }
    }
    net.fib(core).len()
}

/// Run E1 and produce the report.
pub fn run(_seed: u64) -> ExperimentReport {
    let n = 30;
    let months = 80;
    let modes = [
        AddressingMode::ProviderAssignedStatic,
        AddressingMode::ProviderAssignedDynamic,
        AddressingMode::ProviderIndependent,
    ];
    let mut table = Table::new(
        "Lock-in and routing cost by addressing mode (duopoly, 30 consumers)",
        &["switching cost", "markup", "avg price", "core FIB entries"],
    );
    let mut outcomes = Vec::new();
    for mode in modes {
        let o = run_mode(mode, n, months);
        table.push_row(
            mode.label(),
            &[
                mode.switching_cost().to_string(),
                format!("{:.2}", o.markup),
                o.avg_price.to_string(),
                o.core_fib_entries.to_string(),
            ],
        );
        outcomes.push((mode, o));
    }

    let pa = &outcomes[0].1;
    let dhcp = &outcomes[1].1;
    let pi = &outcomes[2].1;
    // The paper's shape: static PA sustains the highest markup; both
    // consumer-favouring mechanisms discipline price; PI pays for it in
    // core routing state.
    let shape_holds = pa.markup > dhcp.markup
        && pa.markup > pi.markup
        && pi.core_fib_entries > 10 * pa.core_fib_entries;

    ExperimentReport {
        id: "E1".into(),
        section: "V.A.1".into(),
        paper_claim: "Provider-based addresses lock customers in (sustaining a price markup); \
                      DHCP/dynamic-DNS or provider-independent addresses restore competition, \
                      but PI blocks inflate core forwarding tables."
            .into(),
        summary: format!(
            "markup: PA-static {:.2} vs PA+DHCP {:.2} vs PI {:.2}; core FIB: {} vs {} vs {} entries.",
            pa.markup, dhcp.markup, pi.markup,
            pa.core_fib_entries, dhcp.core_fib_entries, pi.core_fib_entries
        ),
        table,
        shape_holds,
        cost: None,
            scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockin_raises_markup() {
        let locked = run_mode(AddressingMode::ProviderAssignedStatic, 20, 60);
        let free = run_mode(AddressingMode::ProviderAssignedDynamic, 20, 60);
        assert!(locked.markup > free.markup, "locked {} vs free {}", locked.markup, free.markup);
    }

    #[test]
    fn pi_blocks_blow_up_the_core_fib() {
        let pa = run_mode(AddressingMode::ProviderAssignedStatic, 40, 1);
        let pi = run_mode(AddressingMode::ProviderIndependent, 40, 1);
        assert_eq!(pa.core_fib_entries, 2, "one aggregate per provider");
        assert_eq!(pi.core_fib_entries, 40, "one route per customer");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 3);
    }
}

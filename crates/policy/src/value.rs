//! Values and requests.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A runtime value in the policy language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Homogeneous-ish list (used with `in`).
    List(Vec<Value>),
}

impl Value {
    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::List(_) => "list",
        }
    }

    /// Truthiness: only booleans are truthy/falsy; everything else is a
    /// type error at the call site.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A request: the attribute bag a policy decision is made over.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Request {
    attrs: BTreeMap<String, Value>,
}

impl Request {
    /// Empty request.
    pub fn new() -> Self {
        Request::default()
    }

    /// Builder: set an attribute.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.attrs.insert(key.to_owned(), value.into());
        self
    }

    /// Look up an attribute.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Attribute names present.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(|k| k.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn as_bool_only_for_bools() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn request_builder() {
        let r = Request::new().with("action", "connect").with("port", 80i64);
        assert_eq!(r.get("action"), Some(&Value::Str("connect".into())));
        assert_eq!(r.get("port"), Some(&Value::Int(80)));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.keys().count(), 2);
    }
}

//! Property tests for the game-theory substrate.

use proptest::prelude::*;
use tussle_game::auction::{run_auction, truthful_vs_deviation, AuctionRule};
use tussle_game::evolution::Replicator;
use tussle_game::solve::{is_nash, mixed_2x2, pure_nash, pure_profile};
use tussle_game::Game;

proptest! {
    /// Vickrey truthfulness: across random value profiles and deviations,
    /// bidding the true value never does strictly worse.
    #[test]
    fn vickrey_truthful(
        others in proptest::collection::vec(0.0f64..100.0, 1..6),
        value in 0.0f64..100.0,
        alt in 0.0f64..150.0,
    ) {
        let (truthful, deviant) = truthful_vs_deviation(&others, value, alt);
        prop_assert!(truthful >= deviant - 1e-9,
            "profitable deviation: truthful {truthful} < deviant {deviant}");
    }

    /// A Vickrey winner never pays more than their bid; a first-price
    /// winner pays exactly their bid.
    #[test]
    fn auction_price_bounds(bids in proptest::collection::vec(0.0f64..1000.0, 1..8)) {
        let second = run_auction(AuctionRule::SecondPrice, &bids).unwrap();
        prop_assert!(second.price <= bids[second.winner] + 1e-12);
        let first = run_auction(AuctionRule::FirstPrice, &bids).unwrap();
        prop_assert_eq!(first.price, bids[first.winner]);
        // both rules award the item to a maximal bidder
        let max = bids.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(bids[second.winner], max);
    }

    /// Every profile reported by `pure_nash` verifies as a Nash profile,
    /// and every non-reported profile admits a profitable deviation.
    #[test]
    fn pure_nash_is_sound_and_complete(
        cells in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 9..=9),
    ) {
        let table: Vec<Vec<(f64, f64)>> =
            cells.chunks(3).map(|row| row.to_vec()).collect();
        let g = Game::from_table(table);
        let eqs = pure_nash(&g);
        for i in 0..3 {
            for j in 0..3 {
                let (x, y) = pure_profile(&g, i, j);
                let verified = is_nash(&g, &x, &y, 1e-9);
                prop_assert_eq!(eqs.contains(&(i, j)), verified, "mismatch at ({}, {})", i, j);
            }
        }
    }

    /// When `mixed_2x2` returns a profile it is a verified Nash
    /// equilibrium.
    #[test]
    fn mixed_2x2_verifies(
        a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0, d in -5.0f64..5.0,
        e in -5.0f64..5.0, f in -5.0f64..5.0, g_ in -5.0f64..5.0, h in -5.0f64..5.0,
    ) {
        let g = Game::from_table(vec![
            vec![(a, e), (b, f)],
            vec![(c, g_), (d, h)],
        ]);
        if let Some((p, q)) = mixed_2x2(&g) {
            prop_assert!(is_nash(&g, &[p, 1.0 - p], &[q, 1.0 - q], 1e-6),
                "mixed profile ({p},{q}) failed verification");
        }
    }

    /// Replicator dynamics keeps the population on the simplex.
    #[test]
    fn replicator_stays_on_simplex(
        pay in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3..=3), 3..=3),
        steps in 1usize..200,
    ) {
        let mut r = Replicator::uniform(pay);
        for _ in 0..steps {
            r.step(0.3);
            let total: f64 = r.shares.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
            prop_assert!(r.shares.iter().all(|s| *s >= -1e-12));
        }
    }

    /// Zero-sum games built from any row matrix really are zero-sum, and
    /// expected payoffs under any mixed profile sum to zero.
    #[test]
    fn zero_sum_is_zero_sum(
        rows in proptest::collection::vec(proptest::collection::vec(-9.0f64..9.0, 2..=2), 2..=2),
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
    ) {
        let g = Game::zero_sum(rows);
        prop_assert!(g.is_zero_sum());
        let (r, c) = g.expected_payoff(&[p, 1.0 - p], &[q, 1.0 - q]);
        prop_assert!((r + c).abs() < 1e-9);
    }
}

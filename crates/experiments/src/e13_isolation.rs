//! E13 — Tussle-isolation ablation: ToS bits vs. port-keyed QoS (§IV.A).
//!
//! Paper claim: "The use of explicit ToS bits to select QoS, rather than
//! binding this decision to another property such as a well-known port
//! number, disentangles what application is running from what service is
//! desired. ... This modularity allows tussles about QoS to be played out
//! without distortions, such as demands that encryption be avoided simply
//! to leave well-known port information visible."
//!
//! Measured: VoIP users who bought premium service, a privacy tussle that
//! drives encryption adoption from 0% to 100%, and the two classifier
//! designs. The port-keyed design loses premium treatment exactly as
//! encryption spreads (collateral damage across tussle spaces); the
//! ToS-keyed design is indifferent. We also measure the gaming distortion:
//! port-keyed premium can be stolen by disguised bulk traffic.

use tussle_core::{principles::spillover, ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::qos::{QosPolicy, ServiceClass};
use tussle_sim::SimRng;

/// Outcome for one (design, encryption-adoption) point.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationOutcome {
    /// Fraction of premium-paying VoIP flows that actually got premium.
    pub premium_honored: f64,
    /// Fraction of disguised bulk flows that stole premium treatment.
    pub premium_stolen: f64,
}

fn addr(v: u32) -> Address {
    Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
}

/// Classify `n` premium VoIP flows (ToS set, encryption per adoption rate)
/// and `n` disguised bulk flows under a policy.
pub fn run_point(
    policy: &QosPolicy,
    encryption_adoption: f64,
    n: usize,
    seed: u64,
) -> IsolationOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e13");
    let mut honored = 0usize;
    let mut stolen = 0usize;
    for _ in 0..n {
        // a paying VoIP flow: marks ToS 5, uses the VoIP port
        let mut voip = Packet::new(addr(1), addr(2), Protocol::Udp, 9000, ports::VOIP).with_tos(5);
        if rng.chance(encryption_adoption) {
            voip = voip.encrypt();
        }
        if policy.classify(&voip) == ServiceClass::Premium {
            honored += 1;
        }
        // a bulk transfer masquerading as the premium application: it can
        // fake a port (steganography) but it did not pay, so it does not
        // mark ToS (marking would be billed by the §IV.C value flow).
        let bulk = Packet::new(addr(3), addr(4), Protocol::Tcp, 5000, ports::P2P).steganographic();
        // under port-keyed premium for HTTP-like ports this is invisible;
        // model the masquerade against the premium port directly:
        let mut disguised = bulk.clone();
        disguised.dst_port = ports::VOIP; // what it wishes it looked like
        let looks_premium = match policy {
            QosPolicy {
                key: tussle_net::qos::QosKey::WellKnownPorts { premium_ports }, ..
            } => {
                // steganographic traffic presents whatever port it likes
                premium_ports.contains(&ports::VOIP)
            }
            _ => policy.classify(&disguised) == ServiceClass::Premium,
        };
        if looks_premium {
            stolen += 1;
        }
    }
    IsolationOutcome {
        premium_honored: honored as f64 / n as f64,
        premium_stolen: stolen as f64 / n as f64,
    }
}

/// Run E13 and produce the report.
pub fn run(seed: u64) -> ExperimentReport {
    let n = 500;
    let tos = QosPolicy::tos_based(4, 0.5);
    let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);
    let adoptions = [0.0, 0.5, 1.0];

    let mut table = Table::new(
        "Premium honored for paying VoIP flows vs. encryption adoption (500 flows)",
        &["ToS-keyed honored", "port-keyed honored", "port-keyed stolen by masquerade"],
    );
    let mut tos_points = Vec::new();
    let mut port_points = Vec::new();
    for a in adoptions {
        let t = run_point(&tos, a, n, seed);
        let p = run_point(&port, a, n, seed);
        table.push_row(
            &format!("encryption {:.0}%", a * 100.0),
            &[
                format!("{:.2}", t.premium_honored),
                format!("{:.2}", p.premium_honored),
                format!("{:.2}", p.premium_stolen),
            ],
        );
        tos_points.push(t);
        port_points.push(p);
    }

    // spillover of the privacy tussle into the QoS space, per design
    let tos_spill = spillover(tos_points[0].premium_honored, tos_points[2].premium_honored);
    let port_spill = spillover(port_points[0].premium_honored, port_points[2].premium_honored);

    let shape_holds = tos_points.iter().all(|t| t.premium_honored > 0.99)
        && port_points[0].premium_honored > 0.99
        && port_points[1].premium_honored < 0.6
        && port_points[2].premium_honored < 0.01
        && tos_spill < 0.01
        && port_spill > 0.9
        && port_points[0].premium_stolen > 0.99
        && tos_points[0].premium_stolen < 0.01;

    ExperimentReport {
        id: "E13".into(),
        section: "IV.A".into(),
        paper_claim: "Keying QoS on explicit ToS bits isolates the QoS tussle from the privacy \
                      tussle: encryption adoption does not disturb premium service. Keying on \
                      well-known ports couples them — encryption destroys premium treatment and \
                      port masquerade steals it."
            .into(),
        summary: format!(
            "at 100% encryption, ToS-keyed honors {:.0}% of premium flows (spillover {:.2}); \
             port-keyed honors {:.0}% (spillover {:.2}) and loses {:.0}% of premium capacity \
             to masquerading bulk traffic.",
            tos_points[2].premium_honored * 100.0,
            tos_spill,
            port_points[2].premium_honored * 100.0,
            port_spill,
            port_points[0].premium_stolen * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tos_design_is_indifferent_to_encryption() {
        let tos = QosPolicy::tos_based(4, 0.5);
        for a in [0.0, 0.5, 1.0] {
            let o = run_point(&tos, a, 100, 1);
            assert_eq!(o.premium_honored, 1.0, "adoption {a}");
        }
    }

    #[test]
    fn port_design_collapses_with_encryption() {
        let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        let clear = run_point(&port, 0.0, 200, 1);
        let half = run_point(&port, 0.5, 200, 1);
        let full = run_point(&port, 1.0, 200, 1);
        assert_eq!(clear.premium_honored, 1.0);
        assert!(half.premium_honored > 0.3 && half.premium_honored < 0.7);
        assert_eq!(full.premium_honored, 0.0);
    }

    #[test]
    fn port_design_is_gameable_tos_is_not() {
        let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        let tos = QosPolicy::tos_based(4, 0.5);
        assert_eq!(run_point(&port, 0.0, 100, 1).premium_stolen, 1.0);
        assert_eq!(run_point(&tos, 0.0, 100, 1).premium_stolen, 0.0);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

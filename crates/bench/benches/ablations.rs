//! Ablation benches: the design choices `DESIGN.md` calls out, each run
//! with and without the mechanism under study, with the outcome asserted
//! alongside the timing. These are the "remove one principle and watch
//! the shape break" experiments:
//!
//! * undercut-aware vs. naive best-response pricing (the E3 market engine);
//! * ToS-keyed vs. port-keyed QoS classification cost and robustness;
//! * trust-mediated vs. port-list firewall evaluation;
//! * aggregated (PA) vs. per-customer (PI) FIB lookup cost at scale;
//! * escalation with and without the counter-mechanism catalog pruned.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tussle_core::{EscalationLadder, Mechanism};
use tussle_econ::{Consumer, Market, Money, Provider};
use tussle_net::addr::{Address, AddressOrigin, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Fib, Firewall, NodeId, QosPolicy};

fn market(n: u64, switching: i64) -> Market {
    let consumers: Vec<Consumer> = (0..n)
        .map(|id| Consumer {
            id,
            value: Money::from_dollars(100),
            usage_mb: 1000,
            runs_server: false,
            tunnels: false,
            switching_cost: Money::from_dollars(switching),
            provider: None,
        })
        .collect();
    let providers = vec![
        Provider::flat("a", Money::from_dollars(60), Money::from_dollars(20)),
        Provider::flat("b", Money::from_dollars(60), Money::from_dollars(20)),
    ];
    Market::new(consumers, providers)
}

/// Pricing ablation: the undercut candidates are what keep a duopoly from
/// drifting to monopoly prices. We measure the run and assert the
/// competitive outcome it buys.
fn bench_pricing_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/pricing");
    g.sample_size(10);
    g.bench_function("duopoly with undercuts (full engine)", |b| {
        b.iter(|| {
            let report = market(20, 50).run(40);
            assert!(
                report.avg_markup < 1.0,
                "competition must discipline price, markup {}",
                report.avg_markup
            );
            black_box(report.avg_markup)
        })
    });
    g.bench_function("monopoly baseline (no competitor to undercut)", |b| {
        b.iter(|| {
            let consumers = market(20, 50).consumers;
            let providers =
                vec![Provider::flat("mono", Money::from_dollars(60), Money::from_dollars(20))];
            let report = Market::new(consumers, providers).run(40);
            assert!(report.avg_markup > 2.0, "monopoly rides to WTP, markup {}", report.avg_markup);
            black_box(report.avg_markup)
        })
    });
    g.finish();
}

/// QoS classifier ablation: classification cost AND robustness to the
/// encryption tussle.
fn bench_qos_ablation(c: &mut Criterion) {
    let src = Address::in_prefix(Prefix::new(1, 8), 1, AddressOrigin::ProviderIndependent);
    let dst = Address::in_prefix(Prefix::new(2, 8), 1, AddressOrigin::ProviderIndependent);
    let packets: Vec<Packet> = (0..1_000)
        .map(|i| {
            let p = Packet::new(src, dst, Protocol::Udp, 9000, ports::VOIP).with_tos(5);
            if i % 2 == 0 {
                p.encrypt()
            } else {
                p
            }
        })
        .collect();
    let tos = QosPolicy::tos_based(4, 0.5);
    let port = QosPolicy::port_based(vec![ports::VOIP], 0.5);

    let mut g = c.benchmark_group("ablation/qos-classifier");
    g.bench_function("tos-keyed over 1k half-encrypted packets", |b| {
        b.iter(|| {
            let premium = packets
                .iter()
                .filter(|p| tos.classify(p) == tussle_net::ServiceClass::Premium)
                .count();
            assert_eq!(premium, 1_000, "ToS keying is encryption-proof");
            black_box(premium)
        })
    });
    g.bench_function("port-keyed over 1k half-encrypted packets", |b| {
        b.iter(|| {
            let premium = packets
                .iter()
                .filter(|p| port.classify(p) == tussle_net::ServiceClass::Premium)
                .count();
            assert_eq!(premium, 500, "port keying loses the encrypted half");
            black_box(premium)
        })
    });
    g.finish();
}

/// Firewall ablation: evaluation cost of the two designs on the same mix.
fn bench_firewall_ablation(c: &mut Criterion) {
    let src = Address::in_prefix(Prefix::new(1, 8), 1, AddressOrigin::ProviderIndependent);
    let dst = Address::in_prefix(Prefix::new(2, 8), 1, AddressOrigin::ProviderIndependent);
    let packets: Vec<Packet> = (0..1_000)
        .map(|i| {
            Packet::new(
                src,
                dst,
                Protocol::Tcp,
                1,
                if i % 2 == 0 { ports::HTTP } else { ports::NOVEL },
            )
            .with_identity(if i % 3 == 0 { 42 } else { 7 })
        })
        .collect();
    let port_fw = Firewall::port_allowlist(vec![ports::HTTP, ports::SMTP], "admin");
    let trust_fw = Firewall::trust_mediated(vec![42], "user");

    let mut g = c.benchmark_group("ablation/firewall");
    g.bench_function("port allowlist x1k", |b| {
        b.iter(|| {
            black_box(
                packets
                    .iter()
                    .filter(|p| port_fw.evaluate(p) == tussle_net::FirewallAction::Allow)
                    .count(),
            )
        })
    });
    g.bench_function("trust-mediated x1k", |b| {
        b.iter(|| {
            black_box(
                packets
                    .iter()
                    .filter(|p| trust_fw.evaluate(p) == tussle_net::FirewallAction::Allow)
                    .count(),
            )
        })
    });
    g.finish();
}

/// Addressing ablation: lookup cost in an aggregated (2-route) core table
/// vs. a 10k-entry provider-independent table — the E1 routing bill.
fn bench_fib_ablation(c: &mut Criterion) {
    let mut aggregated = Fib::new();
    aggregated.install(Prefix::new(0x0a00_0000, 8), NodeId(1), 0);
    aggregated.install(Prefix::new(0x0b00_0000, 8), NodeId(2), 0);
    let mut flat = Fib::new();
    for i in 0..10_000u32 {
        flat.install(Prefix::new(0xc000_0000 | (i << 8), 24), NodeId(i % 8), 0);
    }
    let mut g = c.benchmark_group("ablation/addressing");
    g.bench_function("aggregated core (PA, 2 routes) x1k lookups", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1_000u32 {
                if aggregated.lookup(black_box(0x0a00_0000 | i)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("per-customer core (PI, 10k routes) x1k lookups", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1_000u32 {
                if flat.lookup(black_box(0xc000_0000 | (i << 8) | 1)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

/// Escalation ablation: playing the full ladder vs. declining at rung one
/// (the outcome the market regime decides in E9).
fn bench_escalation_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/escalation");
    g.bench_function("full ladder (monopoly world)", |b| {
        b.iter(|| {
            let l = EscalationLadder::play_to_the_end(Mechanism::QosPortBased, 10);
            assert_eq!(l.final_mechanism(), Mechanism::Steganography);
            black_box(l.escalations())
        })
    });
    g.bench_function("decline at rung 2 (competitive world)", |b| {
        b.iter(|| {
            let l = EscalationLadder::play(Mechanism::QosPortBased, 10, |rung, counters| {
                if rung >= 2 {
                    None
                } else {
                    counters.first().copied()
                }
            });
            assert_eq!(l.final_mechanism(), Mechanism::Encryption);
            black_box(l.escalations())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pricing_ablation,
    bench_qos_ablation,
    bench_firewall_ablation,
    bench_fib_ablation,
    bench_escalation_ablation,
);
criterion_main!(benches);

//! Property tests for probabilistic-marking traceback (§II.B).
//!
//! The unit tests in `traceback.rs` pin one hand-built chain; these
//! properties cover random chain lengths, random seeds, and a mid-run
//! link flap, asserting the victim-side reconstruction against the true
//! path the packets actually took:
//!
//! - evidence only ever names routers that forwarded the flood,
//! - a surviving stamp's distance is exactly the router's hop count to
//!   the victim, so reconstruction orders the chain farthest-first,
//! - a link flap mid-flood shifts evidence to the detour without ever
//!   inventing routers that are on neither path.

use proptest::prelude::*;
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::traceback::TracebackCollector;
use tussle_net::{Network, NodeId};
use tussle_sim::{SimRng, SimTime};

fn addr(v: u32) -> Address {
    Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
}

/// attacker -- r1 -- … -- rk -- victim with FIB routes both ways and
/// marking enabled on every router. Returns (net, attacker, flood, routers).
fn chain(k: usize) -> (Network, NodeId, Packet, Vec<NodeId>) {
    let mut net = Network::new();
    let attacker = net.add_host(Asn(1));
    let routers: Vec<NodeId> = (0..k).map(|i| net.add_router(Asn(2 + i as u32))).collect();
    let victim = net.add_host(Asn(100));
    let mut hops = vec![attacker];
    hops.extend(&routers);
    hops.push(victim);
    for w in hops.windows(2) {
        net.connect(w[0], w[1], SimTime::from_millis(1), 1_000_000_000);
    }
    let vaddr = addr(0x0b000000);
    net.node_mut(victim).bind(vaddr);
    let vp = Prefix::new(0x0b000000, 16);
    for w in hops.windows(2) {
        net.fib_mut(w[0]).install(vp, w[1], 0);
    }
    for r in &routers {
        net.node_mut(*r).marks_packets = true;
    }
    let flood = Packet::new(addr(0xdead0000), vaddr, Protocol::Udp, 666, ports::HTTP);
    (net, attacker, flood, routers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a random-length chain, reconstruction names exactly the routers
    /// that forwarded the flood, each with its true distance to the victim,
    /// ordered farthest-first (attacker's ingress leads).
    #[test]
    fn reconstruction_matches_the_true_path(k in 2usize..7, seed in 0u64..1_000) {
        let (mut net, attacker, flood, routers) = chain(k);
        let mut rng = SimRng::seed_from_u64(seed).fork("traceback");
        let mut collector = TracebackCollector::new();
        let sends = 1_500u64;
        for _ in 0..sends {
            let rep = net.send(attacker, flood.clone(), &mut rng);
            prop_assert!(rep.delivered);
            // Any stamp the victim sees was left by a router on the path.
            if let Some(m) = &rep.mark {
                prop_assert!(rep.path.contains(&m.node), "stamp from off-path {:?}", m.node);
            }
            collector.observe(&rep.mark);
        }
        prop_assert_eq!(collector.packets_seen, sends);

        let path = collector.reconstruct_path();
        // 1500 floods at 4% marking pin every router with overwhelming odds.
        prop_assert_eq!(path.len(), k, "every marking router should leave evidence");
        let ids: Vec<NodeId> = path.iter().map(|e| e.node).collect();
        prop_assert_eq!(&ids, &routers, "farthest-first order is the true chain order");
        for (i, e) in path.iter().enumerate() {
            // A surviving stamp from router i is aged once by each of the
            // k-1-i routers between it and the victim — exactly.
            let expected = (k - 1 - i) as f64;
            prop_assert!(
                (e.mean_distance - expected).abs() < f64::EPSILON,
                "router {} mean distance {} != {}", i, e.mean_distance, expected
            );
        }
        prop_assert_eq!(collector.nearest_to_attacker(5), Some(routers[0]));
    }

    /// Diamond topology, flood routed by a loose source route (BFS next
    /// hop, so it responds to link state): flapping the preferred branch
    /// mid-flood moves marks to the detour router, and evidence stays a
    /// subset of the union of both true paths.
    #[test]
    fn evidence_follows_a_mid_run_link_flap(seed in 0u64..1_000) {
        // attacker - rb - victim (preferred: rb has the lower node id)
        // attacker - rc - victim (detour)
        let mut net = Network::new();
        let attacker = net.add_host(Asn(1));
        let rb = net.add_router(Asn(2));
        let rc = net.add_router(Asn(3));
        let victim = net.add_host(Asn(4));
        let ab = net.connect(attacker, rb, SimTime::from_millis(1), 1_000_000_000);
        net.connect(attacker, rc, SimTime::from_millis(1), 1_000_000_000);
        net.connect(rb, victim, SimTime::from_millis(1), 1_000_000_000);
        net.connect(rc, victim, SimTime::from_millis(1), 1_000_000_000);
        let vaddr = addr(0x0b000000);
        net.node_mut(victim).bind(vaddr);
        net.node_mut(rb).marks_packets = true;
        net.node_mut(rc).marks_packets = true;
        // Loose source route through the victim: forwarding BFSes toward
        // the waypoint, so the flap genuinely reroutes the flood.
        let flood = Packet::new(addr(0xdead0000), vaddr, Protocol::Udp, 666, ports::HTTP)
            .with_source_route(vec![victim]);

        let mut rng = SimRng::seed_from_u64(seed).fork("traceback-flap");
        let mut collector = TracebackCollector::new();
        let mut via_rb = 0u64;
        let mut via_rc = 0u64;
        for burst in 0..2 {
            if burst == 1 {
                net.set_link_up(ab, false); // mid-run flap
            }
            for _ in 0..800 {
                let rep = net.send(attacker, flood.clone(), &mut rng);
                prop_assert!(rep.delivered, "diamond stays connected through the flap");
                if rep.path.contains(&rb) {
                    via_rb += 1;
                } else if rep.path.contains(&rc) {
                    via_rc += 1;
                }
                collector.observe(&rep.mark);
            }
        }
        // The flap really moved the flood: both branches carried traffic.
        prop_assert_eq!(via_rb, 800);
        prop_assert_eq!(via_rc, 800);

        let path = collector.reconstruct_path();
        prop_assert_eq!(path.len(), 2, "both branch routers leave evidence");
        for e in &path {
            prop_assert!(e.node == rb || e.node == rc, "evidence from off-path {:?}", e.node);
            // One marking hop from the victim on either branch.
            prop_assert!(e.mean_distance.abs() < f64::EPSILON);
            prop_assert!(e.samples > 5, "router {:?} undersampled", e.node);
        }
    }
}

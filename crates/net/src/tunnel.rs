//! Tunnels: the consumer's counter-mechanism.
//!
//! §V.A.2: "Customers who wish to sidestep this restriction can respond by
//! ... tunneling to disguise the port numbers being used." A tunnel wraps
//! an inner packet in an outer one addressed to a tunnel endpoint on an
//! innocuous port. Middleboxes see only the outer header; providers may
//! invest in detection (deep inspection) to re-escalate, which we model as
//! a probabilistic classifier whose accuracy is the provider's tussle
//! investment knob.

use crate::addr::Address;
use crate::packet::{ports, Packet, Protocol};
use serde::{Deserialize, Serialize};
use tussle_sim::SimRng;

/// Encapsulate `inner` for transport to `endpoint`.
///
/// The outer packet is an ordinary-looking datagram to the tunnel
/// endpoint's HTTPS port; the inner packet's bytes ride as payload (we keep
/// the structured form alongside rather than serializing, since this is a
/// model, not a codec). The outer packet inherits the inner TTL so hop
/// accounting stays honest.
pub fn encapsulate(inner: &Packet, entry_src: Address, endpoint: Address) -> Packet {
    let mut outer = Packet::new(entry_src, endpoint, Protocol::Tunnel, 4433, ports::HTTPS);
    outer.ttl = inner.ttl;
    outer.tos = inner.tos; // ToS survives tunneling — the §IV.A modularity
    outer.payload = bytes::Bytes::from(inner_marker(inner));
    outer
}

/// Recover the inner packet at the tunnel endpoint, given the original.
///
/// In a real stack the inner packet would be parsed from the payload; here
/// the caller keeps the inner packet and we verify the outer actually
/// carries it (the marker check stands in for integrity).
pub fn decapsulate(outer: &Packet, inner: &Packet) -> Option<Packet> {
    if outer.proto != Protocol::Tunnel {
        return None;
    }
    if outer.payload.as_ref() != inner_marker(inner).as_slice() {
        return None;
    }
    let mut out = inner.clone();
    out.ttl = outer.ttl;
    Some(out)
}

fn inner_marker(inner: &Packet) -> Vec<u8> {
    // A compact fingerprint of the inner header.
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&inner.src.value.to_be_bytes());
    v.extend_from_slice(&inner.dst.value.to_be_bytes());
    v.extend_from_slice(&inner.src_port.to_be_bytes());
    v.extend_from_slice(&inner.dst_port.to_be_bytes());
    v.push(inner.tos);
    v
}

/// A provider's tunnel detector: deep-packet inspection with a given
/// accuracy (true-positive rate) and false-positive rate against innocent
/// HTTPS traffic. Accuracy costs money; the economics engine prices it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TunnelDetector {
    /// Probability a real tunnel is flagged.
    pub true_positive: f64,
    /// Probability innocent encrypted web traffic is flagged.
    pub false_positive: f64,
}

impl TunnelDetector {
    /// A detector with the given rates, clamped to `[0,1]`.
    pub fn new(true_positive: f64, false_positive: f64) -> Self {
        TunnelDetector {
            true_positive: true_positive.clamp(0.0, 1.0),
            false_positive: false_positive.clamp(0.0, 1.0),
        }
    }

    /// Classify one packet. Returns `true` if the provider flags it as a
    /// tunnel (rightly or wrongly).
    pub fn flags(&self, pkt: &Packet, rng: &mut SimRng) -> bool {
        if pkt.proto == Protocol::Tunnel {
            rng.chance(self.true_positive)
        } else {
            rng.chance(self.false_positive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddressOrigin, Prefix};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn inner() -> Packet {
        Packet::new(addr(0x0a000000), addr(0x0b000000), Protocol::Tcp, 1111, ports::P2P).with_tos(2)
    }

    #[test]
    fn roundtrip() {
        let i = inner();
        let outer = encapsulate(&i, addr(0x0a000000), addr(0x0c000000));
        assert_eq!(outer.proto, Protocol::Tunnel);
        assert_eq!(outer.visible_dst_port(), Some(ports::HTTPS));
        let back = decapsulate(&outer, &i).unwrap();
        assert_eq!(back.dst_port, ports::P2P);
    }

    #[test]
    fn outer_hides_inner_port_but_keeps_tos() {
        let i = inner();
        let outer = encapsulate(&i, addr(0x0a000000), addr(0x0c000000));
        assert_ne!(outer.visible_dst_port(), Some(ports::P2P));
        assert_eq!(outer.tos, 2);
    }

    #[test]
    fn decapsulate_rejects_non_tunnels() {
        let i = inner();
        assert!(decapsulate(&i, &i).is_none());
    }

    #[test]
    fn decapsulate_rejects_mismatched_inner() {
        let i = inner();
        let other = Packet::new(addr(0x0a000000), addr(0x0d000000), Protocol::Udp, 1, 2);
        let outer = encapsulate(&i, addr(0x0a000000), addr(0x0c000000));
        assert!(decapsulate(&outer, &other).is_none());
    }

    #[test]
    fn ttl_carries_through() {
        let mut i = inner();
        i.ttl = 7;
        let mut outer = encapsulate(&i, addr(0x0a000000), addr(0x0c000000));
        assert_eq!(outer.ttl, 7);
        outer.ttl = 3; // hops consumed in transit
        let back = decapsulate(&outer, &i).unwrap();
        assert_eq!(back.ttl, 3);
    }

    #[test]
    fn detector_rates() {
        let det = TunnelDetector::new(0.8, 0.05);
        let mut rng = SimRng::seed_from_u64(1);
        let i = inner();
        let t = encapsulate(&i, addr(0x0a000000), addr(0x0c000000));
        let innocent =
            Packet::new(addr(0x0a000000), addr(0x0b000000), Protocol::Tcp, 1, ports::HTTPS);
        let n = 10_000;
        let tp = (0..n).filter(|_| det.flags(&t, &mut rng)).count();
        let fp = (0..n).filter(|_| det.flags(&innocent, &mut rng)).count();
        assert!((7_600..8_400).contains(&tp), "tp={tp}");
        assert!((300..700).contains(&fp), "fp={fp}");
    }

    #[test]
    fn detector_clamps() {
        let det = TunnelDetector::new(5.0, -1.0);
        assert_eq!(det.true_positive, 1.0);
        assert_eq!(det.false_positive, 0.0);
    }
}
